//! The 93-device registry: Table 10 transcribed row by row, augmented with
//! every per-device fact §5 reports, and compiled into full
//! [`DeviceProfile`]s.
//!
//! The raw table carries the six Table 10 feature flags verbatim
//! (functional-in-IPv6-only, NDP traffic, IPv6 address, GUA, DNS over
//! IPv6, global data). Auxiliary ID sets encode the named findings (ULA
//! users, DHCPv6 modes, EUI-64 sets, DAD offenders, the Table 4 delta
//! devices, ...). `build()` merges everything; the `checks` test module
//! pins each paper marginal so the transcription cannot drift.

use crate::domains;
use crate::profile::*;
use v6brick_net::dns::Name;
use v6brick_net::Mac;

/// One row of Table 10 plus identity columns.
#[derive(Debug, Clone, Copy)]
pub struct RawDevice {
    /// Stable snake_case identifier.
    pub id: &'static str,
    /// Device name as printed in Table 10.
    pub name: &'static str,
    /// Category.
    pub category: Category,
    /// Manufacturer.
    pub manufacturer: &'static str,
    /// Year.
    pub year: u16,
    /// Os.
    pub os: Os,
    /// Table 10 column "Funtionability IPv6-only".
    pub functional_v6only: bool,
    /// Table 10 column "IPv6 NDP Traffic".
    pub ndp: bool,
    /// Table 10 column "IPv6 Address".
    pub addr: bool,
    /// Table 10 column "GUA".
    pub gua: bool,
    /// Table 10 column "DNS over IPv6".
    pub dns6: bool,
    /// Table 10 column "Global Data Comm".
    pub data6: bool,
}

use Category::*;
use Os::*;

macro_rules! raw {
    ($id:literal, $name:literal, $cat:expr, $man:literal, $year:literal, $os:expr,
     $func:literal, $ndp:literal, $addr:literal, $gua:literal, $dns6:literal, $data6:literal) => {
        RawDevice {
            id: $id,
            name: $name,
            category: $cat,
            manufacturer: $man,
            year: $year,
            os: $os,
            functional_v6only: $func,
            ndp: $ndp,
            addr: $addr,
            gua: $gua,
            dns6: $dns6,
            data6: $data6,
        }
    };
}

/// Table 10, verbatim. Order follows the paper's listing.
pub const RAW: [RawDevice; 93] = [
    // Appliances (7)
    raw!(
        "behmor_brewer",
        "Behmor Brewer",
        Appliance,
        "Behmor",
        2017,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "smarter_ikettle",
        "Smarter IKettle",
        Appliance,
        "Smarter",
        2017,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "ge_microwave",
        "GE Microwave",
        Appliance,
        "GE",
        2018,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "miele_dishwasher",
        "Miele Dishwasher",
        Appliance,
        "Miele",
        2021,
        EmbeddedLinux,
        false,
        true,
        false,
        false,
        false,
        false
    ),
    raw!(
        "samsung_fridge",
        "Samsung Fridge",
        Appliance,
        "SmartThings/Samsung",
        2022,
        Tizen,
        false,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "xiaomi_induction",
        "Xiaomi Induction",
        Appliance,
        "Xiaomi",
        2019,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "xiaomi_ricecooker",
        "Xiaomi Ricecooker",
        Appliance,
        "Xiaomi",
        2018,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    // Cameras (18)
    raw!(
        "amcrest_cam",
        "Amcrest Cam",
        Camera,
        "Amcrest",
        2018,
        EmbeddedLinux,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "arlo_q_cam",
        "Arlo Q Cam",
        Camera,
        "Arlo",
        2018,
        EmbeddedLinux,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "blink_doorbell",
        "Blink Doorbell",
        Camera,
        "Blink",
        2021,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "blink_security",
        "Blink Security",
        Camera,
        "Blink",
        2021,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "dlink_camera",
        "D-Link Camera",
        Camera,
        "D-Link",
        2017,
        EmbeddedLinux,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "icsee_doorbell",
        "ICSee Doorbell",
        Camera,
        "ICSee",
        2019,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "lefun_cam",
        "Lefun Cam",
        Camera,
        "Lefun",
        2018,
        EmbeddedLinux,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "microseven_cam",
        "Microseven Cam",
        Camera,
        "Microseven",
        2018,
        EmbeddedLinux,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "nest_camera",
        "Nest Camera",
        Camera,
        "Google",
        2021,
        EmbeddedLinux,
        false,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "nest_doorbell",
        "Nest Doorbell",
        Camera,
        "Google",
        2021,
        EmbeddedLinux,
        false,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "ring_camera",
        "Ring Camera",
        Camera,
        "Ring",
        2019,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "ring_doorbell",
        "Ring Doorbell",
        Camera,
        "Ring",
        2018,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "ring_wired_cam",
        "Ring Wired Cam",
        Camera,
        "Ring",
        2021,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "ring_indoor_cam",
        "Ring Indoor Cam",
        Camera,
        "Ring",
        2024,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "tplink_camera",
        "TP-Link Camera",
        Camera,
        "TP-Link",
        2021,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "tuya_camera",
        "Tuya Camera",
        Camera,
        "Tuya",
        2022,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "wyze_cam", "Wyze Cam", Camera, "Wyze", 2019, Embedded, false, false, false, false, false,
        false
    ),
    raw!(
        "yi_camera",
        "Yi Camera",
        Camera,
        "Yi",
        2018,
        EmbeddedLinux,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    // TV / Entertainment (8)
    raw!(
        "nintendo_switch",
        "Nintendo Switch",
        TvEntertainment,
        "Nintendo",
        2019,
        Unknown,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "apple_tv",
        "Apple TV",
        TvEntertainment,
        "Apple",
        2021,
        IosTvos,
        true,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "google_tv",
        "Google TV",
        TvEntertainment,
        "Google",
        2021,
        AndroidBased,
        true,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "fire_tv",
        "Fire TV",
        TvEntertainment,
        "Amazon",
        2021,
        FireOs,
        false,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "roku_tv",
        "Roku TV",
        TvEntertainment,
        "Roku",
        2021,
        Unknown,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "samsung_tv",
        "Samsung TV",
        TvEntertainment,
        "SmartThings/Samsung",
        2021,
        Tizen,
        false,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "tivo_stream",
        "TiVo Stream",
        TvEntertainment,
        "TiVo",
        2021,
        AndroidBased,
        true,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "vizio_tv",
        "Vizio TV",
        TvEntertainment,
        "Vizio",
        2021,
        Unknown,
        false,
        true,
        true,
        true,
        true,
        true
    ),
    // Gateways (12)
    raw!(
        "aeotec_hub",
        "Aeotec Hub",
        Gateway,
        "SmartThings/Samsung",
        2024,
        EmbeddedLinux,
        false,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "aqara_hub",
        "Aqara Hub",
        Gateway,
        "Aqara",
        2021,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "aqara_hub_m2",
        "Aqara Hub M2",
        Gateway,
        "Aqara",
        2022,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "eufy_hub", "Eufy Hub", Gateway, "Eufy", 2021, Embedded, false, true, true, false, false,
        false
    ),
    raw!(
        "ikea_gateway",
        "IKEA Gateway",
        Gateway,
        "IKEA",
        2021,
        Embedded,
        false,
        true,
        true,
        true,
        false,
        true
    ),
    raw!(
        "sengled_hub",
        "Sengled Hub",
        Gateway,
        "Sengled",
        2018,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "smartthings_hub",
        "SmartThings Hub",
        Gateway,
        "SmartThings/Samsung",
        2021,
        EmbeddedLinux,
        false,
        true,
        true,
        true,
        true,
        false
    ),
    raw!(
        "switchbot_hub",
        "SwitchBot Hub",
        Gateway,
        "SwitchBot",
        2022,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "hue_hub",
        "Philips Hue Hub",
        Gateway,
        "Philips",
        2018,
        EmbeddedLinux,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "switchbot_hub_2",
        "SwitchBot Hub 2",
        Gateway,
        "SwitchBot",
        2023,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "thirdreality_bridge",
        "ThirdReality Bridge",
        Gateway,
        "ThirdReality",
        2023,
        Embedded,
        false,
        true,
        true,
        true,
        false,
        false
    ),
    raw!(
        "smartlife_hub",
        "SmartLife Hub",
        Gateway,
        "Tuya",
        2023,
        Embedded,
        false,
        true,
        true,
        true,
        true,
        true
    ),
    // Health (6)
    raw!(
        "blueair_purifier",
        "Blueair Purifier",
        Health,
        "Blueair",
        2018,
        Embedded,
        false,
        true,
        false,
        false,
        false,
        false
    ),
    raw!(
        "keyco_air",
        "Keyco Air",
        Health,
        "Keyco",
        2023,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "thermopro_sensor",
        "ThermoPro Sensor",
        Health,
        "ThermoPro",
        2023,
        Embedded,
        false,
        true,
        true,
        true,
        false,
        false
    ),
    raw!(
        "withings_bpm",
        "Withings BPM",
        Health,
        "Withings",
        2022,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "withings_sleep",
        "Withings Sleep",
        Health,
        "Withings",
        2023,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "withings_thermo",
        "Withings Thermo",
        Health,
        "Withings",
        2023,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    // Home automation (26)
    raw!(
        "amazon_plug",
        "Amazon Plug",
        HomeAuto,
        "Amazon",
        2024,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "consciot_matter_bulb",
        "Consciot Matter Bulb",
        HomeAuto,
        "Aidot",
        2023,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "gosund_bulb",
        "Gosund Bulb",
        HomeAuto,
        "Tuya",
        2021,
        Embedded,
        false,
        true,
        true,
        true,
        false,
        false
    ),
    raw!(
        "govee_strip",
        "Govee Strip",
        HomeAuto,
        "Govee",
        2021,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "govee_matter_strip",
        "Govee Matter Strip",
        HomeAuto,
        "Govee",
        2023,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "meross_dooropener",
        "Meross Dooropener",
        HomeAuto,
        "Meross",
        2022,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "meross_matter_plug",
        "Meross Matter Plug",
        HomeAuto,
        "Meross",
        2023,
        Embedded,
        false,
        true,
        true,
        true,
        false,
        false
    ),
    raw!(
        "magichome_strip",
        "MagicHome Strip",
        HomeAuto,
        "Tuya",
        2018,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "meross_plug",
        "Meross Plug",
        HomeAuto,
        "Meross",
        2022,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "nest_thermostat",
        "Nest Thermostat",
        HomeAuto,
        "Google",
        2022,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "orein_matter_bulb",
        "Orein Matter Bulb",
        HomeAuto,
        "Aidot",
        2023,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "ring_chime",
        "Ring Chime",
        HomeAuto,
        "Ring",
        2024,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "sengled_bulb",
        "Sengled Bulb",
        HomeAuto,
        "Sengled",
        2022,
        Embedded,
        false,
        true,
        false,
        false,
        false,
        false
    ),
    raw!(
        "smartlife_remote",
        "SmartLife Remote",
        HomeAuto,
        "Tuya",
        2022,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "wemo_plug",
        "Wemo Plug",
        HomeAuto,
        "Wemo",
        2017,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "tplink_kasa_bulb",
        "TP-Link Kasa Bulb",
        HomeAuto,
        "TP-Link",
        2018,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "tplink_kasa_plug",
        "TP-Link Kasa Plug",
        HomeAuto,
        "TP-Link",
        2017,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "tplink_tapo_plug",
        "TP-Link Tapo Plug",
        HomeAuto,
        "TP-Link",
        2023,
        Embedded,
        false,
        true,
        true,
        true,
        false,
        false
    ),
    raw!(
        "wiz_bulb", "Wiz Bulb", HomeAuto, "Wiz", 2022, Embedded, false, true, false, false, false,
        false
    ),
    raw!(
        "yeelight_bulb",
        "Yeelight Bulb",
        HomeAuto,
        "Yeelight",
        2019,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "tuya_matter_plug",
        "Tuya Matter Plug",
        HomeAuto,
        "Tuya",
        2023,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "tapo_matter_bulb",
        "Tapo Matter Bulb",
        HomeAuto,
        "TP-Link",
        2023,
        Embedded,
        false,
        true,
        true,
        true,
        false,
        false
    ),
    raw!(
        "linkind_matter_plug",
        "Linkind Matter Plug",
        HomeAuto,
        "Aidot",
        2024,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "leviton_matter_plug",
        "Leviton Matter Plug",
        HomeAuto,
        "Leviton",
        2024,
        Embedded,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "august_lock",
        "August Lock",
        HomeAuto,
        "August",
        2024,
        Embedded,
        false,
        false,
        false,
        false,
        false,
        false
    ),
    raw!(
        "cync_matter_plug",
        "Cync Matter Plug",
        HomeAuto,
        "Cync",
        2024,
        Embedded,
        false,
        true,
        false,
        false,
        false,
        false
    ),
    // Speakers (16)
    raw!(
        "echo_dot_2",
        "Echo Dot 2nd gen",
        Speaker,
        "Amazon",
        2017,
        FireOs,
        false,
        true,
        true,
        true,
        false,
        true
    ),
    raw!(
        "echo_dot_3",
        "Echo Dot 3rd gen",
        Speaker,
        "Amazon",
        2018,
        FireOs,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "echo_dot_4",
        "Echo Dot 4th gen",
        Speaker,
        "Amazon",
        2021,
        FireOs,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "echo_dot_5",
        "Echo Dot 5th gen",
        Speaker,
        "Amazon",
        2023,
        FireOs,
        false,
        true,
        true,
        true,
        false,
        true
    ),
    raw!(
        "echo_flex",
        "Echo Flex",
        Speaker,
        "Amazon",
        2021,
        FireOs,
        false,
        true,
        true,
        false,
        false,
        false
    ),
    raw!(
        "echo_plus",
        "Echo Plus",
        Speaker,
        "Amazon",
        2017,
        FireOs,
        false,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "echo_pop", "Echo Pop", Speaker, "Amazon", 2023, FireOs, false, true, true, false, false,
        false
    ),
    raw!(
        "echo_show_5",
        "Echo Show 5",
        Speaker,
        "Amazon",
        2022,
        FireOs,
        false,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "echo_show_8",
        "Echo Show 8",
        Speaker,
        "Amazon",
        2022,
        FireOs,
        false,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "echo_spot",
        "Echo Spot",
        Speaker,
        "Amazon",
        2017,
        FireOs,
        false,
        true,
        true,
        true,
        true,
        false
    ),
    raw!(
        "meta_portal_mini",
        "Meta Portal Mini",
        Speaker,
        "Meta",
        2018,
        AndroidBased,
        true,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "google_home_mini",
        "Google Home Mini",
        Speaker,
        "Google",
        2018,
        AndroidBased,
        true,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "google_nest_mini",
        "Google Nest Mini",
        Speaker,
        "Google",
        2022,
        AndroidBased,
        true,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "homepod_mini",
        "HomePod Mini",
        Speaker,
        "Apple",
        2022,
        IosTvos,
        false,
        true,
        true,
        true,
        true,
        true
    ),
    raw!(
        "nest_hub", "Nest Hub", Speaker, "Google", 2021, Fuchsia, true, true, true, true, true,
        true
    ),
    raw!(
        "nest_hub_max",
        "Nest Hub Max",
        Speaker,
        "Google",
        2021,
        Fuchsia,
        true,
        true,
        true,
        true,
        true,
        true
    ),
];

// ---------------------------------------------------------------------------
// Auxiliary fact sets (§5 findings). Membership is by device id.
// ---------------------------------------------------------------------------

/// Devices that self-assign a ULA (Matter / HomeKit fabrics) — 23 devices,
/// Table 5 row "ULA", per-category (1,2,2,5,1,5,7).
pub const ULA: &[&str] = &[
    "samsung_fridge",
    "nest_camera",
    "nest_doorbell",
    "apple_tv",
    "google_tv",
    "aeotec_hub",
    "smartthings_hub",
    "smartlife_hub",
    "aqara_hub_m2",
    "thirdreality_bridge",
    "thermopro_sensor",
    "meross_matter_plug",
    "tapo_matter_bulb",
    "tuya_matter_plug",
    "linkind_matter_plug",
    "leviton_matter_plug",
    "homepod_mini",
    "nest_hub",
    "nest_hub_max",
    "google_home_mini",
    "google_nest_mini",
    "meta_portal_mini",
    "echo_plus",
];

/// Devices with addresses but no LLA ("use only their GUAs and ULAs").
pub const NO_LLA: &[&str] = &[
    "thirdreality_bridge",
    "thermopro_sensor",
    "tuya_matter_plug",
    "linkind_matter_plug",
];

/// Stateful DHCPv6 support — 12 devices, Table 5 (1,0,2,2,0,6,1).
pub const DHCPV6_STATEFUL: &[&str] = &[
    "samsung_fridge",
    "apple_tv",
    "samsung_tv",
    "smartthings_hub",
    "aeotec_hub",
    "tplink_tapo_plug",
    "tapo_matter_bulb",
    "meross_matter_plug",
    "leviton_matter_plug",
    "linkind_matter_plug",
    "tuya_matter_plug",
    "homepod_mini",
];

/// The 4 devices that actually *use* their stateful address (§5.2.1).
pub const DHCPV6_STATEFUL_USE: &[&str] = &[
    "smartthings_hub",
    "homepod_mini",
    "aeotec_hub",
    "samsung_fridge",
];

/// Stateless DHCPv6 support — 16 devices, Table 5 (1,0,3,3,0,6,3).
pub const DHCPV6_STATELESS: &[&str] = &[
    "samsung_fridge",
    "apple_tv",
    "samsung_tv",
    "vizio_tv",
    "smartthings_hub",
    "aeotec_hub",
    "smartlife_hub",
    "meross_matter_plug",
    "tplink_tapo_plug",
    "tapo_matter_bulb",
    "leviton_matter_plug",
    "linkind_matter_plug",
    "tuya_matter_plug",
    "homepod_mini",
    "nest_hub",
    "nest_hub_max",
];

/// Cannot configure DNS from RDNSS (needs DHCPv6) — the Vizio TV finding.
pub const NO_RDNSS: &[&str] = &["vizio_tv"];

/// Configure IPv6 addresses only when IPv4 is also present (Table 4's
/// "+2 addresses in dual-stack"; ThermoPro also accounts for "+1 GUA").
pub const ADDR_REQUIRES_V4: &[&str] = &["thermopro_sensor", "gosund_bulb", "meross_plug"];

/// Skips IPv6 entirely when IPv4 is available (Table 4's "−1 NDP").
pub const SKIP_V6_IF_V4: &[&str] = &["thirdreality_bridge"];

/// SLAAC GUA only when IPv4 present (Echo Dot 2nd/5th gen — the speaker
/// "+2 GUA" and "+2 Internet data" deltas of Table 4).
pub const GUA_REQUIRES_V4: &[&str] = &["echo_dot_2", "echo_dot_5"];

/// NDP from `::` but never complete an address in any configuration.
pub const ADDRESSLESS: &[&str] = &[
    "miele_dishwasher",
    "blueair_purifier",
    "sengled_bulb",
    "wiz_bulb",
    "cync_matter_plug",
];

/// Never perform DAD for any address (2 Aqara hubs + 2 home-automation
/// devices, all EUI-64 — §5.2.1).
pub const DAD_NEVER: &[&str] = &[
    "aqara_hub",
    "aqara_hub_m2",
    "consciot_matter_bulb",
    "orein_matter_bulb",
];

/// DAD only for the LLA; global addresses skip it (with [`DAD_NEVER`],
/// 18 devices skip DAD for at least one address).
pub const DAD_LLA_ONLY: &[&str] = &[
    "ge_microwave",
    "amcrest_cam",
    "blink_security",
    "lefun_cam",
    "eufy_hub",
    "sengled_hub",
    "hue_hub",
    "switchbot_hub_2",
    "smartlife_hub",
    "echo_dot_3",
    "echo_dot_4",
    "echo_flex",
    "echo_pop",
    "echo_spot",
];

/// Rotate their link-local address during the experiment (§5.2.1).
pub const ROTATES_LLA: &[&str] = &["samsung_fridge", "samsung_tv", "homepod_mini", "apple_tv"];

/// The 10 churny devices producing ~80% of GUAs and ~90% of ULAs (Fig. 3),
/// with their extra-regeneration counts (tuned to Table 6's address
/// volumes: 456 GUAs / 169 ULAs / 59 LLAs across the testbed).
pub const ADDR_CHURN: &[(&str, u8)] = &[
    ("nest_hub", 9),
    ("nest_hub_max", 8),
    ("google_home_mini", 8),
    ("homepod_mini", 7),
    ("google_nest_mini", 6),
    ("samsung_fridge", 4),
    ("samsung_tv", 6),
    ("smartthings_hub", 6),
    ("aeotec_hub", 5),
    ("apple_tv", 6),
];

/// Active EUI-64 link-local IIDs — 31 devices, Table 5 (1,2,3,7,0,8,10).
pub const LLA_EUI64: &[&str] = &[
    "samsung_fridge",
    "nest_camera",
    "nest_doorbell",
    "fire_tv",
    "samsung_tv",
    "vizio_tv",
    "aeotec_hub",
    "smartthings_hub",
    "smartlife_hub",
    "ikea_gateway",
    "thirdreality_bridge",
    "aqara_hub",
    "aqara_hub_m2",
    "consciot_matter_bulb",
    "orein_matter_bulb",
    "gosund_bulb",
    "govee_matter_strip",
    "meross_plug",
    "smartlife_remote",
    "tuya_matter_plug",
    "tplink_tapo_plug",
    "echo_dot_2",
    "echo_dot_3",
    "echo_dot_4",
    "echo_dot_5",
    "echo_flex",
    "echo_pop",
    "echo_plus",
    "echo_show_5",
    "echo_show_8",
    "echo_spot",
];

/// Active EUI-64 GUAs (the 15 "users" of Fig. 5 / §5.4.1).
pub const GUA_EUI64: &[&str] = &[
    "samsung_fridge",
    "nest_camera",
    "fire_tv",
    "samsung_tv",
    "vizio_tv",
    "aeotec_hub",
    "smartthings_hub",
    "smartlife_hub",
    "ikea_gateway",
    "thirdreality_bridge",
    "gosund_bulb",
    "tplink_tapo_plug",
    "echo_plus",
    "echo_show_5",
    "echo_show_8",
];

/// Assign an EUI-64 GUA they never source traffic from (15 privacy-GUA
/// devices + Nest Doorbell + the 2 Aqara hubs = 18; with the 15 users,
/// Fig. 5's 33 assigners).
pub const UNUSED_EUI64_GUA: &[&str] = &[
    "apple_tv",
    "google_tv",
    "tivo_stream",
    "thermopro_sensor",
    "meross_matter_plug",
    "tapo_matter_bulb",
    "echo_dot_2",
    "echo_dot_5",
    "echo_spot",
    "meta_portal_mini",
    "google_home_mini",
    "google_nest_mini",
    "homepod_mini",
    "nest_hub",
    "nest_hub_max",
    "nest_doorbell",
    "aqara_hub",
    "aqara_hub_m2",
];

/// EUI-64 GUA formers whose DNS/data nonetheless come from a privacy GUA
/// (their EUI-64 address only sources NTP).
pub const PRIVACY_GUA_FOR_TRAFFIC: &[&str] = &["samsung_tv", "vizio_tv", "ikea_gateway"];

/// Data (but not DNS) from a privacy GUA. The Aeotec hub joins the
/// SmartLife hub here: both keep their EUI-64 GUA as a DNS-only source,
/// which is what caps Fig. 5's EUI-64 internet transmitters at five.
pub const DATA_FROM_PRIVACY_GUA: &[&str] = &["smartlife_hub", "aeotec_hub"];

/// DNS and data from the stateful DHCPv6 address.
pub const TRAFFIC_FROM_STATEFUL: &[&str] = &["samsung_fridge"];

/// Send ICMPv6 echo connectivity probes from their GUA. The seven EUI-64
/// members are the "misc" users completing Fig. 5's funnel (15 users =
/// 5 internet + 3 DNS-only + 7 probe-only); the three privacy-GUA members
/// are the devices whose GUA is active without any DNS or data use
/// (keeping Table 5's GUA count at 31).
pub const V6_ECHO_PROBE: &[&str] = &[
    "samsung_fridge",
    "samsung_tv",
    "vizio_tv",
    "ikea_gateway",
    "thirdreality_bridge",
    "gosund_bulb",
    "tplink_tapo_plug",
    "thermopro_sensor",
    "meross_matter_plug",
    "tapo_matter_bulb",
];

/// Query some destinations A-only even over IPv6 transport — 19 devices,
/// Table 5 (1,1,5,3,0,0,9).
pub const A_ONLY_IN_V6: &[&str] = &[
    "samsung_fridge",
    "nest_camera",
    "apple_tv",
    "google_tv",
    "fire_tv",
    "samsung_tv",
    "vizio_tv",
    "aeotec_hub",
    "smartthings_hub",
    "smartlife_hub",
    "echo_plus",
    "echo_show_5",
    "echo_show_8",
    "echo_spot",
    "meta_portal_mini",
    "google_home_mini",
    "google_nest_mini",
    "homepod_mini",
    "nest_hub",
];

/// Query AAAA records exclusively over IPv4 transport — the 15 devices of
/// Table 4's "+15 AAAA requests in dual-stack".
pub const AAAA_V4_ONLY: &[&str] = &[
    "arlo_q_cam",
    "blink_security",
    "blink_doorbell",
    "wyze_cam",
    "ring_camera",
    "roku_tv",
    "eufy_hub",
    "hue_hub",
    "switchbot_hub_2",
    "nest_thermostat",
    "echo_dot_2",
    "echo_dot_3",
    "echo_dot_4",
    "echo_dot_5",
    "echo_pop",
];

/// Of [`AAAA_V4_ONLY`], those whose queried names actually have AAAA
/// records (the +12 AAAA responses of Table 4, minus the two gateways).
pub const AAAA_V4_ONLY_READY: &[&str] = &[
    "arlo_q_cam",
    "blink_security",
    "wyze_cam",
    "roku_tv",
    "nest_thermostat",
    "echo_dot_2",
    "echo_dot_3",
    "echo_dot_4",
    "echo_dot_5",
    "echo_pop",
];

/// Gateways that retry AAAA over IPv4 in dual-stack for names their
/// IPv6-transport queries could not resolve (Aeotec, SmartLife).
pub const DUAL_V4_DNS_EXTRA: &[&str] = &["aeotec_hub", "smartlife_hub"];

/// Query HTTPS resource records (HTTP/3 probing — Android/iOS/tvOS).
pub const HTTPS_RECORDS: &[&str] = &[
    "apple_tv",
    "homepod_mini",
    "google_tv",
    "tivo_stream",
    "meta_portal_mini",
];

/// Query SVCB records (the two Apple devices).
pub const SVCB_RECORDS: &[&str] = &["apple_tv", "homepod_mini"];

/// Connect to a hard-coded IPv6 endpoint without DNS (IKEA gateway) or as
/// a fallback when AAAA resolution fails (SmartLife hub's Tuya IP list).
pub const HARDCODED_V6: &[(&str, &str)] = &[
    ("ikea_gateway", "fw.ota.ikea.example"),
    ("smartlife_hub", "m2a.tuyaus.example"),
];

/// Emit IPv6 *local* data traffic (mDNS / Matter exchanges) — 21 devices,
/// Table 5 "Local Trans" (1,2,5,5,0,3,5).
pub const LOCAL_IPV6: &[&str] = &[
    "samsung_fridge",
    "nest_camera",
    "nest_doorbell",
    "apple_tv",
    "google_tv",
    "samsung_tv",
    "tivo_stream",
    "vizio_tv",
    "aeotec_hub",
    "smartthings_hub",
    "smartlife_hub",
    "aqara_hub_m2",
    "thirdreality_bridge",
    "meross_matter_plug",
    "tuya_matter_plug",
    "leviton_matter_plug",
    "homepod_mini",
    "google_home_mini",
    "google_nest_mini",
    "nest_hub",
    "nest_hub_max",
];

/// Telemetry gated on required-destination rendezvous (Fire TV).
pub const DATA_REQUIRES_REQUIRED: &[&str] = &["fire_tv"];

/// TCP client v4-bound despite IPv6 DNS (Echo Spot).
pub const NO_V6_DATA: &[&str] = &["echo_spot"];

/// Firmware versions of select devices (the paper's Table 11, appendix C;
/// versions current at the April 2024 experiment window).
pub const FIRMWARE: &[(&str, &str)] = &[
    ("homepod_mini", "17.4"),
    ("apple_tv", "tvOS 17.4"),
    ("google_home_mini", "2.57.375114"),
    ("google_nest_mini", "2.57.375114"),
    ("nest_hub", "12.20230611.1.67-16.20231130.3.59"),
    ("nest_hub_max", "12.20230611.1.67-16.20231130.3.59"),
    ("roku_tv", "OS 12"),
    ("google_tv", "STTK.230808.004-STTE.240315.002"),
    ("aeotec_hub", "0.52.11"),
    ("smartthings_hub", "0.52.11"),
    ("ring_chime", "6.1.10+"),
    ("ring_doorbell", "15.0.13+"),
    ("ring_camera", "15.0.13+"),
    ("ring_wired_cam", "15.0.13+"),
    ("ring_indoor_cam", "15.0.8+"),
    ("hue_hub", "1963171020"),
    ("ikea_gateway", "1.20.65"),
    ("wyze_cam", "4.36.11.8391"),
    ("blink_security", "4.5.20"),
    ("blink_doorbell", "12.67"),
    ("arlo_q_cam", "1.13.0.0_95_a58d08a_db3500"),
    ("amcrest_cam", "V2.400.AC02.15.R"),
];

/// Firmware version for a device, if Table 11 records one.
pub fn firmware(id: &str) -> Option<&'static str> {
    FIRMWARE.iter().find(|(d, _)| *d == id).map(|(_, v)| *v)
}

/// Devices that assign at least one address they never use (25 of 54).
pub const ASSIGNS_UNUSED_ADDR: &[&str] = &[
    "samsung_fridge",
    "samsung_tv",
    "smartthings_hub",
    "aeotec_hub",
    "apple_tv",
    "nest_hub",
    "nest_hub_max",
    "google_home_mini",
    "google_nest_mini",
    "homepod_mini",
    "nest_camera",
    "nest_doorbell",
    "google_tv",
    "tivo_stream",
    "meta_portal_mini",
    "fire_tv",
    "vizio_tv",
    "echo_plus",
    "echo_show_5",
    "echo_show_8",
    "echo_spot",
    "smartlife_hub",
    "ikea_gateway",
    "thirdreality_bridge",
    "thermopro_sensor",
];

// ---------------------------------------------------------------------------
// Profile construction
// ---------------------------------------------------------------------------

fn in_set(set: &[&str], id: &str) -> bool {
    set.contains(&id)
}

/// Deterministic MAC for device number `n`: locally-administered unicast
/// with a per-manufacturer OUI byte so EUI-64 leaks expose a "vendor".
fn mac_for(n: usize, manufacturer: &str) -> Mac {
    let mut h: u32 = 0x811c_9dc5;
    for b in manufacturer.bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    Mac::new(0x02, (h >> 8) as u8, h as u8, 0x10, 0, n as u8)
}

/// The compiled registry, built once per process. Every consumer —
/// `shared`, `build`, `subsample`, the lookups — reads through this
/// cache, so the ~90 `String`-heavy profiles and their destination
/// lists exist exactly once no matter how many homes a campaign
/// synthesizes.
static REGISTRY: std::sync::OnceLock<Vec<DeviceProfile>> = std::sync::OnceLock::new();

/// The shared compiled registry: all 93 profiles in Table 10 order,
/// compiled on first use and interned for the life of the process.
/// Fleet-scale callers should hold `&'static DeviceProfile` handles
/// from here (via [`subsample_refs`]/[`lookup`]) instead of cloning.
pub fn shared() -> &'static [DeviceProfile] {
    REGISTRY.get_or_init(compile)
}

/// Compile the full registry as an owned vector. Prefer [`shared`] —
/// this clones every profile out of the interned cache and exists for
/// callers that genuinely need owned profiles (mutation, tests).
pub fn build() -> Vec<DeviceProfile> {
    shared().to_vec()
}

fn compile() -> Vec<DeviceProfile> {
    RAW.iter()
        .enumerate()
        .map(|(n, raw)| {
            let id = raw.id;
            let ipv6 = Ipv6Caps {
                ndp: raw.ndp,
                addr_requires_v4: in_set(ADDR_REQUIRES_V4, id),
                skip_v6_if_v4: in_set(SKIP_V6_IF_V4, id),
                addressless: in_set(ADDRESSLESS, id),
                lla: raw.addr && !in_set(NO_LLA, id) && !in_set(ADDRESSLESS, id),
                slaac_gua: raw.gua,
                gua_requires_v4: in_set(GUA_REQUIRES_V4, id),
                lla_eui64: in_set(LLA_EUI64, id),
                gua_eui64: in_set(GUA_EUI64, id),
                unused_eui64_gua: in_set(UNUSED_EUI64_GUA, id),
                privacy_gua_for_traffic: in_set(PRIVACY_GUA_FOR_TRAFFIC, id),
                data_from_privacy_gua: in_set(DATA_FROM_PRIVACY_GUA, id),
                traffic_from_stateful: in_set(TRAFFIC_FROM_STATEFUL, id),
                v6_echo_probe: in_set(V6_ECHO_PROBE, id),
                ula: in_set(ULA, id),
                dad: if in_set(DAD_NEVER, id) {
                    DadBehavior::Never
                } else if in_set(DAD_LLA_ONLY, id) {
                    DadBehavior::LinkLocalOnly
                } else {
                    DadBehavior::Full
                },
                dhcpv6_stateful: in_set(DHCPV6_STATEFUL, id),
                dhcpv6_stateful_use: in_set(DHCPV6_STATEFUL_USE, id),
                dhcpv6_stateless: in_set(DHCPV6_STATELESS, id),
                rdnss: raw.addr && !in_set(NO_RDNSS, id),
                rotates_lla: in_set(ROTATES_LLA, id),
                addr_churn: ADDR_CHURN
                    .iter()
                    .find(|(d, _)| *d == id)
                    .map(|(_, c)| *c)
                    .unwrap_or(0),
                assigns_unused_addr: in_set(ASSIGNS_UNUSED_ADDR, id),
            };
            let dns = DnsCaps {
                aaaa: if raw.dns6 {
                    AaaaTransport::V6Capable
                } else if in_set(AAAA_V4_ONLY, id) {
                    AaaaTransport::V4Only
                } else {
                    AaaaTransport::None
                },
                v6_transport: raw.dns6,
                https_records: in_set(HTTPS_RECORDS, id),
                svcb_records: in_set(SVCB_RECORDS, id),
                dual_v4_extra: in_set(DUAL_V4_DNS_EXTRA, id),
            };
            let app = domains::app_caps_for(raw, &dns);
            DeviceProfile {
                id: id.to_string(),
                name: raw.name.to_string(),
                category: raw.category,
                manufacturer: raw.manufacturer.to_string(),
                os: raw.os,
                purchase_year: raw.year,
                mac: mac_for(n, raw.manufacturer),
                ipv6,
                dns,
                app,
                expect_functional_v6only: raw.functional_v6only,
            }
        })
        .collect()
}

/// Deterministically subsample `count` profiles from the registry for a
/// synthetic home: a seeded partial Fisher–Yates draw over the registry
/// indices, returned in registry order (stable host/MAC ordering for
/// the simulator). Depends only on `(count, seed)` — the same home
/// always gets the same devices regardless of how many other homes a
/// campaign simulates. `count >= 93` returns the full registry.
pub fn subsample(count: usize, seed: u64) -> Vec<DeviceProfile> {
    subsample_refs(count, seed).into_iter().cloned().collect()
}

/// [`subsample`] without the clones: `&'static` handles into the
/// interned registry, in registry order. The selection is identical to
/// [`subsample`]'s for every `(count, seed)` — both are thin wrappers
/// over [`subsample_indices`].
pub fn subsample_refs(count: usize, seed: u64) -> Vec<&'static DeviceProfile> {
    let all = shared();
    subsample_indices(count, seed)
        .into_iter()
        .map(|i| &all[i])
        .collect()
}

/// The registry indices a `(count, seed)` subsample selects, sorted in
/// registry order. The draw is a seeded partial Fisher–Yates over a
/// `Vec<usize>` — no profile is touched, let alone cloned, until a
/// caller dereferences a handle.
pub fn subsample_indices(count: usize, seed: u64) -> Vec<usize> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let total = shared().len();
    if count >= total {
        return (0..total).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..total).collect();
    for i in 0..count {
        let j = rng.gen_range(i..total);
        indices.swap(i, j);
    }
    let mut chosen = indices;
    chosen.truncate(count);
    chosen.sort_unstable();
    chosen
}

/// Look up one profile by id (panics on unknown id — registry ids are
/// compile-time constants; user-facing code should prefer [`find`]).
pub fn by_id(id: &str) -> DeviceProfile {
    find(id).unwrap_or_else(|| panic!("unknown device id {id}"))
}

/// Look up one profile by id, returning `None` for unknown ids.
pub fn find(id: &str) -> Option<DeviceProfile> {
    lookup(id).cloned()
}

/// Clone-free [`find`]: a `&'static` handle into the interned registry.
pub fn lookup(id: &str) -> Option<&'static DeviceProfile> {
    shared().iter().find(|p| p.id == id)
}

/// Convenience: the hard-coded v6 endpoint name for a device, if any.
pub fn hardcoded_endpoint(id: &str) -> Option<Name> {
    HARDCODED_V6
        .iter()
        .find(|(d, _)| *d == id)
        .map(|(_, n)| Name::new(n).unwrap())
}

#[cfg(test)]
mod checks {
    //! Pin every paper marginal the registry must reproduce. If a future
    //! edit unbalances the transcription, these fail loudly.
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn count<F: Fn(&RawDevice) -> bool>(f: F) -> usize {
        RAW.iter().filter(|r| f(r)).count()
    }

    fn per_category<F: Fn(&RawDevice) -> bool>(f: F) -> Vec<usize> {
        Category::ALL
            .iter()
            .map(|c| RAW.iter().filter(|r| r.category == *c && f(r)).count())
            .collect()
    }

    #[test]
    fn ninety_three_distinct_devices() {
        assert_eq!(RAW.len(), 93);
        let ids: HashSet<&str> = RAW.iter().map(|r| r.id).collect();
        assert_eq!(ids.len(), 93, "duplicate device ids");
        let macs: HashSet<Mac> = build().iter().map(|p| p.mac).collect();
        assert_eq!(macs.len(), 93, "duplicate MACs");
    }

    #[test]
    fn subsample_is_deterministic_and_ordered() {
        let a = subsample(10, 42);
        let b = subsample(10, 42);
        assert_eq!(a.len(), 10);
        let ids = |ps: &[DeviceProfile]| ps.iter().map(|p| p.id.clone()).collect::<Vec<_>>();
        assert_eq!(
            ids(&a),
            ids(&b),
            "same (count, seed) must pick the same devices"
        );
        assert_ne!(
            ids(&a),
            ids(&subsample(10, 43)),
            "different seeds should pick different devices"
        );
        // Registry order is preserved: positions in the full build are
        // strictly increasing.
        let all_ids = ids(&build());
        let positions: Vec<usize> = a
            .iter()
            .map(|p| all_ids.iter().position(|i| *i == p.id).unwrap())
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
        // Distinct devices, and the full-registry request passes through.
        let distinct: HashSet<String> = ids(&a).into_iter().collect();
        assert_eq!(distinct.len(), 10);
        assert_eq!(subsample(200, 1).len(), 93);
    }

    #[test]
    fn subsample_refs_are_interned_handles_to_the_same_selection() {
        // The registry compiles exactly once per process...
        assert!(std::ptr::eq(shared(), shared()));
        // ...and the three subsample entry points agree: indices name
        // the selection, refs are handles straight into the shared
        // slice at those indices, and the cloning wrapper deep-copies
        // the very same profiles.
        for (count, seed) in [(1usize, 0u64), (10, 42), (93, 7), (200, 1)] {
            let indices = subsample_indices(count, seed);
            let refs = subsample_refs(count, seed);
            let owned = subsample(count, seed);
            assert_eq!(indices.len(), refs.len());
            assert_eq!(refs.len(), owned.len());
            for ((i, r), o) in indices.iter().zip(&refs).zip(&owned) {
                assert!(std::ptr::eq(*r, &shared()[*i]));
                assert_eq!(r.id, o.id);
                assert_eq!(r.mac, o.mac);
            }
        }
    }

    #[test]
    fn table3_category_sizes() {
        assert_eq!(per_category(|_| true), vec![7, 18, 8, 12, 6, 26, 16]);
    }

    #[test]
    fn table10_functional_devices() {
        // 8 functional: 5 speakers + 3 TVs (Table 3 row 6).
        assert_eq!(count(|r| r.functional_v6only), 8);
        assert_eq!(
            per_category(|r| r.functional_v6only),
            vec![0, 0, 3, 0, 0, 0, 5]
        );
    }

    #[test]
    fn table10_ndp_59() {
        // Table 3 row 2: 59 devices emit NDP (union; identical in
        // IPv6-only since SKIP_V6_IF_V4 devices still run v6 there).
        assert_eq!(count(|r| r.ndp), 59);
        assert_eq!(per_category(|r| r.ndp), vec![3, 5, 6, 11, 2, 16, 16]);
    }

    #[test]
    fn table5_addr_54() {
        assert_eq!(count(|r| r.addr), 54);
        assert_eq!(per_category(|r| r.addr), vec![2, 5, 6, 11, 1, 13, 16]);
    }

    #[test]
    fn table5_gua_31() {
        assert_eq!(count(|r| r.gua), 31);
        assert_eq!(per_category(|r| r.gua), vec![1, 2, 6, 5, 1, 4, 12]);
    }

    #[test]
    fn table5_dns6_22() {
        assert_eq!(count(|r| r.dns6), 22);
        assert_eq!(per_category(|r| r.dns6), vec![1, 2, 6, 3, 0, 0, 10]);
    }

    #[test]
    fn table5_internet_data_23() {
        assert_eq!(count(|r| r.data6), 23);
        assert_eq!(per_category(|r| r.data6), vec![1, 2, 6, 3, 0, 0, 11]);
    }

    #[test]
    fn table3_ipv6_only_derivations() {
        // Addresses in IPv6-only: addr minus the three ADDR_REQUIRES_V4
        // devices = 51 (Table 3 row 3).
        let v6only_addr = count(|r| r.addr && !in_set(ADDR_REQUIRES_V4, r.id));
        assert_eq!(v6only_addr, 51);
        // GUAs in IPv6-only: 31 − ThermoPro − Gosund − Dot2 − Dot5 = 27.
        let v6only_gua =
            count(|r| r.gua && !in_set(ADDR_REQUIRES_V4, r.id) && !in_set(GUA_REQUIRES_V4, r.id));
        assert_eq!(v6only_gua, 27);
        // "NDP traffic but no address" in IPv6-only = 8 (Table 3).
        let no_addr = count(|r| r.ndp && (!r.addr || in_set(ADDR_REQUIRES_V4, r.id)));
        assert_eq!(no_addr, 8);
    }

    #[test]
    fn table4_deltas() {
        // +15 AAAA requesters in dual-stack.
        assert_eq!(AAAA_V4_ONLY.len(), 15);
        // Their per-category split (Table 4 row 4): +5 camera, +1 TV,
        // +3 gateway, +1 home-auto, +5 speaker.
        let mut split = HashMap::new();
        for id in AAAA_V4_ONLY {
            let raw = RAW.iter().find(|r| r.id == *id).unwrap();
            *split.entry(raw.category).or_insert(0) += 1;
        }
        assert_eq!(split[&Category::Camera], 5);
        assert_eq!(split[&Category::TvEntertainment], 1);
        assert_eq!(split[&Category::Gateway], 3);
        assert_eq!(split[&Category::HomeAuto], 1);
        assert_eq!(split[&Category::Speaker], 5);
        // +12 AAAA responses: 10 ready v4-only requesters + 2 dual-v4
        // gateways.
        assert_eq!(AAAA_V4_ONLY_READY.len() + DUAL_V4_DNS_EXTRA.len(), 12);
        // AAAA requesters overall: 22 v6 + 15 v4-only = 37 (Table 5).
        assert_eq!(count(|r| r.dns6) + AAAA_V4_ONLY.len(), 37);
    }

    #[test]
    fn table5_ula_23() {
        assert_eq!(ULA.len(), 23);
        let mut per_cat = vec![0usize; 7];
        for id in ULA {
            let raw = RAW.iter().find(|r| r.id == *id).expect("ULA id exists");
            assert!(raw.addr, "{id} must have an address to hold a ULA");
            let idx = Category::ALL
                .iter()
                .position(|c| *c == raw.category)
                .unwrap();
            per_cat[idx] += 1;
        }
        assert_eq!(per_cat, vec![1, 2, 2, 5, 1, 5, 7]);
    }

    #[test]
    fn table5_lla_counts() {
        let profiles = build();
        let lla = profiles.iter().filter(|p| p.ipv6.lla).count();
        // 54 addressed devices − 4 NO_LLA = 50 (the paper's LLA column
        // sums to 50; its printed total of 51 does not match its own
        // per-category row).
        assert_eq!(lla, 50);
        for id in NO_LLA {
            let p = profiles.iter().find(|p| p.id == *id).unwrap();
            assert!(
                p.ipv6.slaac_gua || p.ipv6.ula,
                "{id} without LLA must still hold a GUA or ULA"
            );
        }
    }

    #[test]
    fn table5_dhcpv6_marginals() {
        assert_eq!(DHCPV6_STATEFUL.len(), 12);
        assert_eq!(DHCPV6_STATEFUL_USE.len(), 4);
        for id in DHCPV6_STATEFUL_USE {
            assert!(in_set(DHCPV6_STATEFUL, id), "{id} must support stateful");
        }
        assert_eq!(DHCPV6_STATELESS.len(), 16);
        // Category splits from Table 5.
        let cat_of = |id: &str| RAW.iter().find(|r| r.id == id).unwrap().category;
        let split = |set: &[&str]| {
            Category::ALL
                .iter()
                .map(|c| set.iter().filter(|id| cat_of(id) == *c).count())
                .collect::<Vec<_>>()
        };
        assert_eq!(split(DHCPV6_STATEFUL), vec![1, 0, 2, 2, 0, 6, 1]);
        assert_eq!(split(DHCPV6_STATELESS), vec![1, 0, 3, 3, 0, 6, 3]);
    }

    #[test]
    fn fig5_eui64_funnel() {
        // 31 devices with an active EUI-64 address (Table 5 row).
        assert_eq!(LLA_EUI64.len(), 31);
        let cat_of = |id: &str| RAW.iter().find(|r| r.id == id).unwrap().category;
        let split: Vec<usize> = Category::ALL
            .iter()
            .map(|c| LLA_EUI64.iter().filter(|id| cat_of(id) == *c).count())
            .collect();
        assert_eq!(split, vec![1, 2, 3, 7, 0, 8, 10]);

        // 15 devices *use* an EUI-64 GUA.
        assert_eq!(GUA_EUI64.len(), 15);
        for id in GUA_EUI64 {
            assert!(in_set(LLA_EUI64, id), "{id}: EUI GUA implies EUI LLA IIDs");
            let raw = RAW.iter().find(|r| r.id == *id).unwrap();
            assert!(raw.gua, "{id} must have a GUA");
        }
        // 18 assign-but-never-use; 33 assigners in total.
        assert_eq!(UNUSED_EUI64_GUA.len(), 18);
        for id in UNUSED_EUI64_GUA {
            assert!(!in_set(GUA_EUI64, id), "{id} cannot both use and not use");
        }
        assert_eq!(GUA_EUI64.len() + UNUSED_EUI64_GUA.len(), 33);

        // The 15 users split 5 internet / 3 DNS-only / 7 NTP-misc.
        let internet: Vec<&&str> = GUA_EUI64
            .iter()
            .filter(|id| {
                let raw = RAW.iter().find(|r| r.id == **id).unwrap();
                raw.data6
                    && !in_set(PRIVACY_GUA_FOR_TRAFFIC, id)
                    && !in_set(DATA_FROM_PRIVACY_GUA, id)
                    && !in_set(TRAFFIC_FROM_STATEFUL, id)
            })
            .collect();
        assert_eq!(
            internet.len(),
            5,
            "EUI-64 internet transmitters: {internet:?}"
        );
        let dns_users: Vec<&&str> = GUA_EUI64
            .iter()
            .filter(|id| {
                let raw = RAW.iter().find(|r| r.id == **id).unwrap();
                raw.dns6
                    && !in_set(PRIVACY_GUA_FOR_TRAFFIC, id)
                    && !in_set(TRAFFIC_FROM_STATEFUL, id)
            })
            .collect();
        assert_eq!(
            dns_users.len(),
            8,
            "8 devices use EUI-64 GUAs for DNS (5 also for data): {dns_users:?}"
        );
        let eui_probers = V6_ECHO_PROBE
            .iter()
            .filter(|id| in_set(GUA_EUI64, id))
            .count();
        assert_eq!(eui_probers, 7, "7 probe-only EUI-64 users");
        // Every GUA holder must use its GUA somehow (Table 5's 31 counts
        // active GUAs): dns6, data, echo probe, or the dual-stack deltas.
        for r in RAW.iter().filter(|r| r.gua) {
            assert!(
                r.dns6 || r.data6 || in_set(V6_ECHO_PROBE, r.id) || in_set(GUA_REQUIRES_V4, r.id),
                "{}: GUA would never be active",
                r.id
            );
        }
    }

    #[test]
    fn dad_offenders() {
        assert_eq!(DAD_NEVER.len(), 4);
        assert_eq!(DAD_NEVER.len() + DAD_LLA_ONLY.len(), 18);
        for id in DAD_NEVER.iter().chain(DAD_LLA_ONLY) {
            let raw = RAW.iter().find(|r| r.id == *id).unwrap();
            assert!(raw.addr, "{id} must have addresses to skip DAD on");
        }
        // The four full skippers are all EUI-64 (the paper's observation).
        for id in DAD_NEVER {
            assert!(in_set(LLA_EUI64, id), "{id} must be EUI-64");
        }
    }

    #[test]
    fn a_only_and_local_sets() {
        assert_eq!(A_ONLY_IN_V6.len(), 19);
        for id in A_ONLY_IN_V6 {
            let raw = RAW.iter().find(|r| r.id == *id).unwrap();
            assert!(raw.dns6, "{id}: A-only-over-v6 implies v6 DNS transport");
        }
        assert_eq!(LOCAL_IPV6.len(), 21);
        let cat_of = |id: &str| RAW.iter().find(|r| r.id == id).unwrap().category;
        let split: Vec<usize> = Category::ALL
            .iter()
            .map(|c| LOCAL_IPV6.iter().filter(|id| cat_of(id) == *c).count())
            .collect();
        assert_eq!(split, vec![1, 2, 5, 5, 0, 3, 5]);
        // Internet ∪ local = 29 (Table 5 "IPv6 TCP/UDP Trans").
        let internet: HashSet<&str> = RAW.iter().filter(|r| r.data6).map(|r| r.id).collect();
        let local: HashSet<&str> = LOCAL_IPV6.iter().copied().collect();
        assert_eq!(internet.union(&local).count(), 29);
    }

    #[test]
    fn purchase_year_marginals() {
        // Table 12 columns.
        let mut years = HashMap::new();
        for r in RAW.iter() {
            *years.entry(r.year).or_insert(0usize) += 1;
        }
        assert_eq!(years[&2017], 8);
        assert_eq!(years[&2018], 16);
        assert_eq!(years[&2019], 6);
        assert_eq!(years[&2021], 24);
        assert_eq!(years[&2022], 15);
        assert_eq!(years[&2023], 16);
        assert_eq!(years[&2024], 8);
        // Functional-by-year: 2018:2, 2021:5, 2022:1 (Table 12 bottom row).
        let func_years: Vec<u16> = RAW
            .iter()
            .filter(|r| r.functional_v6only)
            .map(|r| r.year)
            .collect();
        assert_eq!(func_years.iter().filter(|y| **y == 2018).count(), 2);
        assert_eq!(func_years.iter().filter(|y| **y == 2021).count(), 5);
        assert_eq!(func_years.iter().filter(|y| **y == 2022).count(), 1);
    }

    #[test]
    fn os_marginals() {
        // Table 8 OS columns.
        let os_count = |os: Os| RAW.iter().filter(|r| r.os == os).count();
        assert_eq!(os_count(Os::Tizen), 2);
        assert_eq!(os_count(Os::FireOs), 11);
        assert_eq!(os_count(Os::AndroidBased), 5);
        assert_eq!(os_count(Os::Fuchsia), 2);
        assert_eq!(os_count(Os::IosTvos), 2);
        // All five Android-based devices are functional; both Fuchsia.
        assert!(RAW
            .iter()
            .filter(|r| r.os == Os::AndroidBased)
            .all(|r| r.functional_v6only));
        assert!(RAW
            .iter()
            .filter(|r| r.os == Os::Fuchsia)
            .all(|r| r.functional_v6only));
    }

    #[test]
    fn manufacturer_marginals() {
        let man = |m: &str| RAW.iter().filter(|r| r.manufacturer == m).count();
        assert_eq!(man("Google"), 8);
        assert_eq!(man("SmartThings/Samsung"), 4);
        assert_eq!(man("Ring"), 5);
        assert_eq!(man("Tuya"), 6);
        assert_eq!(man("TP-Link"), 5);
        assert_eq!(man("Aidot"), 3);
        assert_eq!(man("Meross"), 3);
        assert_eq!(man("Withings"), 3);
        assert!(man("Amazon") >= 12);
    }

    #[test]
    fn aux_sets_reference_valid_ids() {
        let ids: HashSet<&str> = RAW.iter().map(|r| r.id).collect();
        let all_sets: Vec<&[&str]> = vec![
            ULA,
            NO_LLA,
            DHCPV6_STATEFUL,
            DHCPV6_STATEFUL_USE,
            DHCPV6_STATELESS,
            NO_RDNSS,
            ADDR_REQUIRES_V4,
            SKIP_V6_IF_V4,
            ADDRESSLESS,
            DAD_NEVER,
            DAD_LLA_ONLY,
            ROTATES_LLA,
            LLA_EUI64,
            GUA_EUI64,
            UNUSED_EUI64_GUA,
            PRIVACY_GUA_FOR_TRAFFIC,
            DATA_FROM_PRIVACY_GUA,
            TRAFFIC_FROM_STATEFUL,
            V6_ECHO_PROBE,
            A_ONLY_IN_V6,
            AAAA_V4_ONLY,
            AAAA_V4_ONLY_READY,
            DUAL_V4_DNS_EXTRA,
            HTTPS_RECORDS,
            SVCB_RECORDS,
            LOCAL_IPV6,
            DATA_REQUIRES_REQUIRED,
            ASSIGNS_UNUSED_ADDR,
        ];
        for set in all_sets {
            for id in set {
                assert!(ids.contains(id), "unknown id in aux set: {id}");
            }
        }
        for (id, _) in ADDR_CHURN {
            assert!(ids.contains(id), "unknown id in ADDR_CHURN: {id}");
        }
        for (id, _) in HARDCODED_V6 {
            assert!(ids.contains(id), "unknown id in HARDCODED_V6: {id}");
        }
        for (id, _) in FIRMWARE {
            assert!(ids.contains(id), "unknown id in FIRMWARE: {id}");
        }
    }

    #[test]
    fn profiles_build_consistently() {
        let profiles = build();
        assert_eq!(profiles.len(), 93);
        for p in &profiles {
            // A device with traffic must have destinations.
            assert!(
                !p.app.destinations.is_empty(),
                "{} needs destinations",
                p.id
            );
            // Every device has at least one required destination.
            assert!(
                p.required_destinations().count() >= 1,
                "{} needs a required destination",
                p.id
            );
            // Functional devices must have every required destination
            // AAAA-ready and resolvable over v6.
            if p.expect_functional_v6only {
                for d in p.required_destinations() {
                    assert!(
                        d.aaaa_ready && !d.a_only && d.wants_aaaa,
                        "{}: required {} must be v6-reachable",
                        p.id,
                        d.domain
                    );
                }
                assert!(p.dns.v6_transport, "{} must do DNS over v6", p.id);
            } else {
                // Non-functional devices must have at least one required
                // destination unreachable over v6 (AAAA-less, A-only, or
                // AAAA never requested).
                assert!(
                    p.required_destinations()
                        .any(|d| !d.aaaa_ready || d.a_only || !d.wants_aaaa)
                        || !p.dns.v6_transport,
                    "{} must have a v6-unreachable required destination",
                    p.id
                );
            }
        }
    }
}
