//! Destination-domain synthesis.
//!
//! The paper observes 2,083 distinct destination domains across the
//! testbed (Table 9), with per-category counts and AAAA readiness split
//! out in Table 7. We cannot reuse the authors' captures, so each device
//! gets a deterministic destination list sized to Table 7's budgets:
//! first-party names under a per-vendor zone, support-party names from a
//! shared CDN/NTP pool, and third-party names from a shared tracker pool
//! (including the three trackers §5.4.3 names). Domains the paper calls
//! out by name — `api.amazon.com`, `unagi-na.amazon.com`, `a2.tuyaus.com`
//! — are preserved verbatim on the devices the paper attributes them to.

use crate::profile::*;
use crate::registry::{RawDevice, A_ONLY_IN_V6, HARDCODED_V6};
use v6brick_net::dns::Name;

/// Per-device destination budget: (id, distinct domains, AAAA-ready
/// domains). Tuned so the per-category sums reproduce Table 7:
/// functional 728/533 (73.2%), non-functional 1344/418 (31.1%).
pub const DOMAIN_BUDGET: &[(&str, u16, u16)] = &[
    // Appliances — 75/16 non-functional.
    ("behmor_brewer", 4, 0),
    ("smarter_ikettle", 4, 0),
    ("ge_microwave", 8, 1),
    ("miele_dishwasher", 8, 2),
    ("samsung_fridge", 40, 12),
    ("xiaomi_induction", 5, 0),
    ("xiaomi_ricecooker", 6, 1),
    // Cameras — 157/44.
    ("amcrest_cam", 5, 0),
    ("arlo_q_cam", 10, 4),
    ("blink_doorbell", 8, 2),
    ("blink_security", 8, 3),
    ("dlink_camera", 4, 1),
    ("icsee_doorbell", 5, 0),
    ("lefun_cam", 4, 1),
    ("microseven_cam", 4, 0),
    ("nest_camera", 24, 10),
    ("nest_doorbell", 23, 9),
    ("ring_camera", 9, 3),
    ("ring_doorbell", 9, 3),
    ("ring_wired_cam", 8, 2),
    ("ring_indoor_cam", 7, 2),
    ("tplink_camera", 6, 0),
    ("tuya_camera", 6, 0),
    ("wyze_cam", 12, 4),
    ("yi_camera", 5, 0),
    // TV / Entertainment — functional 451/338, non-functional 318/127.
    ("nintendo_switch", 25, 6),
    ("apple_tv", 165, 106),
    ("google_tv", 147, 135),
    ("fire_tv", 120, 52),
    ("roku_tv", 60, 22),
    ("samsung_tv", 73, 32),
    ("tivo_stream", 139, 97),
    ("vizio_tv", 40, 15),
    // Gateways — 100/17.
    ("aeotec_hub", 18, 4),
    ("aqara_hub", 6, 0),
    ("aqara_hub_m2", 7, 0),
    ("eufy_hub", 8, 1),
    ("ikea_gateway", 10, 2),
    ("sengled_hub", 5, 0),
    ("smartthings_hub", 16, 4),
    ("switchbot_hub", 5, 0),
    ("hue_hub", 8, 2),
    ("switchbot_hub_2", 6, 1),
    ("thirdreality_bridge", 4, 0),
    ("smartlife_hub", 7, 3),
    // Health — 8/6 (Withings 3/3, 100 %).
    ("blueair_purifier", 2, 1),
    ("keyco_air", 2, 1),
    ("thermopro_sensor", 1, 1),
    ("withings_bpm", 1, 1),
    ("withings_sleep", 1, 1),
    ("withings_thermo", 1, 1),
    // Home automation — 108/23 (Aidot 7/0, Meross 21/4, TP-Link 23/3).
    ("amazon_plug", 2, 0),
    ("consciot_matter_bulb", 2, 0),
    ("gosund_bulb", 6, 3),
    ("govee_strip", 2, 0),
    ("govee_matter_strip", 2, 1),
    ("meross_dooropener", 7, 1),
    ("meross_matter_plug", 7, 2),
    ("magichome_strip", 5, 1),
    ("meross_plug", 7, 1),
    ("nest_thermostat", 16, 5),
    ("orein_matter_bulb", 3, 0),
    ("ring_chime", 1, 0),
    ("sengled_bulb", 2, 0),
    ("smartlife_remote", 6, 2),
    ("wemo_plug", 1, 0),
    ("tplink_kasa_bulb", 5, 0),
    ("tplink_kasa_plug", 5, 0),
    ("tplink_tapo_plug", 7, 2),
    ("wiz_bulb", 2, 1),
    ("yeelight_bulb", 1, 0),
    ("tuya_matter_plug", 6, 2),
    ("tapo_matter_bulb", 6, 1),
    ("linkind_matter_plug", 2, 0),
    ("leviton_matter_plug", 2, 1),
    ("august_lock", 2, 0),
    ("cync_matter_plug", 1, 0),
    // Speakers — functional 277/195, non-functional 578/185.
    ("echo_dot_2", 35, 8),
    ("echo_dot_3", 38, 9),
    ("echo_dot_4", 40, 10),
    ("echo_dot_5", 45, 12),
    ("echo_flex", 30, 6),
    ("echo_plus", 50, 13),
    ("echo_pop", 35, 8),
    ("echo_show_5", 90, 28),
    ("echo_show_8", 88, 26),
    ("echo_spot", 42, 10),
    ("meta_portal_mini", 44, 39),
    ("google_home_mini", 60, 42),
    ("google_nest_mini", 55, 38),
    ("homepod_mini", 85, 55),
    ("nest_hub", 62, 42),
    ("nest_hub_max", 56, 34),
];

/// Fig. 4 targets: percent of dual-stack Internet traffic volume sent
/// over IPv6, per device with any IPv6 Internet data. Three devices
/// exceed 80 %; more than half of the rest stay below 20 %; the Nest Hubs
/// sit below 20 % despite being IPv6-only functional.
pub const V6_SHARE_PCT: &[(&str, u8)] = &[
    ("apple_tv", 88),
    ("nest_camera", 85),
    ("meta_portal_mini", 82),
    ("nest_doorbell", 70),
    ("google_tv", 60),
    ("tivo_stream", 55),
    ("fire_tv", 45),
    ("samsung_tv", 40),
    ("vizio_tv", 35),
    ("homepod_mini", 35),
    ("echo_show_5", 18),
    ("echo_show_8", 16),
    ("ikea_gateway", 18),
    ("google_home_mini", 18),
    ("google_nest_mini", 15),
    ("echo_plus", 15),
    ("nest_hub", 15),
    ("nest_hub_max", 12),
    ("samsung_fridge", 12),
    ("echo_dot_5", 10),
    ("aeotec_hub", 10),
    ("echo_dot_2", 8),
    ("smartlife_hub", 8),
];

/// The v4-only required domain that bricks each "all features but still
/// non-functional" device in an IPv6-only network (§5.1.3). Amazon
/// devices share the paper-named pair; the SmartLife hub's required
/// domain *has* AAAA records but is only ever queried for A (the paper's
/// irony case), encoded via `a_only`.
const REQUIRED_V4ONLY: &[(&str, &str)] = &[
    ("samsung_fridge", "api.samsungcloud.example"),
    ("nest_camera", "nexusapi.google.example"),
    ("nest_doorbell", "nexusapi.google.example"),
    ("fire_tv", "api.amazon.com"),
    ("samsung_tv", "api.samsungcloud.example"),
    ("vizio_tv", "scribe.vizio.example"),
    ("aeotec_hub", "api.smartthings.example"),
    ("smartthings_hub", "api.smartthings.example"),
    ("homepod_mini", "gateway-setup.apple.example"),
    ("echo_plus", "api.amazon.com"),
    ("echo_show_5", "api.amazon.com"),
    ("echo_show_8", "api.amazon.com"),
    ("ikea_gateway", "api.dirigera.ikea.example"),
];

/// Listening services: (id, tcp v4, tcp v6, udp v4, udp v6). The Samsung
/// Fridge's three v6-only ports are §5.4.2's headline finding; exactly
/// six devices expose v4 ports missing from v6.
type Ports = (
    &'static str,
    &'static [u16],
    &'static [u16],
    &'static [u16],
    &'static [u16],
);
/// Per-device listening services (see [`OPEN_PORTS`]'s tuple layout).
pub const OPEN_PORTS: &[Ports] = &[
    (
        "samsung_fridge",
        &[8001, 8080],
        &[8001, 8080, 37993, 46525, 46757],
        &[],
        &[],
    ),
    ("amcrest_cam", &[80, 554], &[], &[], &[]),
    ("microseven_cam", &[80, 554], &[], &[], &[]),
    ("yi_camera", &[554], &[], &[], &[]),
    ("roku_tv", &[8060], &[], &[], &[]),
    ("wemo_plug", &[49153], &[], &[], &[]),
    ("tplink_kasa_plug", &[9999], &[], &[], &[]),
    ("hue_hub", &[80, 443], &[80, 443], &[], &[]),
    ("smartthings_hub", &[39500], &[39500], &[], &[]),
    ("apple_tv", &[7000, 49152], &[7000, 49152], &[5353], &[5353]),
    ("homepod_mini", &[7000], &[7000], &[5353], &[5353]),
    ("aeotec_hub", &[39500], &[39500], &[5540], &[5540]),
    ("meross_matter_plug", &[], &[], &[5540], &[5540]),
    ("tuya_matter_plug", &[], &[], &[5540], &[5540]),
    ("leviton_matter_plug", &[], &[], &[5540], &[5540]),
    ("smartlife_hub", &[6668], &[6668], &[], &[]),
];

/// Shared support-party pool (CDNs, storage, time).
const SUPPORT_POOL: &[&str] = &[
    "time.pool-ntp.example",
    "edge1.cdn-net.example",
    "edge2.cdn-net.example",
    "edge3.cdn-net.example",
    "s3-us.cloudstore.example",
    "s3-eu.cloudstore.example",
    "ota.firmware-cdn.example",
    "push.msg-relay.example",
];

/// Shared third-party pool — the first three are the trackers §5.4.3
/// names (v4-only infrastructure, hence absent from IPv6-only captures).
const THIRD_POOL: &[&str] = &[
    "app-measurement.com",
    "omtrdc.net",
    "segment.io",
    "metrics.adtrack.example",
    "beacon.quantify.example",
    "pixel.insight-net.example",
];

/// A short per-device token so generated names stay distinct across
/// same-vendor devices (each Echo talks to its own service endpoints;
/// the paper counts 2,083 distinct domains across the testbed).
fn device_token(id: &str) -> String {
    let mut h: u32 = 0x811c_9dc5;
    for b in id.bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    let mut t = String::with_capacity(3);
    for _ in 0..3 {
        let c = b"abcdefghijklmnopqrstuvwxyz"[(h % 26) as usize];
        t.push(c as char);
        h /= 26;
    }
    t
}

/// Slug a manufacturer name into a DNS label.
fn vendor_slug(manufacturer: &str) -> String {
    manufacturer
        .chars()
        .filter_map(|c| {
            if c.is_ascii_alphanumeric() {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' || c == '/' || c == '-' {
                Some('-')
            } else {
                None
            }
        })
        .collect::<String>()
        .trim_matches('-')
        .to_string()
}

/// Look up a device's domain budget.
pub fn budget_for(id: &str) -> (u16, u16) {
    DOMAIN_BUDGET
        .iter()
        .find(|(d, _, _)| *d == id)
        .map(|(_, n, a)| (*n, *a))
        .unwrap_or_else(|| panic!("no domain budget for {id}"))
}

/// Relative traffic volume per device class: TVs stream (8x), the big
/// assistant speakers/displays move media (6x), the simple Echo speakers
/// are lighter (2x), everything else is telemetry-sized (1x).
fn telemetry_scale_for(raw: &RawDevice) -> u8 {
    use crate::profile::Category;
    const HEAVY_SPEAKERS: &[&str] = &[
        "google_home_mini",
        "google_nest_mini",
        "nest_hub",
        "nest_hub_max",
        "meta_portal_mini",
        "homepod_mini",
    ];
    match raw.category {
        Category::TvEntertainment => 8,
        Category::Speaker if HEAVY_SPEAKERS.contains(&raw.id) => 6,
        Category::Speaker => 2,
        _ => 1,
    }
}

/// How many settled ticks the stack tolerates a silent IPv6 path before
/// falling back to IPv4. Streaming boxes ship modern happy-eyeballs
/// stacks and abandon a dead v6 path quickly; embedded firmware waits
/// out its longer default timeouts.
fn fallback_latency_for(raw: &RawDevice) -> u8 {
    use crate::profile::Category;
    match raw.category {
        Category::TvEntertainment => 6,
        _ => 8,
    }
}

/// Look up a device's Fig. 4 IPv6 volume share (percent).
pub fn v6_share_for(id: &str) -> u8 {
    V6_SHARE_PCT
        .iter()
        .find(|(d, _)| *d == id)
        .map(|(_, s)| *s)
        .unwrap_or(0)
}

/// Build the full application-behaviour block for one raw device row.
pub fn app_caps_for(raw: &RawDevice, dns: &DnsCaps) -> AppCaps {
    let id = raw.id;
    let (count, aaaa_budget) = budget_for(id);
    let v6_share = v6_share_for(id) as u32;
    let vendor = vendor_slug(raw.manufacturer);
    let a_only_device = A_ONLY_IN_V6.contains(&id);
    let queries_aaaa = dns.aaaa != AaaaTransport::None;

    let mut destinations = Vec::with_capacity(count as usize + 2);

    // 1. Required destinations.
    let v4only_required = REQUIRED_V4ONLY
        .iter()
        .find(|(d, _)| *d == id)
        .map(|(_, n)| *n);
    if raw.functional_v6only {
        // Functional devices: two required, both AAAA-ready and fully
        // resolvable over v6.
        for (k, label) in ["api", "events"].iter().enumerate() {
            destinations.push(Destination {
                domain: Name::new(&format!("{label}.{vendor}.example")).unwrap(),
                aaaa_ready: true,
                required: true,
                party: Party::First,
                volume_weight: 8 + k as u16,
                a_only: false,
                wants_aaaa: true,
                aaaa_v4_transport_only: false,
                dual_stack: DualStackChoice::Both,
            });
        }
    } else if id == "smartlife_hub" {
        // The paper's irony case: the required domain has AAAA records the
        // device never asks for.
        destinations.push(Destination {
            domain: Name::new("a2.tuyaus.com").unwrap(),
            aaaa_ready: true,
            required: true,
            party: Party::First,
            volume_weight: 8,
            a_only: true,
            wants_aaaa: false,
            aaaa_v4_transport_only: false,
            dual_stack: DualStackChoice::PreferV4,
        });
    } else if let Some(req) = v4only_required {
        destinations.push(Destination {
            domain: Name::new(req).unwrap(),
            aaaa_ready: false,
            required: true,
            party: Party::First,
            volume_weight: 8,
            a_only: false,
            wants_aaaa: queries_aaaa,
            aaaa_v4_transport_only: false,
            dual_stack: DualStackChoice::PreferV4,
        });
        if req == "api.amazon.com" {
            // The Echo/Fire devices also require the second paper-named
            // v4-only domain.
            destinations.push(Destination {
                domain: Name::new("unagi-na.amazon.com").unwrap(),
                aaaa_ready: false,
                required: true,
                party: Party::First,
                volume_weight: 6,
                a_only: false,
                wants_aaaa: queries_aaaa,
                aaaa_v4_transport_only: false,
                dual_stack: DualStackChoice::PreferV4,
            });
        }
    } else {
        // Simple devices: one required first-party cloud endpoint. When
        // the budget marks every destination v6-ready (Withings — the
        // paper's "issue lies with the devices, not their destinations"
        // case), the cloud is ready too; the device still bricks in
        // IPv6-only because its own stack never speaks IPv6.
        destinations.push(Destination {
            domain: Name::new(&format!("cloud.{vendor}.example")).unwrap(),
            aaaa_ready: aaaa_budget >= count,
            required: true,
            party: Party::First,
            volume_weight: 8,
            a_only: false,
            wants_aaaa: queries_aaaa,
            aaaa_v4_transport_only: false,
            dual_stack: DualStackChoice::PreferV4,
        });
    }

    // 2. Fill the remaining budget with generated names. AAAA-ready slots
    // are assigned first-party-first so vendor infrastructure reads as
    // more v6-ready than trackers, matching the §5.4.3 finding.
    let already = destinations.len() as u16;
    let already_ready = destinations.iter().filter(|d| d.aaaa_ready).count() as u16;
    let remaining = count.saturating_sub(already);
    let mut ready_left = aaaa_budget.saturating_sub(already_ready);

    let tok = device_token(id);
    // Devices whose destinations are overwhelmingly v6-ready (Google,
    // Meta) skip the shared v4-only pools so their AAAA budget fits.
    let use_shared_pools = u32::from(aaaa_budget) * 3 < u32::from(count) * 2;
    for i in 0..remaining {
        let mut shared = false;
        let (mut domain, mut party) = match i % 10 {
            0..=5 => (
                Name::new(&format!("svc{i}-{tok}.{vendor}.example")).unwrap(),
                Party::First,
            ),
            6..=8 => {
                // The first few support destinations come from the shared
                // CDN/NTP pool (real clouds share infrastructure; shared
                // infrastructure stays v4-only so its zone registration
                // is consistent testbed-wide); the rest are
                // device-specific CDN hostnames so large devices keep
                // their Table 7 distinct-name budgets.
                let name = if i < 10 && use_shared_pools {
                    shared = true;
                    SUPPORT_POOL[(i as usize + id.len()) % SUPPORT_POOL.len()].to_string()
                } else {
                    format!("cdn{i}-{tok}.{vendor}-net.example")
                };
                (Name::new(&name).unwrap(), Party::Support)
            }
            _ => {
                let k = i as usize / 10;
                let name = if k < THIRD_POOL.len() && use_shared_pools {
                    shared = true;
                    THIRD_POOL[(k + id.len()) % THIRD_POOL.len()].to_string()
                } else {
                    format!("t{i}-{tok}.metrics-grid.example")
                };
                (Name::new(&name).unwrap(), Party::Third)
            }
        };
        // First-party and support names soak up the AAAA budget; the
        // shared trackers stay v4-only. When the remaining budget needs
        // every remaining slot (heavily v6-ready vendors like Google),
        // would-be tracker slots become vendor CDNs instead.
        if party == Party::Third && u16::from(ready_left > 0) * ready_left >= remaining - i {
            party = Party::Support;
            shared = false;
            domain = Name::new(&format!("cdn{i}-{tok}.{vendor}-net.example")).unwrap();
        }
        let aaaa_ready = party != Party::Third && !shared && ready_left > 0;
        if aaaa_ready {
            ready_left -= 1;
        }
        // Real stacks only dual-resolve the names their HTTP layers touch:
        // ~5/9 of v6-ready names and half the rest get AAAA lookups. This
        // calibrates Table 6's 1077 distinct AAAA queries with 531
        // positive answers (49%).
        let wants_aaaa = queries_aaaa
            && if aaaa_ready {
                (i * 7 + 3) % 9 < 6
            } else {
                i % 5 < 3
            };
        let a_only = a_only_device && i % 10 == 4;
        let volume_weight = match party {
            Party::First => 4,
            Party::Support => 2,
            Party::Third => 1,
        };
        destinations.push(Destination {
            domain,
            aaaa_ready,
            required: false,
            party,
            volume_weight,
            a_only,
            wants_aaaa: wants_aaaa && !a_only,
            aaaa_v4_transport_only: false,
            dual_stack: DualStackChoice::PreferV4, // assigned below
        });
    }

    // 2b. Device-level DNS quirks.
    //
    // v6-DNS devices still route a fraction (~1/5) of their AAAA lookups
    // through the IPv4 resolver in dual-stack networks (per-process
    // resolver configuration): those names become IPv4-only AAAA
    // requests, which is how Table 5 reaches 33 devices with v4-only
    // AAAA names. Four devices with strictly modern stacks never do.
    const ALWAYS_V6_AAAA: &[&str] = &[
        "apple_tv",
        "homepod_mini",
        "meta_portal_mini",
        "tivo_stream",
    ];
    if dns.v6_transport && !ALWAYS_V6_AAAA.contains(&id) {
        let mut k = 0usize;
        for d in destinations.iter_mut() {
            if d.wants_aaaa && !d.required && !d.a_only {
                if k.is_multiple_of(5) {
                    d.aaaa_v4_transport_only = true;
                }
                k += 1;
            }
        }
    }
    // The Aeotec/SmartLife gateways resolve their v6-ready destinations
    // through the v4 resolver only; the SmartThings hub never
    // AAAA-queries its ready destinations at all. Both behaviours keep
    // gateway AAAA responses at zero in the IPv6-only experiments
    // (Table 3) while Table 7's active probing still finds the records.
    if dns.dual_v4_extra {
        for d in destinations.iter_mut() {
            if d.aaaa_ready && !d.required {
                d.wants_aaaa = true;
                d.aaaa_v4_transport_only = true;
            }
        }
    }
    if id == "smartthings_hub" {
        for d in destinations.iter_mut() {
            if d.aaaa_ready {
                d.wants_aaaa = false;
            }
        }
    }
    // AAAA-over-v4-only devices whose names are all v6-unready in the
    // paper (Blink Doorbell, Ring Camera, Eufy/Hue/SwitchBot hubs): their
    // resolvable-but-never-queried ready names keep Table 4's "+12 AAAA
    // responses" delta exact.
    const V4_AAAA_NO_READY: &[&str] = &[
        "blink_doorbell",
        "ring_camera",
        "eufy_hub",
        "hue_hub",
        "switchbot_hub_2",
    ];
    if V4_AAAA_NO_READY.contains(&id) {
        for d in destinations.iter_mut() {
            if d.aaaa_ready {
                d.wants_aaaa = false;
            }
        }
    }

    // 3. Dual-stack family choice: walk destinations accumulating volume
    // weight until the device's Fig. 4 IPv6 share is covered; those carry
    // v6 (required-v4-only destinations excepted). Devices with any v6
    // share always get at least one v6-carrying destination, even when
    // the share window lands on ineligible (v4-only) names.
    let total_weight: u32 = destinations
        .iter()
        .map(|d| u32::from(d.volume_weight))
        .sum();
    let mut cum: u32 = 0;
    let mut assigned_any = false;
    let mut k = 0u32;
    for d in destinations.iter_mut() {
        let eligible = d.aaaa_ready && d.wants_aaaa && !d.a_only;
        if eligible && v6_share > 0 && cum * 100 < total_weight * v6_share {
            d.dual_stack = if cum * 200 < total_weight * v6_share {
                DualStackChoice::PreferV6
            } else {
                DualStackChoice::Both
            };
            assigned_any = true;
        } else if eligible && v6_share > 0 {
            // Resolvable-over-v6 destinations past the volume window still
            // mostly keep a v6 session alive alongside v4 — RFC 6724
            // address selection rarely abandons v6 entirely, which is why
            // Table 9's "fully switching to IPv4" stays a small fraction
            // while "partially extending" dominates.
            k += 1;
            if !k.is_multiple_of(5) {
                d.dual_stack = DualStackChoice::Both;
            }
        }
        cum += u32::from(d.volume_weight);
    }
    if v6_share > 0 && !assigned_any {
        if let Some(d) = destinations
            .iter_mut()
            .find(|d| d.aaaa_ready && d.wants_aaaa && !d.a_only)
        {
            d.dual_stack = DualStackChoice::Both;
        } else if let Some(d) = destinations.iter_mut().find(|d| d.aaaa_ready && !d.a_only) {
            d.wants_aaaa = true;
            d.dual_stack = DualStackChoice::Both;
        }
    }

    let ports = OPEN_PORTS
        .iter()
        .find(|(d, ..)| *d == id)
        .copied()
        .unwrap_or((id, &[], &[], &[], &[]));

    AppCaps {
        destinations,
        local_ipv6: crate::registry::LOCAL_IPV6.contains(&id),
        hardcoded_v6_endpoint: HARDCODED_V6
            .iter()
            .find(|(d, _)| *d == id)
            .map(|(_, n)| Name::new(n).unwrap()),
        open_tcp_v4: ports.1.to_vec(),
        open_tcp_v6: ports.2.to_vec(),
        open_udp_v4: ports.3.to_vec(),
        open_udp_v6: ports.4.to_vec(),
        telemetry_period_s: 60,
        telemetry_scale: telemetry_scale_for(raw),
        v6_volume_share_pct: v6_share_for(id),
        no_v6_data: crate::registry::NO_V6_DATA.contains(&id),
        data_requires_required: crate::registry::DATA_REQUIRES_REQUIRED.contains(&id),
        fallback_latency_ticks: fallback_latency_for(raw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn budget_covers_all_93() {
        assert_eq!(DOMAIN_BUDGET.len(), 93);
        for r in registry::RAW.iter() {
            let (n, a) = budget_for(r.id);
            assert!(n >= 1, "{} must contact at least one domain", r.id);
            assert!(a <= n, "{}: AAAA budget exceeds domain budget", r.id);
        }
    }

    #[test]
    fn table7_category_budgets() {
        // Functional devices: 728 domains, 533 AAAA-ready.
        let (mut fd, mut fa, mut nd, mut na) = (0u32, 0u32, 0u32, 0u32);
        for r in registry::RAW.iter() {
            let (n, a) = budget_for(r.id);
            if r.functional_v6only {
                fd += u32::from(n);
                fa += u32::from(a);
            } else {
                nd += u32::from(n);
                na += u32::from(a);
            }
        }
        assert_eq!((fd, fa), (728, 533), "functional: Table 7 top-left block");
        assert_eq!((nd, na), (1344, 418), "non-functional: Table 7");
        // Readiness percentages: 73.2% vs 31.1%.
        assert!((fa * 1000 / fd) / 10 == 73);
        assert!((na * 1000 / nd) / 10 == 31);
    }

    #[test]
    fn v6_share_only_for_data_devices() {
        assert_eq!(V6_SHARE_PCT.len(), 23);
        for (id, share) in V6_SHARE_PCT {
            let raw = registry::RAW.iter().find(|r| r.id == *id).unwrap();
            assert!(raw.data6, "{id} has a v6 share but no v6 data");
            assert!(*share <= 100);
        }
        // Exactly three devices above 80%; the Nest Hubs below 20%.
        let over80 = V6_SHARE_PCT.iter().filter(|(_, s)| *s > 80).count();
        assert_eq!(over80, 3);
        assert!(v6_share_for("nest_hub") < 20);
        assert!(v6_share_for("nest_hub_max") < 20);
        // More than half of the sharing devices stay below 20%.
        let under20 = V6_SHARE_PCT.iter().filter(|(_, s)| *s < 20).count();
        assert!(under20 * 2 > V6_SHARE_PCT.len());
    }

    #[test]
    fn destination_generation_is_deterministic_and_budgeted() {
        let profiles = registry::build();
        for p in &profiles {
            let (n, a) = budget_for(&p.id);
            // The generated list may exceed the budget by the extra
            // paper-named required domains (unagi-na, a2.tuyaus).
            assert!(
                (p.app.destinations.len() as i32 - i32::from(n)).abs() <= 1,
                "{}: {} destinations vs budget {}",
                p.id,
                p.app.destinations.len(),
                n
            );
            let ready = p.app.destinations.iter().filter(|d| d.aaaa_ready).count();
            assert!(
                (ready as i32 - i32::from(a)).abs() <= 1,
                "{}: {} ready vs budget {}",
                p.id,
                ready,
                a
            );
        }
        // Determinism.
        let again = registry::build();
        assert_eq!(profiles, again);
    }

    #[test]
    fn paper_named_domains_present() {
        let fire = registry::by_id("fire_tv");
        assert!(fire
            .app
            .destinations
            .iter()
            .any(|d| d.domain.as_str() == "api.amazon.com" && d.required && !d.aaaa_ready));
        assert!(fire
            .app
            .destinations
            .iter()
            .any(|d| d.domain.as_str() == "unagi-na.amazon.com" && d.required));
        let smartlife = registry::by_id("smartlife_hub");
        let tuya = smartlife
            .app
            .destinations
            .iter()
            .find(|d| d.domain.as_str() == "a2.tuyaus.com")
            .expect("a2.tuyaus.com present");
        assert!(tuya.aaaa_ready && tuya.a_only && tuya.required);
    }

    #[test]
    fn fridge_has_v6_only_ports() {
        let fridge = registry::by_id("samsung_fridge");
        for port in [37993u16, 46525, 46757] {
            assert!(fridge.app.open_tcp_v6.contains(&port));
            assert!(!fridge.app.open_tcp_v4.contains(&port));
        }
        // Exactly six devices expose v4 TCP ports absent from v6.
        let v4_only_ports = registry::build()
            .iter()
            .filter(|p| {
                p.app
                    .open_tcp_v4
                    .iter()
                    .any(|port| !p.app.open_tcp_v6.contains(port))
            })
            .count();
        assert_eq!(v4_only_ports, 6);
    }

    #[test]
    fn trackers_are_v4_only() {
        for p in registry::build() {
            for d in &p.app.destinations {
                if d.party == Party::Third {
                    assert!(
                        !d.aaaa_ready,
                        "{}: tracker {} must be v4-only",
                        p.id, d.domain
                    );
                }
            }
        }
    }
}
