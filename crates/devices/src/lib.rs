#![warn(missing_docs)]
//! # v6brick-devices — the 93-device testbed
//!
//! Behavioural models of every consumer IoT device in the paper's
//! Mon(IoT)r testbed. The substitution argument (DESIGN.md): the
//! measurement pipeline only ever sees packets, so devices that emit the
//! same addressing, DNS, and data traffic as the real hardware exercise
//! the identical analysis code paths. Capability profiles are transcribed
//! per-device from the paper's own Table 10 (which publishes all six
//! headline feature flags for each of the 93 devices) and the §5
//! findings.
//!
//! * [`profile`] — the capability model.
//! * [`registry`] — Table 10 verbatim + auxiliary fact sets + marginal
//!   checks.
//! * [`domains`] — per-device destination synthesis (Table 7 budgets).
//! * [`stack`] — the generic device network stack ([`stack::IotDevice`]),
//!   one state machine driven by the profile.
//! * [`phone`] — the Pixel 7 / iPhone X verification phones.

pub mod domains;
pub mod phone;
pub mod profile;
pub mod registry;
pub mod stack;

pub use profile::{Category, DeviceProfile, Os, Party};
pub use stack::IotDevice;
