//! The verification phones (§4.2): a Google Pixel 7 and an iPhone X with
//! complete, modern dual-stack support. The paper uses them to confirm
//! each network configuration actually works before attributing failures
//! to the IoT devices; the experiment harness does the same.

use rand::Rng;
use std::any::Any;
use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};
use v6brick_net::dns::{Message, Name, RecordType};
use v6brick_net::ipv6::mcast;
use v6brick_net::ndp::{NdpOption, Repr as Ndp};
use v6brick_net::parse::{Net, ParsedPacket, L4};
use v6brick_net::{dhcpv4, icmpv6, Mac};
use v6brick_sim::event::SimTime;
use v6brick_sim::host::{Effects, Host};
use v6brick_sim::wire;

const TOKEN_TICK: u64 = 1;

/// A modern phone: SLAAC with privacy extensions, RDNSS, DHCPv4, DNS over
/// both families, and a connectivity check against a canary domain.
pub struct Phone {
    name: &'static str,
    mac: Mac,
    canary: Name,
    tick: u32,
    v4_addr: Option<Ipv4Addr>,
    v4_dns: Vec<Ipv4Addr>,
    gateway_mac: Option<Mac>,
    lla: Option<Ipv6Addr>,
    gua: Option<Ipv6Addr>,
    v6_dns: Vec<Ipv6Addr>,
    router_mac: Option<Mac>,
    pending: HashMap<u16, RecordType>,
    /// Did the canary resolve over v4 / over v6?
    pub canary_v4: bool,
    /// Did the canary domain resolve over IPv6 transport?
    pub canary_v6: bool,
    discover_sent: bool,
    seed: u64,
}

impl Phone {
    /// The Google Pixel 7.
    pub fn pixel7() -> Phone {
        Phone::new("pixel7", Mac::new(0x02, 0x9a, 0x11, 0x70, 0x00, 0x01))
    }

    /// The iPhone X.
    pub fn iphone_x() -> Phone {
        Phone::new("iphone-x", Mac::new(0x02, 0x9a, 0x11, 0x70, 0x00, 0x02))
    }

    fn new(name: &'static str, mac: Mac) -> Phone {
        let seed = mac
            .as_bytes()
            .iter()
            .fold(7u64, |a, b| a * 131 + u64::from(*b));
        Phone {
            name,
            mac,
            canary: Name::new("connectivity-check.phone.example").unwrap(),
            tick: 0,
            v4_addr: None,
            v4_dns: Vec::new(),
            gateway_mac: None,
            lla: None,
            gua: None,
            v6_dns: Vec::new(),
            router_mac: None,
            pending: HashMap::new(),
            canary_v4: false,
            canary_v6: false,
            discover_sent: false,
            seed,
        }
    }

    /// The phone's id for diagnostics.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Network verification: at least one family is fully working.
    pub fn network_ok(&self) -> bool {
        self.canary_v4 || self.canary_v6
    }

    /// The canary domain the harness must register in the zone database.
    pub fn canary_domain() -> Name {
        Name::new("connectivity-check.phone.example").unwrap()
    }

    fn privacy_iid(&self, salt: u64) -> [u8; 8] {
        let mut h = self.seed ^ salt.wrapping_mul(0x2545_f491_4f6c_dd1d);
        h ^= h >> 29;
        let mut iid = h.to_be_bytes();
        iid[3] = 0xcc;
        iid[4] = 0xdd;
        iid
    }
}

impl Host for Phone {
    fn mac(&self) -> Mac {
        self.mac
    }

    fn on_start(&mut self, _now: SimTime, fx: &mut Effects) {
        fx.set_timer(SimTime::from_millis(500 + self.seed % 700), TOKEN_TICK);
    }

    fn on_frame(&mut self, _now: SimTime, frame: &[u8], fx: &mut Effects) {
        let Ok(p) = ParsedPacket::parse(frame) else {
            return;
        };
        match (&p.net, &p.l4) {
            (
                Net::Ipv4(_),
                L4::Udp {
                    src_port: 67,
                    dst_port: 68,
                    payload,
                },
            ) => {
                if let Ok(msg) = dhcpv4::Repr::parse_bytes(payload) {
                    if msg.client_mac != self.mac {
                        return;
                    }
                    match msg.message_type {
                        dhcpv4::MessageType::Offer => {
                            self.v4_addr = Some(msg.your_addr);
                            let mut req =
                                dhcpv4::Repr::client(dhcpv4::MessageType::Request, 0x9a, self.mac);
                            req.requested_ip = Some(msg.your_addr);
                            req.server_id = msg.server_id;
                            fx.send_frame(wire::udp4_frame(
                                self.mac,
                                Mac::BROADCAST,
                                Ipv4Addr::UNSPECIFIED,
                                Ipv4Addr::BROADCAST,
                                68,
                                67,
                                req.build(),
                            ));
                        }
                        dhcpv4::MessageType::Ack => {
                            self.v4_addr = Some(msg.your_addr);
                            self.v4_dns = msg.dns_servers.clone();
                            self.gateway_mac = Some(p.eth.src);
                        }
                        _ => {}
                    }
                }
            }
            (Net::Ipv6(_), L4::Icmpv6(icmpv6::Repr::Ndp(Ndp::RouterAdvert { options, .. }))) => {
                self.router_mac = Some(p.eth.src);
                if self.lla.is_none() {
                    let lla = Phone::addr(
                        Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 0),
                        self.privacy_iid(1),
                    );
                    self.lla = Some(lla);
                }
                for o in options {
                    match o {
                        NdpOption::PrefixInfo {
                            autonomous: true,
                            prefix,
                            ..
                        } if self.gua.is_none() => {
                            let gua = Phone::addr(*prefix, self.privacy_iid(2));
                            self.gua = Some(gua);
                            // Announce so the router can route back.
                            let na = icmpv6::Repr::Ndp(Ndp::NeighborAdvert {
                                router: false,
                                solicited: false,
                                override_flag: true,
                                target: gua,
                                options: vec![NdpOption::TargetLinkLayerAddr(self.mac)],
                            });
                            fx.send_frame(wire::icmpv6_frame(
                                self.mac,
                                Mac::for_ipv6_multicast(mcast::ALL_NODES),
                                gua,
                                mcast::ALL_NODES,
                                &na,
                            ));
                        }
                        NdpOption::Rdnss { servers, .. } => {
                            self.v6_dns = servers.clone();
                        }
                        _ => {}
                    }
                }
            }
            (
                _,
                L4::Udp {
                    src_port: 53,
                    payload,
                    ..
                },
            ) => {
                if let Ok(msg) = Message::parse_bytes(payload) {
                    if let Some(rtype) = self.pending.remove(&msg.id) {
                        match rtype {
                            RecordType::A if msg.a_answers().next().is_some() => {
                                self.canary_v4 = true;
                            }
                            RecordType::Aaaa if msg.aaaa_answers().next().is_some() => {
                                self.canary_v6 = true;
                            }
                            _ => {}
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _now: SimTime, _token: u64, fx: &mut Effects) {
        self.tick += 1;
        if !self.discover_sent {
            self.discover_sent = true;
            let mut d = dhcpv4::Repr::client(dhcpv4::MessageType::Discover, 0x9a, self.mac);
            d.hostname = Some(self.name.to_string());
            fx.send_frame(wire::udp4_frame(
                self.mac,
                Mac::BROADCAST,
                Ipv4Addr::UNSPECIFIED,
                Ipv4Addr::BROADCAST,
                68,
                67,
                d.build(),
            ));
            // And solicit routers.
            let rs = icmpv6::Repr::Ndp(Ndp::RouterSolicit { options: vec![] });
            fx.send_frame(wire::icmpv6_frame(
                self.mac,
                Mac::for_ipv6_multicast(mcast::ALL_ROUTERS),
                Ipv6Addr::UNSPECIFIED,
                mcast::ALL_ROUTERS,
                &rs,
            ));
        }
        // Connectivity checks once transports are up.
        if self.tick >= 5 {
            if let (Some(src), Some(&dns), Some(gw)) =
                (self.v4_addr, self.v4_dns.first(), self.gateway_mac)
            {
                if !self.canary_v4 {
                    let id = 0x4a00 | (self.tick as u16 & 0xff);
                    self.pending.insert(id, RecordType::A);
                    let q = Message::query(id, self.canary.clone(), RecordType::A).build();
                    fx.send_frame(wire::udp4_frame(self.mac, gw, src, dns, 40053, 53, q));
                }
            }
            if let (Some(src), Some(&dns), Some(rm)) =
                (self.gua, self.v6_dns.first(), self.router_mac)
            {
                if !self.canary_v6 {
                    let id = 0x6a00 | (self.tick as u16 & 0xff);
                    self.pending.insert(id, RecordType::Aaaa);
                    let q = Message::query(id, self.canary.clone(), RecordType::Aaaa).build();
                    fx.send_frame(wire::udp6_frame(self.mac, rm, src, dns, 40053, 53, q));
                }
            }
        }
        let jitter = fx.rng.gen_range(0..500u64);
        fx.set_timer(SimTime::from_secs(2) + SimTime(jitter), TOKEN_TICK);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Phone {
    fn addr(prefix: Ipv6Addr, iid: [u8; 8]) -> Ipv6Addr {
        let mut o = prefix.octets();
        o[8..].copy_from_slice(&iid);
        Ipv6Addr::from(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phones_have_distinct_identities() {
        let p = Phone::pixel7();
        let i = Phone::iphone_x();
        assert_ne!(p.mac(), i.mac());
        assert_ne!(p.name(), i.name());
        assert!(!p.network_ok());
    }

    #[test]
    fn privacy_iids_are_not_eui64() {
        use v6brick_net::ipv6::Ipv6AddrExt;
        let p = Phone::pixel7();
        let a = Phone::addr("2001:db8:10:1::".parse().unwrap(), p.privacy_iid(2));
        assert!(!a.is_eui64());
    }
}
