//! Capability profiles: everything the paper's Table 10 and §5 findings
//! tell us about how each of the 93 devices behaves on the wire.
//!
//! The behavioural device model ([`crate::stack::IotDevice`]) is one
//! generic state machine driven entirely by a [`DeviceProfile`]; no device
//! has bespoke code. The registry ([`crate::registry`]) constructs the 93
//! profiles and carries tests pinning every paper marginal the profiles
//! must reproduce.

use serde::{Deserialize, Serialize};
use v6brick_net::dns::Name;
use v6brick_net::Mac;

/// The seven device categories of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Smart appliances (fridges, kettles, microwaves, ...).
    Appliance,
    /// Cameras and video doorbells.
    Camera,
    /// Tv Entertainment.
    TvEntertainment,
    /// Hubs and bridges (SmartThings, Hue, Matter, ...).
    Gateway,
    /// Health and air-quality devices.
    Health,
    /// Plugs, bulbs, light strips, locks, thermostats.
    HomeAuto,
    /// Smart speakers and displays.
    Speaker,
}

impl Category {
    /// All categories, in the paper's column order.
    pub const ALL: [Category; 7] = [
        Category::Appliance,
        Category::Camera,
        Category::TvEntertainment,
        Category::Gateway,
        Category::Health,
        Category::HomeAuto,
        Category::Speaker,
    ];

    /// The paper's column label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Appliance => "Appliance",
            Category::Camera => "Camera",
            Category::TvEntertainment => "TV/Ent.",
            Category::Gateway => "Gateway",
            Category::Health => "Health",
            Category::HomeAuto => "Home Auto",
            Category::Speaker => "Speaker",
        }
    }
}

/// Operating system / platform families the paper distinguishes (Table 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Os {
    /// Samsung's Tizen (the Fridge and TV).
    Tizen,
    /// Amazon's Android-derived Fire OS (Echo family, Fire TV).
    FireOs,
    /// Android or Android-derived (Google TV, TiVo, Meta Portal, ...).
    AndroidBased,
    /// Google's Fuchsia (the Nest Hubs).
    Fuchsia,
    /// Apple's iOS/tvOS family (Apple TV, HomePod).
    IosTvos,
    /// Embedded RTOS firmware (the bulk of simple IoT).
    Embedded,
    /// Embedded Linux firmware.
    EmbeddedLinux,
    /// Unidentified firmware.
    Unknown,
}

impl Os {
    /// The paper's column label.
    pub fn label(self) -> &'static str {
        match self {
            Os::Tizen => "Tizen",
            Os::FireOs => "FireOS (Android)",
            Os::AndroidBased => "Android-based",
            Os::Fuchsia => "Fuchsia",
            Os::IosTvos => "iOS/tvOS",
            Os::Embedded => "Embedded RTOS",
            Os::EmbeddedLinux => "Embedded Linux",
            Os::Unknown => "Unknown",
        }
    }
}

/// How thoroughly a device performs Duplicate Address Detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DadBehavior {
    /// DAD before every address (RFC 4862 compliant).
    Full,
    /// DAD only for the link-local address; global addresses skip it (the
    /// pre-2007 shortcut RFC 4862 now forbids).
    LinkLocalOnly,
    /// Never performs DAD (the paper's 2 Aqara hubs + 2 home-automation
    /// devices).
    Never,
}

/// How a device transports DNS AAAA queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AaaaTransport {
    /// Never queries AAAA.
    None,
    /// Queries AAAA only over IPv4 (so, only in dual-stack networks) — the
    /// Table 4 "+15 devices" effect.
    V4Only,
    /// Queries AAAA over IPv6 when an IPv6 resolver is configured, over
    /// IPv4 otherwise.
    V6Capable,
}

/// The party a destination belongs to (§5.4 definitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Party {
    /// Device-vendor infrastructure (plus YouTube for TVs).
    First,
    /// Cloud/CDN/NTP support services.
    Support,
    /// Everything else — analytics, trackers.
    Third,
}

/// One destination the device talks to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Destination {
    /// The destination's DNS name.
    pub domain: Name,
    /// Does the domain publish an AAAA record (Table 7 readiness)?
    pub aaaa_ready: bool,
    /// Is this destination required for the device's primary function
    /// (§5.1.3)? All required destinations must be reachable for the
    /// functionality test to pass.
    pub required: bool,
    /// First/support/third party, per the §5.4 definitions.
    pub party: Party,
    /// Relative telemetry weight: bytes-per-period multiplier.
    pub volume_weight: u16,
    /// Queried A-only even over IPv6 transport (the 19-device/114-name
    /// limitation of §5.2.2)?
    pub a_only: bool,
    /// Does the device issue an AAAA query for this destination at all?
    /// Real stacks only resolve AAAA for names their HTTP layer touches
    /// via dual-family lookups; Table 6's 1077 distinct AAAA names are a
    /// subset of all 2083 destination names.
    pub wants_aaaa: bool,
    /// The AAAA query for this destination only ever rides IPv4 transport
    /// (the Aeotec/SmartLife gateways resolve their v6-ready CDNs through
    /// the v4 resolver only, which is why they gain AAAA responses — and
    /// IPv6 data — exclusively in dual-stack).
    pub aaaa_v4_transport_only: bool,
    /// In a dual-stack network, does the device reach this destination
    /// over IPv6 where possible (RFC 6724 preference), over IPv4 despite
    /// an AAAA record, or over both?
    pub dual_stack: DualStackChoice,
}

/// Per-destination dual-stack family preference (drives Table 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DualStackChoice {
    /// RFC 6724 style: IPv6 whenever an AAAA answer exists.
    PreferV6,
    /// Sticks to IPv4 despite available AAAA records.
    PreferV4,
    /// Keeps sessions on both families in dual-stack.
    Both,
}

/// IPv6 stack capabilities (Tables 3/5 features).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv6Caps {
    /// Emits NDP traffic at all. Devices without this are the "No IPv6"
    /// 36.6% of Table 3.
    pub ndp: bool,
    /// Configures addresses only when IPv4 is also available (ThermoPro,
    /// Gosund, Meross Plug — the Table 4 "+2 addresses" delta).
    pub addr_requires_v4: bool,
    /// Skips IPv6 entirely when IPv4 is available (ThirdReality — the
    /// Table 4 "−1 NDP" delta).
    pub skip_v6_if_v4: bool,
    /// Emits NDP from `::` but never completes address assignment (the 8
    /// "NDP traffic, no address" devices).
    pub addressless: bool,
    /// Configures a link-local address.
    pub lla: bool,
    /// Configures a SLAAC GUA from Router Advertisement prefixes.
    pub slaac_gua: bool,
    /// GUA only when IPv4 present (Echo Dot 2nd/5th gen).
    pub gua_requires_v4: bool,
    /// The link-local interface identifier uses EUI-64 format. 31 devices
    /// have at least one active EUI-64 address (Table 5).
    pub lla_eui64: bool,
    /// The *active* SLAAC GUA uses EUI-64 format (no privacy extensions) —
    /// the §5.4.1 tracking exposure; 15 devices use such addresses.
    pub gua_eui64: bool,
    /// Additionally assigns an EUI-64 GUA that is never used for traffic
    /// (privacy-extension devices that still bring up the stable address,
    /// plus the Aqara hubs) — with the 15 users this makes Fig. 5's 33
    /// assigners.
    pub unused_eui64_gua: bool,
    /// Despite forming an EUI-64 GUA, DNS and data traffic are sourced
    /// from a privacy GUA (Samsung TV, Vizio TV, IKEA gateway — their
    /// EUI-64 address only ever sources NTP).
    pub privacy_gua_for_traffic: bool,
    /// Data (but not DNS) comes from a privacy GUA (SmartLife hub: DNS
    /// from the EUI-64 address, cloud fallback data from a privacy one).
    pub data_from_privacy_gua: bool,
    /// DNS and data are sourced from the stateful DHCPv6 address (Samsung
    /// Fridge — one of the four stateful-address users).
    pub traffic_from_stateful: bool,
    /// Sends periodic ICMPv6 echo connectivity probes from its GUA.
    /// For EUI-64 devices this is the "misc" use completing Fig. 5's
    /// funnel (the address is *used* without DNS or TCP/UDP data); for
    /// three privacy-GUA devices (ThermoPro, Meross/Tapo Matter) it is
    /// the only thing that ever activates their GUA.
    pub v6_echo_probe: bool,
    /// Self-assigns a ULA (Matter / HomeKit fabric membership).
    pub ula: bool,
    /// Duplicate address detection compliance.
    pub dad: DadBehavior,
    /// Supports stateful DHCPv6 (requests an IA_NA when the RA M flag is
    /// set).
    pub dhcpv6_stateful: bool,
    /// Actually sends traffic from the stateful address (only 4 devices).
    pub dhcpv6_stateful_use: bool,
    /// Supports stateless DHCPv6 (Information-Request for DNS).
    pub dhcpv6_stateless: bool,
    /// Can consume the RDNSS RA option (Vizio TV cannot).
    pub rdnss: bool,
    /// Rotates its link-local address during the experiment (Samsung
    /// Fridge/TV, HomePod Mini, Apple TV).
    pub rotates_lla: bool,
    /// Number of extra GUA/ULA regenerations over the experiment — the 10
    /// churny devices produce 80% of all GUAs (Fig. 3).
    pub addr_churn: u8,
    /// Assigns at least one additional address it never uses (25 devices).
    pub assigns_unused_addr: bool,
}

impl Ipv6Caps {
    /// A device with no IPv6 activity whatsoever.
    pub fn none() -> Ipv6Caps {
        Ipv6Caps {
            ndp: false,
            addr_requires_v4: false,
            skip_v6_if_v4: false,
            addressless: false,
            lla: false,
            slaac_gua: false,
            gua_requires_v4: false,
            lla_eui64: false,
            gua_eui64: false,
            unused_eui64_gua: false,
            privacy_gua_for_traffic: false,
            data_from_privacy_gua: false,
            traffic_from_stateful: false,
            v6_echo_probe: false,
            ula: false,
            dad: DadBehavior::Full,
            dhcpv6_stateful: false,
            dhcpv6_stateful_use: false,
            dhcpv6_stateless: false,
            rdnss: false,
            rotates_lla: false,
            addr_churn: 0,
            assigns_unused_addr: false,
        }
    }
}

/// DNS client capabilities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsCaps {
    /// How AAAA lookups are transported, if at all.
    pub aaaa: AaaaTransport,
    /// Uses an IPv6 resolver address when one was learned (RDNSS or
    /// DHCPv6) — the "DNS over IPv6" column.
    pub v6_transport: bool,
    /// Queries HTTPS resource records (HTTP/3 probing — 5 devices).
    pub https_records: bool,
    /// Queries SVCB records (2 Apple devices).
    pub svcb_records: bool,
    /// In dual-stack, additionally retries AAAA over IPv4 transport for
    /// destinations its IPv6-transport queries could not resolve (Aeotec
    /// and SmartLife hubs — the gateway "+2 AAAA responses" of Table 4).
    pub dual_v4_extra: bool,
}

impl DnsCaps {
    /// A v4-only resolver client that never asks for AAAA.
    pub fn v4_a_only() -> DnsCaps {
        DnsCaps {
            aaaa: AaaaTransport::None,
            v6_transport: false,
            https_records: false,
            svcb_records: false,
            dual_v4_extra: false,
        }
    }
}

/// Application-level behaviour: destinations, local protocols, services.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppCaps {
    /// Every destination the device contacts.
    pub destinations: Vec<Destination>,
    /// Speaks a local IPv6 protocol (mDNS announcements, Matter-style
    /// exchanges) — drives "Local Trans" and ULA usage.
    pub local_ipv6: bool,
    /// Connects to a hard-coded IPv6 literal (no DNS) for its cloud — the
    /// IKEA-gateway behaviour that yields data-without-DNS.
    pub hardcoded_v6_endpoint: Option<Name>,
    /// TCP ports the device listens on over IPv4.
    pub open_tcp_v4: Vec<u16>,
    /// TCP ports open over IPv6 (the Samsung Fridge's extra 37993/46525/
    /// 46757 live here).
    pub open_tcp_v6: Vec<u16>,
    /// UDP services over IPv4.
    pub open_udp_v4: Vec<u16>,
    /// UDP services over IPv6.
    pub open_udp_v6: Vec<u16>,
    /// Seconds between telemetry rounds.
    pub telemetry_period_s: u32,
    /// Relative traffic volume multiplier: streaming TVs move an order of
    /// magnitude more data than a smart plug, which is what makes the
    /// testbed-wide dual-stack IPv6 fraction land at the paper's ~22 %
    /// despite most devices being v4-heavy (Table 6 bottom row).
    pub telemetry_scale: u8,
    /// Fig. 4 target: percent of dual-stack Internet volume carried over
    /// IPv6. The stack splits each telemetry round's byte budget between
    /// its v6 and v4 connections accordingly.
    pub v6_volume_share_pct: u8,
    /// The device's TCP client is effectively v4-bound (Echo Spot: it
    /// resolves AAAA over IPv6 but never opens an IPv6 connection —
    /// Table 10's "DNS over IPv6 ✓, Global Data ✗" row).
    pub no_v6_data: bool,
    /// Telemetry only starts once every required destination connected
    /// (Fire TV: its cloud session gates all other traffic, which is why
    /// it transmits no IPv6 data in an IPv6-only network despite resolving
    /// AAAA records).
    pub data_requires_required: bool,
    /// Happy-eyeballs fallback latency in device ticks: how long an
    /// unanswered IPv6 handshake (or a stalled established IPv6 session)
    /// is tolerated before the stack abandons it and falls back to IPv4.
    pub fallback_latency_ticks: u8,
}

/// The complete profile of one testbed device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Stable snake_case identifier.
    pub id: String,
    /// Human-readable name as printed in Table 10.
    pub name: String,
    /// Table 3 category.
    pub category: Category,
    /// Manufacturer / platform name.
    pub manufacturer: String,
    /// Operating-system family (Table 8).
    pub os: Os,
    /// Purchase year (Table 12 grouping).
    pub purchase_year: u16,
    /// Layer-2 identity (also the EUI-64 leak source).
    pub mac: Mac,
    /// IPv6 stack capabilities.
    pub ipv6: Ipv6Caps,
    /// DNS client capabilities.
    pub dns: DnsCaps,
    /// Application behaviour: destinations, services, volumes.
    pub app: AppCaps,
    /// Ground truth from Table 10: functional in an IPv6-only network.
    /// (The simulation must *reproduce* this; the functionality tester
    /// never reads it. It exists for registry self-checks.)
    pub expect_functional_v6only: bool,
}

impl DeviceProfile {
    /// All destination domains (deduplicated set is the caller's job).
    pub fn domains(&self) -> impl Iterator<Item = &Name> {
        self.app.destinations.iter().map(|d| &d.domain)
    }

    /// The destinations the functionality test hinges on.
    pub fn required_destinations(&self) -> impl Iterator<Item = &Destination> {
        self.app.destinations.iter().filter(|d| d.required)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_labels_match_paper_columns() {
        assert_eq!(Category::ALL.len(), 7);
        assert_eq!(Category::TvEntertainment.label(), "TV/Ent.");
        assert_eq!(Category::HomeAuto.label(), "Home Auto");
    }

    #[test]
    fn empty_caps_have_no_ipv6() {
        let c = Ipv6Caps::none();
        assert!(!c.ndp && !c.lla && !c.slaac_gua && !c.ula);
        assert_eq!(c.dad, DadBehavior::Full);
    }

    #[test]
    fn profile_serde_roundtrip() {
        let p = DeviceProfile {
            id: "test_device".into(),
            name: "Test Device".into(),
            category: Category::Speaker,
            manufacturer: "Acme".into(),
            os: Os::Embedded,
            purchase_year: 2023,
            mac: Mac::new(2, 0, 0, 0, 0, 1),
            ipv6: Ipv6Caps::none(),
            dns: DnsCaps::v4_a_only(),
            app: AppCaps {
                destinations: vec![Destination {
                    domain: Name::new("cloud.acme.com").unwrap(),
                    aaaa_ready: true,
                    required: true,
                    party: Party::First,
                    volume_weight: 3,
                    a_only: false,
                    wants_aaaa: true,
                    aaaa_v4_transport_only: false,
                    dual_stack: DualStackChoice::PreferV6,
                }],
                local_ipv6: false,
                hardcoded_v6_endpoint: None,
                open_tcp_v4: vec![80],
                open_tcp_v6: vec![],
                open_udp_v4: vec![],
                open_udp_v6: vec![],
                telemetry_period_s: 60,
                telemetry_scale: 1,
                v6_volume_share_pct: 0,
                no_v6_data: false,
                data_requires_required: false,
                fallback_latency_ticks: 8,
            },
            expect_functional_v6only: false,
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: DeviceProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        assert_eq!(p.required_destinations().count(), 1);
    }
}
