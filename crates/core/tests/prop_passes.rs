//! Property tests pinning the composable pass pipeline to the
//! pre-refactor monolithic fold.
//!
//! The decomposition of `observe` into `core::analysis` passes must be
//! invisible: for ANY frame interleaving — valid protocol exchanges,
//! garbage, truncations, unattributable MACs — the full `PassSet`
//! produces the byte-identical `ExperimentAnalysis` (via serde_json)
//! that the monolithic analyzer produced before the refactor. The
//! oracle below is that monolith's `feed_parsed`, copied verbatim from
//! the pre-refactor `observe.rs` so the comparison stays independent of
//! the pass implementations.
//!
//! A second property checks subset monotonicity: running any subset of
//! passes yields exactly the full run's values for every field the
//! subset's closure owns, and untouched defaults for every field it
//! does not.

use proptest::prelude::*;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use v6brick_core::analysis::PassId;
use v6brick_core::flows::FlowTable;
use v6brick_core::observe::{DeviceObservation, ExperimentAnalysis, StreamingAnalyzer};
use v6brick_net::dns::{Message, Name, Rcode, Rdata, Record, RecordType};
use v6brick_net::ethernet::{EtherType, Repr as EthRepr};
use v6brick_net::ipv4::Protocol;
use v6brick_net::ipv6::{Cidr, Ipv6AddrExt};
use v6brick_net::ndp::Repr as Ndp;
use v6brick_net::parse::{self, Net, ParsedPacket, L4};
use v6brick_net::udp::PseudoHeader;
use v6brick_net::{dhcpv4, dhcpv6, icmpv6, ipv4, ipv6, tcp, tls, udp, Mac};

// --- the oracle: the pre-refactor monolithic analyzer -----------------------

/// The monolithic single-pass analyzer exactly as it existed before the
/// `core::analysis` decomposition (`feed_parsed` copied from the old
/// `observe.rs`), plus the `parse_errors` counter the refactor added to
/// `feed` so the serialized outputs stay comparable.
struct Monolith {
    devices: Vec<(Mac, String)>,
    lan_prefix: Cidr,
    mac_index: HashMap<Mac, usize>,
    obs: Vec<DeviceObservation>,
    analysis: ExperimentAnalysis,
    pending: HashMap<(Mac, u16), (Name, RecordType, bool)>,
    flows: FlowTable,
}

impl Monolith {
    fn new(devices: &[(Mac, String)], lan_prefix: Cidr) -> Monolith {
        Monolith {
            devices: devices.to_vec(),
            lan_prefix,
            mac_index: devices
                .iter()
                .enumerate()
                .map(|(i, (m, _))| (*m, i))
                .collect(),
            obs: vec![DeviceObservation::default(); devices.len()],
            analysis: ExperimentAnalysis::default(),
            pending: HashMap::new(),
            flows: FlowTable::new(),
        }
    }

    fn feed(&mut self, timestamp_us: u64, frame: &[u8]) {
        if let Ok(p) = parse::parse_lenient(frame) {
            self.feed_parsed(timestamp_us, &p);
        } else {
            self.analysis.parse_errors += 1;
        }
    }

    fn feed_parsed(&mut self, ts: u64, p: &ParsedPacket) {
        let analysis = &mut self.analysis;
        let obs = &mut self.obs;
        let pending = &mut self.pending;
        let lan_prefix = self.lan_prefix;
        analysis.frames += 1;
        let from = self.mac_index.get(&p.eth.src).copied();
        let to = self.mac_index.get(&p.eth.dst).copied();
        if from.is_none() && to.is_none() {
            analysis.unattributed_frames += 1;
        }
        self.flows.record(ts, p);

        // --- NDP / ICMPv6, attributed to the sender ---
        if let (Net::Ipv6(ip), L4::Icmpv6(msg)) = (&p.net, &p.l4) {
            if let Some(i) = from {
                let o = &mut obs[i];
                match msg {
                    icmpv6::Repr::Ndp(ndp) => {
                        o.ndp_traffic = true;
                        match ndp {
                            Ndp::NeighborSolicit { target, .. } if ip.src.is_unspecified() => {
                                o.dad_probed.insert(*target);
                                o.announced_v6.insert(*target);
                            }
                            Ndp::NeighborAdvert { target, .. } => {
                                o.announced_v6.insert(*target);
                            }
                            _ => {}
                        }
                    }
                    icmpv6::Repr::EchoRequest { .. }
                        if !ip.src.is_unspecified() && !ip.src.is_multicast() =>
                    {
                        o.active_v6.insert(ip.src);
                    }
                    _ => {}
                }
            }
            return;
        }

        // --- DHCPv4 (UDP 67/68) ---
        if let (
            Net::Ipv4(_),
            L4::Udp {
                src_port: 68,
                dst_port: 67,
                payload,
            },
        ) = (&p.net, &p.l4)
        {
            if let Some(i) = from {
                if let Ok(msg) = dhcpv4::Repr::parse_bytes(payload) {
                    if msg.message_type == dhcpv4::MessageType::Request {
                        obs[i].dhcpv4_used = true;
                    }
                }
            }
            return;
        }

        // --- DHCPv6 (UDP 546/547) ---
        if let (
            Net::Ipv6(_),
            L4::Udp {
                src_port,
                dst_port,
                payload,
            },
        ) = (&p.net, &p.l4)
        {
            if *dst_port == 547 && *src_port == 546 {
                if let (Some(i), Ok(msg)) = (from, dhcpv6::Repr::parse_bytes(payload)) {
                    match msg.message_type {
                        dhcpv6::MessageType::InformationRequest => obs[i].dhcpv6_stateless = true,
                        dhcpv6::MessageType::Solicit | dhcpv6::MessageType::Request => {
                            obs[i].dhcpv6_stateful = true
                        }
                        _ => {}
                    }
                }
                return;
            }
            if *dst_port == 546 && *src_port == 547 {
                if let (Some(i), Ok(msg)) = (to, dhcpv6::Repr::parse_bytes(payload)) {
                    if let Some(ia) = msg.ia_na {
                        for a in ia.addresses {
                            obs[i].dhcpv6_addrs.insert(a.addr);
                            obs[i].announced_v6.insert(a.addr);
                        }
                    }
                }
                return;
            }
        }

        // --- DNS (UDP 53) ---
        if let L4::Udp {
            src_port,
            dst_port,
            payload,
        } = &p.l4
        {
            if *dst_port == 53 || *src_port == 53 {
                let over_v6 = p.is_ipv6();
                if *dst_port == 53 {
                    if let (Some(i), Ok(msg)) = (from, Message::parse_bytes(payload)) {
                        if let Some(q) = msg.question() {
                            let o = &mut obs[i];
                            match q.rtype {
                                RecordType::A => {
                                    if over_v6 {
                                        o.a_q_v6.insert(q.name.clone());
                                    } else {
                                        o.a_q_v4.insert(q.name.clone());
                                    }
                                }
                                RecordType::Aaaa => {
                                    if over_v6 {
                                        o.aaaa_q_v6.insert(q.name.clone());
                                    } else {
                                        o.aaaa_q_v4.insert(q.name.clone());
                                    }
                                }
                                RecordType::Https => {
                                    o.https_q.insert(q.name.clone());
                                }
                                RecordType::Svcb => {
                                    o.svcb_q.insert(q.name.clone());
                                }
                                _ => {}
                            }
                            pending.insert((p.eth.src, msg.id), (q.name.clone(), q.rtype, over_v6));
                            if over_v6 {
                                if let Some(IpAddr::V6(src)) = p.src_ip() {
                                    o.dns_src_v6.insert(src);
                                    o.active_v6.insert(src);
                                    if src.is_eui64() {
                                        o.dns_names_from_eui64.insert(q.name.clone());
                                        o.domains_from_eui64.insert(q.name.clone());
                                    }
                                }
                            }
                        }
                    }
                } else if let Ok(msg) = Message::parse_bytes(payload) {
                    for r in &msg.answers {
                        match r.rdata {
                            Rdata::A(a) => {
                                analysis.ip_to_name.insert(IpAddr::V4(a), r.name.clone());
                            }
                            Rdata::Aaaa(a) => {
                                analysis.ip_to_name.insert(IpAddr::V6(a), r.name.clone());
                            }
                            _ => {}
                        }
                    }
                    if let Some(i) = to {
                        if let Some((name, rtype, _)) = pending.remove(&(p.eth.dst, msg.id)) {
                            if rtype == RecordType::Aaaa {
                                let o = &mut obs[i];
                                if msg.aaaa_answers().next().is_some() {
                                    if over_v6 {
                                        o.aaaa_pos_v6.insert(name);
                                    } else {
                                        o.aaaa_pos_v4.insert(name);
                                    }
                                } else {
                                    o.aaaa_neg.insert(name);
                                }
                            }
                        }
                    }
                }
                return;
            }
        }

        // --- Data traffic (TCP / non-service UDP) ---
        let (src_ip, dst_ip) = match (p.src_ip(), p.dst_ip()) {
            (Some(s), Some(d)) => (s, d),
            _ => return,
        };
        let payload_len = match &p.l4 {
            L4::Tcp { payload_len, .. } => *payload_len as u64,
            L4::Udp { payload, .. } => payload.len() as u64,
            _ => return,
        };
        let is_ntp = p.involves_port(123);
        let (idx, dev_ip, peer_ip, outbound) = match (from, to) {
            (Some(i), _) => (i, src_ip, dst_ip, true),
            (_, Some(i)) => (i, dst_ip, src_ip, false),
            _ => return,
        };
        let o = &mut obs[idx];
        match (dev_ip, peer_ip) {
            (IpAddr::V6(dev6), IpAddr::V6(peer6)) => {
                if outbound {
                    o.active_v6.insert(dev6);
                }
                let local = peer6.is_multicast()
                    || !peer6.is_global_unicast()
                    || lan_prefix.contains(peer6);
                if local {
                    o.v6_local_bytes += payload_len;
                } else {
                    o.v6_internet_bytes += payload_len;
                    o.v6_internet_peers.insert(peer6);
                    if outbound {
                        if is_ntp {
                            o.ntp_src_v6.insert(dev6);
                        } else {
                            o.data_src_v6.insert(dev6);
                        }
                    }
                    if let Some(name) = analysis.ip_to_name.get(&IpAddr::V6(peer6)) {
                        o.domains_v6.insert(name.clone());
                        if outbound && dev6.is_eui64() && !is_ntp {
                            o.domains_from_eui64.insert(name.clone());
                        }
                    }
                }
            }
            (IpAddr::V4(_), IpAddr::V4(peer4)) => {
                let local = peer4.is_private() || peer4.is_broadcast() || peer4.is_multicast();
                if !local {
                    o.v4_internet_bytes += payload_len;
                    if let Some(name) = analysis.ip_to_name.get(&IpAddr::V4(peer4)) {
                        o.domains_v4.insert(name.clone());
                    }
                }
            }
            _ => {}
        }
        if outbound {
            if let L4::Tcp { payload, .. } = &p.l4 {
                if let Ok(sni) = tls::parse_sni(payload) {
                    let o = &mut obs[idx];
                    o.sni_domains.insert(sni.clone());
                    match peer_ip {
                        IpAddr::V6(peer6)
                            if peer6.is_global_unicast() && !lan_prefix.contains(peer6) =>
                        {
                            o.domains_v6.insert(sni.clone());
                            if let IpAddr::V6(dev6) = dev_ip {
                                if dev6.is_eui64() {
                                    o.domains_from_eui64.insert(sni);
                                }
                            }
                        }
                        IpAddr::V4(peer4) if !peer4.is_private() => {
                            o.domains_v4.insert(sni);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    fn finish(self) -> ExperimentAnalysis {
        let mut analysis = self.analysis;
        analysis.devices = self
            .devices
            .iter()
            .zip(self.obs)
            .map(|((_, label), o)| (label.clone(), o))
            .collect();
        analysis.flows = self.flows;
        analysis
    }
}

// --- frame synthesis --------------------------------------------------------

fn dev_mac(dev: u8) -> Mac {
    Mac::new(2, 0, 0, 0, 0, 0x10 + (dev % 2))
}

fn router_mac() -> Mac {
    Mac::new(2, 0, 0, 0, 0, 1)
}

/// A stranger MAC neither in the device map nor the router's — frames
/// between strangers count as unattributed.
fn stranger_mac() -> Mac {
    Mac::new(2, 0, 0, 0, 0, 0xee)
}

fn lan() -> Cidr {
    Cidr::new("2001:db8:10:1::".parse().unwrap(), 64)
}

/// A device address inside the LAN /64; `eui` selects the ff:fe
/// interface-id pattern [`Ipv6AddrExt::is_eui64`] recognizes.
fn dev_addr(dev: u8, tail: u16, eui: bool) -> Ipv6Addr {
    if eui {
        Ipv6Addr::new(0x2001, 0xdb8, 0x10, 1, 0x0260, 0x08ff, 0xfe12, tail)
    } else {
        Ipv6Addr::new(0x2001, 0xdb8, 0x10, 1, 0, 0, dev as u16 + 1, tail)
    }
}

/// A peer outside the LAN (global) or inside it (local), per `global`.
fn peer_addr(tail: u16, global: bool) -> Ipv6Addr {
    if global {
        Ipv6Addr::new(0x2001, 0xdb8, 0xffff, 2, 0, 0, 0, tail.max(1))
    } else {
        Ipv6Addr::new(0x2001, 0xdb8, 0x10, 1, 0xcafe, 0, 0, tail.max(1))
    }
}

fn name_pool(i: u8) -> Name {
    const POOL: [&str; 4] = [
        "cloud.example",
        "api.vendor.example",
        "cdn.example",
        "telemetry.example",
    ];
    Name::new(POOL[i as usize % POOL.len()]).unwrap()
}

fn eth_v6(src_mac: Mac, dst_mac: Mac, ip: Vec<u8>) -> Vec<u8> {
    EthRepr {
        src: src_mac,
        dst: dst_mac,
        ethertype: EtherType::Ipv6,
    }
    .build(&ip)
}

fn v6_frame(
    src_mac: Mac,
    dst_mac: Mac,
    src: Ipv6Addr,
    dst: Ipv6Addr,
    next_header: Protocol,
    l4: Vec<u8>,
) -> Vec<u8> {
    let ip = ipv6::Repr {
        src,
        dst,
        next_header,
        hop_limit: 64,
        payload_len: l4.len(),
    }
    .build(&l4);
    eth_v6(src_mac, dst_mac, ip)
}

fn v6_udp(
    src_mac: Mac,
    dst_mac: Mac,
    src: Ipv6Addr,
    dst: Ipv6Addr,
    sp: u16,
    dp: u16,
    payload: Vec<u8>,
) -> Vec<u8> {
    let u = udp::Repr {
        src_port: sp,
        dst_port: dp,
        payload,
    }
    .build(PseudoHeader::V6 { src, dst });
    v6_frame(src_mac, dst_mac, src, dst, Protocol::Udp, u)
}

fn v4_udp(
    src_mac: Mac,
    dst_mac: Mac,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    sp: u16,
    dp: u16,
    payload: Vec<u8>,
) -> Vec<u8> {
    let u = udp::Repr {
        src_port: sp,
        dst_port: dp,
        payload,
    }
    .build(PseudoHeader::V4 { src, dst });
    let ip = ipv4::Repr {
        src,
        dst,
        protocol: Protocol::Udp,
        ttl: 64,
        payload_len: u.len(),
    }
    .build(&u);
    EthRepr {
        src: src_mac,
        dst: dst_mac,
        ethertype: EtherType::Ipv4,
    }
    .build(&ip)
}

/// One step of a generated capture.
#[derive(Debug, Clone)]
enum Op {
    /// Random bytes — must count as a parse error on both pipelines.
    Garbage(Vec<u8>),
    /// DAD probe: NS from `::` for a tentative address.
    NsDad { dev: u8, tail: u16, eui: bool },
    /// Gratuitous NA announcing an address.
    Na { dev: u8, tail: u16 },
    /// Outbound echo request (probe-only address use).
    Echo { dev: u8, tail: u16, eui: bool },
    /// DNS query from a device (`rtype` indexes A/AAAA/HTTPS/SVCB).
    Query {
        dev: u8,
        name: u8,
        rtype: u8,
        over_v6: bool,
        id: u16,
        tail: u16,
        eui: bool,
    },
    /// DNS response toward a device; `aaaa` answers with an address the
    /// traffic pass can later attribute.
    Response {
        dev: u8,
        id: u16,
        name: u8,
        aaaa: bool,
        over_v6: bool,
        peer_tail: u16,
    },
    /// v6 data exchange (UDP); inbound frames attribute via dst MAC.
    DataV6 {
        dev: u8,
        tail: u16,
        eui: bool,
        peer_tail: u16,
        global: bool,
        dport: u16,
        len: u8,
        outbound: bool,
    },
    /// v4 data exchange.
    DataV4 { dev: u8, public: bool, len: u8 },
    /// TLS ClientHello with SNI over TCP.
    Sni {
        dev: u8,
        name: u8,
        tail: u16,
        eui: bool,
        peer_tail: u16,
    },
    /// DHCPv6 client message (stateful Solicit or stateless
    /// Information-Request).
    Dhcpv6Client { dev: u8, stateful: bool },
    /// DHCPv6 Reply delivering an IA_NA address.
    Dhcpv6Reply { dev: u8, tail: u16 },
    /// DHCPv4 Request.
    Dhcpv4Req { dev: u8 },
    /// Data frame between two MACs the analyzer does not know.
    Unattributed { len: u8 },
    /// A valid data frame cut short — parses leniently or errors, but
    /// both pipelines must agree either way.
    Truncated { dev: u8, len: u8, cut: u8 },
}

fn build_frame(op: &Op) -> Vec<u8> {
    let r = router_mac();
    match op {
        Op::Garbage(bytes) => bytes.clone(),
        Op::NsDad { dev, tail, eui } => {
            let target = dev_addr(*dev, *tail, *eui);
            let ns = icmpv6::Repr::Ndp(Ndp::NeighborSolicit {
                target,
                options: vec![],
            });
            let src = Ipv6Addr::UNSPECIFIED;
            let dst = target.solicited_node();
            let body = ns.build(src, dst);
            v6_frame(dev_mac(*dev), r, src, dst, Protocol::Icmpv6, body)
        }
        Op::Na { dev, tail } => {
            let target = dev_addr(*dev, *tail, false);
            let na = icmpv6::Repr::Ndp(Ndp::NeighborAdvert {
                router: false,
                solicited: false,
                override_flag: true,
                target,
                options: vec![],
            });
            let dst = "ff02::1".parse().unwrap();
            let body = na.build(target, dst);
            v6_frame(dev_mac(*dev), r, target, dst, Protocol::Icmpv6, body)
        }
        Op::Echo { dev, tail, eui } => {
            let src = dev_addr(*dev, *tail, *eui);
            let dst = peer_addr(9, true);
            let echo = icmpv6::Repr::EchoRequest {
                ident: 7,
                seq: 1,
                payload: vec![0xab; 8],
            };
            let body = echo.build(src, dst);
            v6_frame(dev_mac(*dev), r, src, dst, Protocol::Icmpv6, body)
        }
        Op::Query {
            dev,
            name,
            rtype,
            over_v6,
            id,
            tail,
            eui,
        } => {
            let rt = [
                RecordType::A,
                RecordType::Aaaa,
                RecordType::Https,
                RecordType::Svcb,
            ][*rtype as usize % 4];
            let msg = Message::query(*id, name_pool(*name), rt).build();
            if *over_v6 {
                let src = dev_addr(*dev, *tail, *eui);
                let dst = peer_addr(1, false);
                v6_udp(dev_mac(*dev), r, src, dst, 40000 + *id % 1000, 53, msg)
            } else {
                v4_udp(
                    dev_mac(*dev),
                    r,
                    Ipv4Addr::new(192, 168, 1, 10 + dev % 2),
                    Ipv4Addr::new(192, 168, 1, 1),
                    40000 + *id % 1000,
                    53,
                    msg,
                )
            }
        }
        Op::Response {
            dev,
            id,
            name,
            aaaa,
            over_v6,
            peer_tail,
        } => {
            let n = name_pool(*name);
            let query = Message::query(*id, n.clone(), RecordType::Aaaa);
            let mut resp = query.response(Rcode::NoError);
            if *aaaa {
                resp.answers.push(Record::new(
                    n,
                    300,
                    Rdata::Aaaa(peer_addr(*peer_tail, true)),
                ));
            }
            let msg = resp.build();
            if *over_v6 {
                let src = peer_addr(1, false);
                let dst = dev_addr(*dev, 2, false);
                v6_udp(r, dev_mac(*dev), src, dst, 53, 40000 + *id % 1000, msg)
            } else {
                v4_udp(
                    r,
                    dev_mac(*dev),
                    Ipv4Addr::new(192, 168, 1, 1),
                    Ipv4Addr::new(192, 168, 1, 10 + dev % 2),
                    53,
                    40000 + *id % 1000,
                    msg,
                )
            }
        }
        Op::DataV6 {
            dev,
            tail,
            eui,
            peer_tail,
            global,
            dport,
            len,
            outbound,
        } => {
            let d = dev_addr(*dev, *tail, *eui);
            let peer = peer_addr(*peer_tail, *global);
            let payload = vec![0x5a; *len as usize];
            // Steer clear of the service ports the classifier reserves
            // (53/67/68/546/547) while keeping NTP (123) reachable.
            let dp = if *dport % 8 == 0 {
                123
            } else {
                30000 + dport % 1000
            };
            if *outbound {
                v6_udp(dev_mac(*dev), r, d, peer, 50000, dp, payload)
            } else {
                v6_udp(r, dev_mac(*dev), peer, d, dp, 50000, payload)
            }
        }
        Op::DataV4 { dev, public, len } => {
            let src = Ipv4Addr::new(192, 168, 1, 10 + dev % 2);
            let dst = if *public {
                Ipv4Addr::new(203, 0, 113, 7)
            } else {
                Ipv4Addr::new(192, 168, 1, 77)
            };
            v4_udp(
                dev_mac(*dev),
                r,
                src,
                dst,
                50001,
                8883,
                vec![0x11; *len as usize],
            )
        }
        Op::Sni {
            dev,
            name,
            tail,
            eui,
            peer_tail,
        } => {
            let src = dev_addr(*dev, *tail, *eui);
            let dst = peer_addr(*peer_tail, true);
            let hello = tls::client_hello(&name_pool(*name), 64);
            let seg = tcp::Repr {
                src_port: 50443,
                dst_port: 443,
                seq: 1,
                ack: 1,
                flags: tcp::Flags::PSH.union(tcp::Flags::ACK),
                window: 0xffff,
                payload: hello,
            }
            .build(PseudoHeader::V6 { src, dst });
            v6_frame(dev_mac(*dev), r, src, dst, Protocol::Tcp, seg)
        }
        Op::Dhcpv6Client { dev, stateful } => {
            let mt = if *stateful {
                dhcpv6::MessageType::Solicit
            } else {
                dhcpv6::MessageType::InformationRequest
            };
            let msg = dhcpv6::Repr::new(mt, 0x1234).build();
            let src = dev_addr(*dev, 1, false);
            let dst = "ff02::1:2".parse().unwrap();
            v6_udp(dev_mac(*dev), r, src, dst, 546, 547, msg)
        }
        Op::Dhcpv6Reply { dev, tail } => {
            let mut msg = dhcpv6::Repr::new(dhcpv6::MessageType::Reply, 0x1234);
            msg.ia_na = Some(dhcpv6::IaNa {
                iaid: 1,
                t1: 1800,
                t2: 2880,
                addresses: vec![dhcpv6::IaAddr {
                    addr: dev_addr(*dev, *tail, false),
                    preferred: 3600,
                    valid: 7200,
                }],
            });
            let src = peer_addr(1, false);
            let dst = dev_addr(*dev, 1, false);
            v6_udp(r, dev_mac(*dev), src, dst, 547, 546, msg.build())
        }
        Op::Dhcpv4Req { dev } => {
            let msg =
                dhcpv4::Repr::client(dhcpv4::MessageType::Request, 0x42, dev_mac(*dev)).build();
            v4_udp(
                dev_mac(*dev),
                r,
                Ipv4Addr::UNSPECIFIED,
                Ipv4Addr::BROADCAST,
                68,
                67,
                msg,
            )
        }
        Op::Unattributed { len } => v6_udp(
            stranger_mac(),
            stranger_mac(),
            peer_addr(3, false),
            peer_addr(4, true),
            50002,
            30001,
            vec![0; *len as usize],
        ),
        Op::Truncated { dev, len, cut } => {
            let mut f = v6_udp(
                dev_mac(*dev),
                router_mac(),
                dev_addr(*dev, 5, false),
                peer_addr(6, true),
                50003,
                30002,
                vec![0x77; *len as usize],
            );
            let keep = 1 + (*cut as usize % f.len().max(2));
            f.truncate(keep.min(f.len()));
            f
        }
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    // The vendored proptest has no `prop_oneof!`, so draw one flat tuple
    // of integers and map the first word onto a variant, slicing the
    // rest for fields. Tails and DNS ids fold into small pools so that
    // re-announcements and query/response correlation actually occur.
    (
        any::<u8>(),
        any::<u8>(),
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(|(disc, a, b, c, d)| {
            let dev = a & 0x0f;
            let eui = a & 0x10 != 0;
            let flag2 = a & 0x20 != 0;
            let flag3 = a & 0x40 != 0;
            let tail = 1 + b % 6;
            let peer_tail = 1 + c % 6;
            let id = c % 8;
            let small = (d >> 8) as u8;
            match disc % 14 {
                0 => Op::Garbage(
                    (0..b as usize % 64)
                        .map(|i| (c as usize ^ (i * 37)) as u8)
                        .collect(),
                ),
                1 => Op::NsDad { dev, tail, eui },
                2 => Op::Na { dev, tail },
                3 => Op::Echo { dev, tail, eui },
                4 => Op::Query {
                    dev,
                    name: small,
                    rtype: (d & 0xff) as u8,
                    over_v6: flag2,
                    id,
                    tail,
                    eui,
                },
                5 => Op::Response {
                    dev,
                    id: b % 8,
                    name: small,
                    aaaa: flag2,
                    over_v6: flag3,
                    peer_tail,
                },
                6 => Op::DataV6 {
                    dev,
                    tail,
                    eui,
                    peer_tail,
                    global: flag2,
                    dport: d,
                    len: small,
                    outbound: flag3,
                },
                7 => Op::DataV4 {
                    dev,
                    public: flag2,
                    len: small,
                },
                8 => Op::Sni {
                    dev,
                    name: small,
                    tail,
                    eui,
                    peer_tail,
                },
                9 => Op::Dhcpv6Client {
                    dev,
                    stateful: flag2,
                },
                10 => Op::Dhcpv6Reply { dev, tail },
                11 => Op::Dhcpv4Req { dev },
                12 => Op::Unattributed { len: small },
                _ => Op::Truncated {
                    dev,
                    len: small,
                    cut: (d & 0xff) as u8,
                },
            }
        })
}

fn device_map() -> Vec<(Mac, String)> {
    vec![
        (dev_mac(0), "dev0".to_string()),
        (dev_mac(1), "dev1".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full pass set reproduces the pre-refactor monolith exactly,
    /// for any interleaving of valid, garbage, truncated, and
    /// unattributable frames.
    #[test]
    fn full_pass_set_matches_monolith(ops in proptest::collection::vec(arb_op(), 0..80)) {
        let macs = device_map();
        let mut new = StreamingAnalyzer::new(&macs, lan());
        let mut old = Monolith::new(&macs, lan());
        for (i, op) in ops.iter().enumerate() {
            let frame = build_frame(op);
            let ts = i as u64 * 1000;
            new.feed(ts, &frame);
            old.feed(ts, &frame);
        }
        let new = new.finish();
        let old = old.finish();
        // Flows are serde-skipped, so compare them structurally first.
        prop_assert_eq!(new.flows.len(), old.flows.len());
        let total = |a: &ExperimentAnalysis| -> u64 {
            a.flows.iter().map(|(_, f)| f.total_bytes()).sum()
        };
        prop_assert_eq!(total(&new), total(&old));
        prop_assert_eq!(
            serde_json::to_string(&new).unwrap(),
            serde_json::to_string(&old).unwrap()
        );
    }

    /// Subset monotonicity: any pass subset produces exactly the full
    /// run's values for fields its closure owns, and defaults for the
    /// rest.
    #[test]
    fn pass_subsets_are_monotone(
        ops in proptest::collection::vec(arb_op(), 0..60),
        mask in 1u8..63,
    ) {
        let macs = device_map();
        let frames: Vec<(u64, Vec<u8>)> = ops
            .iter()
            .enumerate()
            .map(|(i, op)| (i as u64 * 1000, build_frame(op)))
            .collect();

        let mut full = StreamingAnalyzer::new(&macs, lan());
        for (ts, f) in &frames {
            full.feed(*ts, f);
        }
        let full_json = serde_json::to_value(full.finish()).unwrap();

        let selected: Vec<PassId> = PassId::ALL
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, p)| p)
            .collect();
        let mut sub = StreamingAnalyzer::with_passes(&macs, lan(), &selected);
        let enabled = sub.enabled_passes();
        for (ts, f) in &frames {
            sub.feed(*ts, f);
        }
        let sub_json = serde_json::to_value(sub.finish()).unwrap();

        // Frame accounting never depends on the selection.
        for counter in ["frames", "parse_errors", "unattributed_frames"] {
            prop_assert_eq!(sub_json.get_field(counter), full_json.get_field(counter));
        }

        let default_obs = serde_json::to_value(DeviceObservation::default()).unwrap();
        for (_, label) in &macs {
            let f = full_json.get_field("devices").get_field(label.as_str());
            let s = sub_json.get_field("devices").get_field(label.as_str());
            for pass in PassId::ALL {
                for field in pass.owned_device_fields() {
                    if enabled.contains(&pass) {
                        prop_assert_eq!(
                            s.get_field(field), f.get_field(field),
                            "enabled pass {:?} field {} must match the full run", pass, field
                        );
                    } else {
                        prop_assert_eq!(
                            s.get_field(field), default_obs.get_field(field),
                            "disabled pass {:?} field {} must stay default", pass, field
                        );
                    }
                }
            }
        }
    }
}
