//! Property tests on WAN-scanner hitlist generation: from any mix of
//! EUI-64 and privacy-extension observations, the hitlist always covers
//! the true SLAAC GUA of an observed device and never emits a
//! privacy-extension temporary address.

use proptest::prelude::*;
use std::net::Ipv6Addr;
use v6brick_core::exposure::{dense_sweep, hitlist};
use v6brick_net::ipv6::Ipv6AddrExt;
use v6brick_net::Mac;

fn prefix_strategy() -> impl Strategy<Value = Ipv6Addr> {
    // An arbitrary documentation-range /64.
    (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Ipv6Addr::new(0x2001, 0xdb8, a, b, 0, 0, 0, 0))
}

fn mac_strategy() -> impl Strategy<Value = Mac> {
    any::<[u8; 6]>().prop_map(Mac)
}

/// A privacy-extension style interface identifier: random, with the
/// ff:fe EUI-64 marker explicitly excluded (RFC 8981 identifiers carry
/// no structure; the 2^-16 accidental marker would misclassify).
fn privacy_iid_strategy() -> impl Strategy<Value = [u8; 8]> {
    any::<[u8; 8]>().prop_filter("not the EUI-64 marker", |iid| {
        !(iid[3] == 0xff && iid[4] == 0xfe)
    })
}

fn addr_from(prefix: Ipv6Addr, iid: [u8; 8]) -> Ipv6Addr {
    let mut o = prefix.octets();
    o[8..].copy_from_slice(&iid);
    Ipv6Addr::from(o)
}

proptest! {
    #[test]
    fn hitlist_covers_true_gua_and_never_a_temporary_address(
        prefix in prefix_strategy(),
        macs in proptest::collection::vec(mac_strategy(), 1..6),
        privacy_iids in proptest::collection::vec(privacy_iid_strategy(), 0..6),
        neighborhood in 0u16..16,
    ) {
        let guas: Vec<Ipv6Addr> = macs.iter().map(|m| m.slaac_address(prefix)).collect();
        let temporaries: Vec<Ipv6Addr> =
            privacy_iids.iter().map(|&iid| addr_from(prefix, iid)).collect();
        let mut observed = guas.clone();
        observed.extend(&temporaries);

        let h = hitlist(prefix, &observed, neighborhood);

        // Every observed EUI-64 device's true SLAAC GUA is a candidate.
        for gua in &guas {
            prop_assert!(h.contains(gua), "missing true GUA {gua}");
        }
        // No candidate is a privacy-extension temporary address — in
        // fact every candidate is EUI-64-format in the scanned prefix.
        for c in &h {
            prop_assert!(c.is_eui64(), "non-EUI-64 candidate {c}");
            prop_assert_eq!(c.prefix64(), prefix);
            prop_assert!(!temporaries.contains(c), "temporary address {c} leaked in");
        }
        // Size is bounded by observations x window (dedup can only shrink).
        prop_assert!(h.len() as u64 <= macs.len() as u64 * (2 * u64::from(neighborhood) + 1));
    }

    #[test]
    fn dense_sweep_is_low_iid_only(prefix in prefix_strategy(), budget in 1u32..2048) {
        let sweep = dense_sweep(prefix, budget);
        prop_assert_eq!(sweep.len() as u32, budget);
        for a in &sweep {
            prop_assert_eq!(a.prefix64(), prefix);
            prop_assert!(a.interface_id() >= 1 && a.interface_id() <= u64::from(budget));
        }
    }
}
