//! Property tests on the flow-table invariants.

use proptest::prelude::*;
use std::net::{IpAddr, Ipv6Addr};
use v6brick_core::flows::{FlowKey, FlowProto, FlowTable};
use v6brick_net::ethernet::{EtherType, Repr as EthRepr};
use v6brick_net::ipv4::Protocol;
use v6brick_net::parse::ParsedPacket;
use v6brick_net::udp::PseudoHeader;
use v6brick_net::{ipv6, udp, Mac};

fn frame(src: Ipv6Addr, dst: Ipv6Addr, sp: u16, dp: u16, n: usize) -> ParsedPacket {
    let u = udp::Repr {
        src_port: sp,
        dst_port: dp,
        payload: vec![0; n],
    }
    .build(PseudoHeader::V6 { src, dst });
    let ip = ipv6::Repr {
        src,
        dst,
        next_header: Protocol::Udp,
        hop_limit: 64,
        payload_len: u.len(),
    }
    .build(&u);
    let f = EthRepr {
        src: Mac::new(2, 0, 0, 0, 0, 1),
        dst: Mac::new(2, 0, 0, 0, 0, 2),
        ethertype: EtherType::Ipv6,
    }
    .build(&ip);
    ParsedPacket::parse(&f).unwrap()
}

fn arb_v6() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(Ipv6Addr::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn key_is_direction_invariant(a in arb_v6(), b in arb_v6(), pa in any::<u16>(), pb in any::<u16>()) {
        let k1 = FlowKey::new((IpAddr::V6(a), pa), (IpAddr::V6(b), pb), FlowProto::Udp);
        let k2 = FlowKey::new((IpAddr::V6(b), pb), (IpAddr::V6(a), pa), FlowProto::Udp);
        prop_assert_eq!(k1, k2);
    }

    #[test]
    fn totals_conserve_bytes(packets in proptest::collection::vec(
        (any::<u128>(), any::<u128>(), any::<u16>(), any::<u16>(), 0usize..200), 1..50))
    {
        let mut table = FlowTable::new();
        let mut total = 0u64;
        for (i, (a, b, pa, pb, n)) in packets.iter().enumerate() {
            let p = frame(Ipv6Addr::from(*a), Ipv6Addr::from(*b), *pa, *pb, *n);
            table.record(i as u64, &p);
            total += *n as u64;
        }
        let sum: u64 = table.iter().map(|(_, f)| f.total_bytes()).sum();
        prop_assert_eq!(sum, total);
        let packets_sum: u64 = table.iter().map(|(_, f)| f.packets_ab + f.packets_ba).sum();
        prop_assert_eq!(packets_sum as usize, packets.len());
    }

    #[test]
    fn timestamps_monotone_per_flow(ns in proptest::collection::vec(0usize..100, 2..30)) {
        let mut table = FlowTable::new();
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        for (i, n) in ns.iter().enumerate() {
            let p = frame(src, dst, 1000, 2000, *n);
            table.record(i as u64 * 10, &p);
        }
        prop_assert_eq!(table.len(), 1);
        let (_, f) = table.iter().next().unwrap();
        prop_assert_eq!(f.first_us, 0);
        prop_assert_eq!(f.last_us, (ns.len() as u64 - 1) * 10);
    }
}
