#![warn(missing_docs)]
//! # v6brick-core — the measurement pipeline
//!
//! The paper's contribution, as reusable library code: everything needed
//! to turn raw packet captures from a smart-home LAN into the IPv6
//! adoption, DNS, traffic, and privacy characterizations of §5.
//!
//! The pipeline deliberately sees **only what tcpdump saw**: Ethernet
//! frames plus (for the port-scan target list) the router's neighbor
//! table. Device ground truth never leaks in; the reproduction tests
//! assert that the *measured* values land on the paper's numbers.
//!
//! * [`analysis`] — the composable analyzer-pass pipeline: one
//!   [`analysis::AnalyzerPass`] per concern, composed by an
//!   [`analysis::PassSet`].
//! * [`flows`] — 5-tuple flow reassembly with per-direction accounting.
//! * [`observe`] — the single-pass capture walker producing one
//!   [`observe::DeviceObservation`] per device MAC (a thin facade over
//!   the full pass set).
//! * [`party`] — first / support / third party classification (§5.4).
//! * [`transitions`] — per-domain IP-version transition analysis between
//!   experiment configurations (Table 9).
//! * [`outage`] — dynamic Table 9 switching: how devices fall back to
//!   IPv4 during injected faults and whether they recover.
//! * [`eui64`] — EUI-64 exposure analysis (Fig. 5).
//! * [`ports`] — port-scan result types and v4/v6 diffing (§5.4.2).
//! * [`population`] — mergeable population-scale aggregates for
//!   multi-home fleet campaigns (streaming Table 3/5 marginals).
//! * [`exposure`] — Internet-side exposure: EUI-64 hitlist
//!   extrapolation, the dense-sweep baseline, and the mergeable
//!   per-campaign [`ExposureReport`] of the WAN scanner.

pub mod analysis;
pub mod eui64;
pub mod exposure;
pub mod flows;
pub mod observe;
pub mod outage;
pub mod party;
pub mod population;
pub mod ports;
pub mod transitions;

pub use analysis::mesh::{bindings_from_mesh_capture, MeshBindings};
pub use analysis::{AnalyzerPass, PassId, PassMetrics, PassSet};
pub use exposure::{ExposureReport, HomeScanOutcome};
pub use observe::{analyze, DeviceObservation, ExperimentAnalysis, StreamingAnalyzer};
pub use outage::{OutageClass, OutageReport, SwitchRecord};
pub use population::{HomeFailure, PopulationReport};
