//! Population-scale aggregation: mergeable marginals over many homes.
//!
//! A fleet campaign simulates hundreds of independent homes and cannot
//! keep every capture (or even every analysis) in memory. This module
//! provides the streaming alternative: each home's
//! [`DeviceObservation`]s fold into a [`PopulationReport`] and are
//! dropped. Reports are associative — two partial reports [`merge`]
//! into the same result as one sequential pass — so a campaign can be
//! reduced per-worker and combined, or streamed home-by-home.
//!
//! Every field is an integer counter keyed by `BTreeMap`s; no floats
//! and no hash-order dependence. Serializing the same campaign twice —
//! regardless of worker count — yields byte-identical JSON, which the
//! determinism tests rely on.
//!
//! [`merge`]: PopulationReport::merge

use crate::analysis::PassId;
use crate::observe::DeviceObservation;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use v6brick_net::ipv6::Ipv6AddrExt;

/// The analyzer passes whose fields a [`PopulationReport`] actually
/// reads: funnel and behaviour marginals (`addressing`, `ndp_dad`,
/// `dns`), histograms and volume counters (`traffic`). The EUI-64
/// correlator and the flow table feed nothing in the report, so every
/// population consumer — the offline fleet pool and the `v6brickd`
/// ingestion daemon alike — runs exactly this subset; sharing one const
/// is part of what makes their reports byte-identical.
pub const POPULATION_PASSES: &[PassId] = &[
    PassId::Addressing,
    PassId::NdpDad,
    PassId::Dns,
    PassId::Traffic,
];

/// The Table 3 feature funnel, as population marginals: how far down
/// the IPv6 adoption funnel each device got.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunnelCounts {
    /// Emitted any NDP traffic.
    pub ndp_traffic: u64,
    /// Assigned (announced or used) an IPv6 address.
    pub v6_addr: u64,
    /// Sourced traffic from a global unicast address.
    pub active_gua: u64,
    /// Issued AAAA queries over IPv6 transport.
    pub aaaa_q_v6: u64,
    /// Got a positive AAAA answer over IPv6 transport.
    pub aaaa_pos_v6: u64,
    /// Exchanged TCP/UDP data with an Internet host over IPv6.
    pub v6_internet_data: u64,
    /// Passed the §4.1 functionality check.
    pub functional: u64,
}

impl FunnelCounts {
    fn absorb(&mut self, o: &DeviceObservation, functional: bool) {
        self.ndp_traffic += o.ndp_traffic as u64;
        self.v6_addr += o.has_v6_addr() as u64;
        self.active_gua += o.active_v6.iter().any(|a| a.is_global_unicast()) as u64;
        self.aaaa_q_v6 += !o.aaaa_q_v6.is_empty() as u64;
        self.aaaa_pos_v6 += !o.aaaa_pos_v6.is_empty() as u64;
        self.v6_internet_data += o.v6_internet_data() as u64;
        self.functional += functional as u64;
    }

    fn merge(&mut self, other: &FunnelCounts) {
        self.ndp_traffic += other.ndp_traffic;
        self.v6_addr += other.v6_addr;
        self.active_gua += other.active_gua;
        self.aaaa_q_v6 += other.aaaa_q_v6;
        self.aaaa_pos_v6 += other.aaaa_pos_v6;
        self.v6_internet_data += other.v6_internet_data;
        self.functional += other.functional;
    }
}

/// The Table 5 behaviour marginals: address-management and DNS habits
/// across the population.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BehaviorCounts {
    /// Ran a stateful DHCPv6 exchange.
    pub dhcpv6_stateful: u64,
    /// Held a unique-local address.
    pub ula: u64,
    /// Held a link-local address.
    pub lla: u64,
    /// Held an active EUI-64-derived address.
    pub eui64_addr: u64,
    /// Sent DNS over IPv6 transport.
    pub dns_over_v6: u64,
    /// Queried A-only (never AAAA) over IPv6 transport.
    pub a_only_v6: u64,
    /// Issued AAAA queries over either transport.
    pub aaaa_any: u64,
    /// Issued AAAA queries over IPv4 transport only.
    pub aaaa_v4_only: u64,
    /// Got a positive AAAA answer over either transport.
    pub aaaa_pos_any: u64,
    /// Got a negative AAAA answer.
    pub aaaa_neg: u64,
    /// Completed a DHCPv4 exchange.
    pub dhcpv4_used: u64,
}

impl BehaviorCounts {
    fn absorb(&mut self, o: &DeviceObservation) {
        self.dhcpv6_stateful += o.dhcpv6_stateful as u64;
        self.ula += o.all_addrs().iter().any(|a| a.is_unique_local()) as u64;
        self.lla += o.all_addrs().iter().any(|a| a.is_link_local()) as u64;
        let eui64 = o
            .all_addrs()
            .iter()
            .any(|a| a.is_link_local() && a.is_eui64())
            || o.active_v6
                .iter()
                .any(|a| !a.is_link_local() && a.is_eui64());
        self.eui64_addr += eui64 as u64;
        self.dns_over_v6 += o.dns_over_v6() as u64;
        self.a_only_v6 += !o.a_only_v6_names().is_empty() as u64;
        self.aaaa_any += !o.aaaa_q_any().is_empty() as u64;
        self.aaaa_v4_only += o.aaaa_q_v4.difference(&o.aaaa_q_v6).next().is_some() as u64;
        self.aaaa_pos_any += !o.aaaa_pos_any().is_empty() as u64;
        self.aaaa_neg += !o.aaaa_neg.is_empty() as u64;
        self.dhcpv4_used += o.dhcpv4_used as u64;
    }

    fn merge(&mut self, other: &BehaviorCounts) {
        self.dhcpv6_stateful += other.dhcpv6_stateful;
        self.ula += other.ula;
        self.lla += other.lla;
        self.eui64_addr += other.eui64_addr;
        self.dns_over_v6 += other.dns_over_v6;
        self.a_only_v6 += other.a_only_v6;
        self.aaaa_any += other.aaaa_any;
        self.aaaa_v4_only += other.aaaa_v4_only;
        self.aaaa_pos_any += other.aaaa_pos_any;
        self.aaaa_neg += other.aaaa_neg;
        self.dhcpv4_used += other.dhcpv4_used;
    }
}

/// An integer histogram that can render cumulative distributions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// value → occurrence count.
    pub counts: BTreeMap<u64, u64>,
    /// Total samples recorded.
    pub total: u64,
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Fold another histogram in.
    pub fn merge(&mut self, other: &Histogram) {
        for (value, count) in &other.counts {
            *self.counts.entry(*value).or_insert(0) += count;
        }
        self.total += other.total;
    }

    /// CDF points `(value, fraction of samples ≤ value)`.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut cumulative = 0u64;
        self.counts
            .iter()
            .map(|(value, count)| {
                cumulative += count;
                (*value, cumulative as f64 / self.total.max(1) as f64)
            })
            .collect()
    }

    /// The smallest recorded value whose CDF reaches `q` (0..=1).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let target = (q * self.total as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (value, count) in &self.counts {
            cumulative += count;
            if cumulative >= target {
                return Some(*value);
            }
        }
        self.counts.keys().next_back().copied()
    }
}

/// Per-network-config outcome rates.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigOutcome {
    /// Homes simulated under this config.
    pub homes: u64,
    /// Devices across those homes.
    pub devices: u64,
    /// Devices passing the functionality check.
    pub functional: u64,
}

/// Campaign-wide traffic volume counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficTotals {
    /// Frames captured across all homes.
    pub frames: u64,
    /// IPv6 Internet payload bytes.
    pub v6_internet_bytes: u64,
    /// IPv4 Internet payload bytes.
    pub v4_internet_bytes: u64,
    /// IPv6 local payload bytes.
    pub v6_local_bytes: u64,
}

impl TrafficTotals {
    fn merge(&mut self, other: &TrafficTotals) {
        self.frames += other.frames;
        self.v6_internet_bytes += other.v6_internet_bytes;
        self.v4_internet_bytes += other.v4_internet_bytes;
        self.v6_local_bytes += other.v6_local_bytes;
    }
}

/// One home that panicked instead of completing its simulation.
///
/// Failures ride on the [`PopulationReport`] for campaign accounting but
/// are **excluded from serialization**: the serialized report over the
/// surviving homes must stay byte-identical to a campaign that never
/// contained the poisoned home at all.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomeFailure {
    /// Home index within the campaign.
    pub index: u64,
    /// The home's derived simulation seed.
    pub seed: u64,
    /// Network-config label the home ran under.
    pub config_label: String,
    /// Rendered panic payload from the worker.
    pub panic_msg: String,
}

/// The streaming aggregate over a whole campaign of simulated homes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PopulationReport {
    /// Seed the campaign's per-home seeds derive from.
    pub campaign_seed: u64,
    /// Homes absorbed so far.
    pub homes: u64,
    /// Devices absorbed so far.
    pub devices: u64,
    /// Homes per network-config label (Table 2 row).
    pub homes_by_config: BTreeMap<String, u64>,
    /// Table 3 funnel marginals over all devices.
    pub funnel: FunnelCounts,
    /// Table 5 behaviour marginals over all devices.
    pub behavior: BehaviorCounts,
    /// Outcome rates per network-config label.
    pub per_config: BTreeMap<String, ConfigOutcome>,
    /// Active IPv6 addresses per device.
    pub addr_hist: Histogram,
    /// Distinct AAAA-queried names per device.
    pub aaaa_hist: Histogram,
    /// Volume counters.
    pub traffic: TrafficTotals,
    /// Homes that panicked instead of completing (crash isolation).
    /// Never serialized — see [`HomeFailure`].
    #[serde(skip)]
    pub failures: Vec<HomeFailure>,
}

impl PopulationReport {
    /// Fresh report for a campaign rooted at `campaign_seed`.
    pub fn new(campaign_seed: u64) -> Self {
        PopulationReport {
            campaign_seed,
            ..Default::default()
        }
    }

    /// Fold one finished home in: its per-device observations, the
    /// functionality-check outcomes, and the capture's frame count. The
    /// home's heavyweight state (capture, flow table) should already be
    /// gone by the time this runs.
    pub fn absorb_home(
        &mut self,
        config_label: &str,
        observations: &BTreeMap<String, DeviceObservation>,
        functional: &BTreeMap<String, bool>,
        frames: u64,
    ) {
        self.homes += 1;
        *self
            .homes_by_config
            .entry(config_label.to_string())
            .or_insert(0) += 1;
        let outcome = self.per_config.entry(config_label.to_string()).or_default();
        outcome.homes += 1;
        self.traffic.frames += frames;
        for (id, o) in observations {
            let is_functional = functional.get(id).copied().unwrap_or(false);
            self.devices += 1;
            outcome.devices += 1;
            outcome.functional += is_functional as u64;
            self.funnel.absorb(o, is_functional);
            self.behavior.absorb(o);
            self.addr_hist.record(o.active_v6.len() as u64);
            self.aaaa_hist.record(o.aaaa_q_any().len() as u64);
            self.traffic.v6_internet_bytes += o.v6_internet_bytes;
            self.traffic.v4_internet_bytes += o.v4_internet_bytes;
            self.traffic.v6_local_bytes += o.v6_local_bytes;
        }
    }

    /// Record one home that panicked instead of completing. Failures do
    /// not touch any serialized counter; they exist so the harness can
    /// report (and gate on) partial campaigns.
    pub fn absorb_failure(&mut self, failure: HomeFailure) {
        self.failures.push(failure);
    }

    /// Fold another partial report in. Merging is associative and
    /// commutative, so any reduction tree over disjoint home subsets
    /// produces the same report. Panics if the seeds disagree — partial
    /// reports from different campaigns are not comparable.
    pub fn merge(&mut self, other: &PopulationReport) {
        assert_eq!(
            self.campaign_seed, other.campaign_seed,
            "merging reports from different campaigns"
        );
        self.homes += other.homes;
        self.devices += other.devices;
        for (label, n) in &other.homes_by_config {
            *self.homes_by_config.entry(label.clone()).or_insert(0) += n;
        }
        self.funnel.merge(&other.funnel);
        self.behavior.merge(&other.behavior);
        for (label, outcome) in &other.per_config {
            let mine = self.per_config.entry(label.clone()).or_default();
            mine.homes += outcome.homes;
            mine.devices += outcome.devices;
            mine.functional += outcome.functional;
        }
        self.addr_hist.merge(&other.addr_hist);
        self.aaaa_hist.merge(&other.aaaa_hist);
        self.traffic.merge(&other.traffic);
        self.failures.extend(other.failures.iter().cloned());
        self.failures.sort_by_key(|f| f.index);
    }

    /// Fraction of devices passing the functionality check.
    pub fn functional_rate(&self) -> f64 {
        self.funnel.functional as f64 / self.devices.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn home(
        n_devices: usize,
        active: usize,
    ) -> (BTreeMap<String, DeviceObservation>, BTreeMap<String, bool>) {
        let mut obs = BTreeMap::new();
        let mut func = BTreeMap::new();
        for i in 0..n_devices {
            let mut o = DeviceObservation {
                ndp_traffic: true,
                ..Default::default()
            };
            for a in 0..active {
                o.active_v6.insert(
                    format!("2001:db8::{:x}:{:x}", i + 1, a + 1)
                        .parse()
                        .unwrap(),
                );
            }
            o.v6_internet_bytes = 100;
            obs.insert(format!("dev-{i}"), o);
            func.insert(format!("dev-{i}"), i % 2 == 0);
        }
        (obs, func)
    }

    #[test]
    fn absorb_counts_devices_and_homes() {
        let mut r = PopulationReport::new(7);
        let (obs, func) = home(4, 2);
        r.absorb_home("IPv6-only", &obs, &func, 1000);
        assert_eq!(r.homes, 1);
        assert_eq!(r.devices, 4);
        assert_eq!(r.funnel.ndp_traffic, 4);
        assert_eq!(r.funnel.v6_addr, 4);
        assert_eq!(r.funnel.functional, 2);
        assert_eq!(r.per_config["IPv6-only"].functional, 2);
        assert_eq!(r.traffic.frames, 1000);
        assert_eq!(r.traffic.v6_internet_bytes, 400);
        assert_eq!(r.addr_hist.total, 4);
        assert_eq!(r.addr_hist.counts[&2], 4);
    }

    #[test]
    fn merge_equals_sequential_absorb() {
        let homes: Vec<_> = (1..=6).map(|n| home(n, n % 3)).collect();
        let mut sequential = PopulationReport::new(1);
        for (obs, func) in &homes {
            sequential.absorb_home("Dual-stack", obs, func, 10);
        }
        let mut left = PopulationReport::new(1);
        let mut right = PopulationReport::new(1);
        for (i, (obs, func)) in homes.iter().enumerate() {
            let part = if i < 3 { &mut left } else { &mut right };
            part.absorb_home("Dual-stack", obs, func, 10);
        }
        left.merge(&right);
        assert_eq!(left, sequential);
    }

    #[test]
    fn histogram_cdf_and_quantile() {
        let mut h = Histogram::default();
        for v in [0, 0, 1, 2, 2, 2] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert_eq!(cdf[0], (0, 2.0 / 6.0));
        assert_eq!(cdf[2], (2, 1.0));
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(1.0), Some(2));
    }

    #[test]
    #[should_panic(expected = "different campaigns")]
    fn merge_rejects_mismatched_seeds() {
        let mut a = PopulationReport::new(1);
        let b = PopulationReport::new(2);
        a.merge(&b);
    }
}
