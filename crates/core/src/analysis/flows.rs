//! The 5-tuple flow table pass: records every parsed frame into a
//! [`FlowTable`] and hands it over at finish. The only pass holding its
//! result privately rather than in shared per-device observations — and
//! the only per-frame hash-map insert in the pipeline, which is why the
//! fleet path leaves it out.

use super::{AnalyzerPass, ExperimentAnalysis, PassId, SharedFrameCtx};
use crate::flows::FlowTable;
use v6brick_net::parse::ParsedPacket;

/// See the module docs. Dispatched every frame class.
pub struct FlowsPass {
    table: FlowTable,
}

impl FlowsPass {
    /// A fresh pass with an empty flow table.
    pub fn new() -> FlowsPass {
        FlowsPass {
            table: FlowTable::new(),
        }
    }
}

impl Default for FlowsPass {
    fn default() -> Self {
        Self::new()
    }
}

impl AnalyzerPass for FlowsPass {
    fn id(&self) -> PassId {
        PassId::Flows
    }

    fn on_frame(&mut self, ts: u64, p: &ParsedPacket, _ctx: &mut SharedFrameCtx<'_>) {
        self.table.record(ts, p);
    }

    fn finish_into(&mut self, analysis: &mut ExperimentAnalysis) {
        analysis.flows = std::mem::take(&mut self.table);
    }
}
