//! Mesh-aware attribution: mapping decompressed 6LoWPAN traffic back to
//! the leaf devices that originated it.
//!
//! Behind a border router, every Ethernet frame a leaf device sends
//! carries the *border router's* MAC as its link-layer source — the LAN
//! tap alone cannot tell leaves apart, which would collapse a whole mesh
//! of devices into one row of the population tables. The mesh-side
//! 802.15.4 capture restores the mapping: each IPHC datagram names its
//! sender by extended (EUI-64) address, and the embedded `ff:fe` marker
//! recovers the leaf MAC, yielding IPv6 address → device bindings that
//! [`PassSet`](crate::analysis::PassSet) consults whenever MAC
//! attribution fails.
//!
//! This walk genuinely exercises the decompression pipeline — 802.15.4
//! framing, RFC 4944 reassembly, RFC 6282 IPHC — rather than peeking at
//! simulator ground truth, in keeping with the tcpdump-only discipline of
//! the measurement core.

use std::collections::BTreeMap;
use std::net::Ipv6Addr;
use v6brick_net::ipv6::Cidr;
use v6brick_net::{ieee802154, sixlowpan, Mac};
use v6brick_pcap::Capture;

/// IPv6 → leaf-MAC bindings recovered from a mesh-side capture, plus the
/// decode accounting that makes silent loss visible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MeshBindings {
    /// Source address → the MAC recovered from the sender's EUI-64.
    pub by_addr: BTreeMap<Ipv6Addr, Mac>,
    /// 802.15.4 frames walked.
    pub frames: u64,
    /// Complete IPv6 datagrams recovered (post-reassembly, post-IPHC).
    pub datagrams: u64,
    /// Frames or datagrams dropped by any decode stage.
    pub decode_errors: u64,
    /// Datagrams abandoned by the reassembly timeout.
    pub expired: u64,
}

/// Walk a mesh-side 802.15.4 capture and recover IPv6 → leaf-MAC
/// bindings.
///
/// `ctx` is IPHC compression context 0 — the routed LAN /64, the same
/// value the border router compressed with. Senders whose extended
/// address is not a modified EUI-64 (no `ff:fe` marker) contribute
/// datagram counts but no binding; later datagrams from the same source
/// address overwrite earlier bindings (last writer wins, deterministic in
/// capture order).
pub fn bindings_from_mesh_capture(capture: &Capture, ctx: &Cidr) -> MeshBindings {
    let mut out = MeshBindings::default();
    let mut reassembler = sixlowpan::Reassembler::new();
    for pkt in capture.iter() {
        out.frames += 1;
        let Ok(frame) = ieee802154::Frame::new_checked(&pkt.data[..]) else {
            out.decode_errors += 1;
            continue;
        };
        let repr = ieee802154::Repr::parse(&frame);
        let datagram = match reassembler.push(pkt.timestamp_us, repr.src, repr.dst, frame.payload())
        {
            Ok(Some(d)) => d,
            Ok(None) => continue, // mid-reassembly
            Err(_) => {
                out.decode_errors += 1;
                continue;
            }
        };
        if !sixlowpan::is_iphc(&datagram) {
            out.decode_errors += 1;
            continue;
        }
        let Ok((ip, _payload)) = sixlowpan::decompress(&datagram, &repr.src, &repr.dst, Some(ctx))
        else {
            out.decode_errors += 1;
            continue;
        };
        out.datagrams += 1;
        if ip.src.is_unspecified() || ip.src.is_multicast() {
            continue;
        }
        if let Some(mac) = Mac::from_eui64(&repr.src) {
            out.by_addr.insert(ip.src, mac);
        }
    }
    out.expired = reassembler.expired();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6brick_net::{ipv4, ipv6, udp};

    fn ctx() -> Cidr {
        Cidr::new("2001:db8:10:1::".parse().unwrap(), 64)
    }

    fn leaf_mac() -> Mac {
        Mac::new(2, 0, 0, 0, 0xee, 1)
    }

    fn mesh_capture_of(ip: &ipv6::Repr, payload: &[u8], src_ext: [u8; 8]) -> Capture {
        let dst_ext = Mac::new(2, 0x52, 0x54, 0, 0xb0, 1).to_eui64();
        let compressed = sixlowpan::compress(ip, payload, &src_ext, &dst_ext, Some(&ctx()));
        let frags = sixlowpan::fragment(&compressed, 7, ieee802154::MAX_PAYLOAD).unwrap();
        let mut cap = Capture::new();
        for (i, frag) in frags.iter().enumerate() {
            let frame = ieee802154::Repr {
                seq: i as u8,
                pan_id: 0x6b42,
                dst: dst_ext,
                src: src_ext,
            }
            .build(frag);
            cap.push(i as u64 * 100, &frame);
        }
        cap
    }

    fn udp_datagram(src: Ipv6Addr, dst: Ipv6Addr, body: Vec<u8>) -> (ipv6::Repr, Vec<u8>) {
        let u = udp::Repr {
            src_port: 5000,
            dst_port: 53,
            payload: body,
        }
        .build(udp::PseudoHeader::V6 { src, dst });
        (
            ipv6::Repr {
                src,
                dst,
                next_header: ipv4::Protocol::Udp,
                hop_limit: 64,
                payload_len: u.len(),
            },
            u,
        )
    }

    #[test]
    fn binds_leaf_gua_to_recovered_mac() {
        let src = leaf_mac().slaac_address("2001:db8:10:1::".parse().unwrap());
        let (ip, payload) = udp_datagram(src, "2001:db8:2::53".parse().unwrap(), b"q".to_vec());
        let cap = mesh_capture_of(&ip, &payload, leaf_mac().to_eui64());
        let b = bindings_from_mesh_capture(&cap, &ctx());
        assert_eq!(b.frames, cap.len() as u64);
        assert_eq!(b.datagrams, 1);
        assert_eq!(b.decode_errors, 0);
        assert_eq!(b.by_addr.get(&src), Some(&leaf_mac()));
    }

    #[test]
    fn fragmented_datagrams_bind_after_reassembly() {
        let src = leaf_mac().slaac_address("2001:db8:10:1::".parse().unwrap());
        let (ip, payload) = udp_datagram(src, "2001:db8:2::53".parse().unwrap(), vec![0x41; 400]);
        let cap = mesh_capture_of(&ip, &payload, leaf_mac().to_eui64());
        assert!(cap.len() > 1, "400-byte body must fragment");
        let b = bindings_from_mesh_capture(&cap, &ctx());
        assert_eq!(b.datagrams, 1);
        assert_eq!(b.by_addr.get(&src), Some(&leaf_mac()));
    }

    #[test]
    fn garbage_frames_count_as_decode_errors() {
        let mut cap = Capture::new();
        cap.push(0, &[0u8; 4]);
        cap.push(1, &[0xff; 40]);
        let b = bindings_from_mesh_capture(&cap, &ctx());
        assert_eq!(b.frames, 2);
        assert_eq!(b.datagrams, 0);
        assert!(b.decode_errors >= 1);
        assert!(b.by_addr.is_empty());
    }

    #[test]
    fn non_eui64_senders_yield_no_binding() {
        let src: Ipv6Addr = "2001:db8:10:1::1234".parse().unwrap();
        let (ip, payload) = udp_datagram(src, "2001:db8:2::53".parse().unwrap(), b"q".to_vec());
        // An extended address without the ff:fe marker: nothing to recover.
        let cap = mesh_capture_of(&ip, &payload, [9, 9, 9, 9, 9, 9, 9, 9]);
        let b = bindings_from_mesh_capture(&cap, &ctx());
        assert_eq!(b.datagrams, 1);
        assert!(b.by_addr.is_empty());
    }
}
