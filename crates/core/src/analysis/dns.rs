//! DNS transactions per transport family: query record types, positive
//! and negative AAAA answers (matched to queries by client MAC + txid),
//! query source addresses, and the capture-global IP → name answer map
//! the [`super::traffic`] and [`super::eui64`] passes attribute
//! destinations with.

use super::{AnalyzerPass, PassId, SharedFrameCtx};
use std::collections::HashMap;
use std::net::IpAddr;
use v6brick_net::dns::{Name, Rdata, RecordType};
use v6brick_net::parse::{ParsedPacket, L4};
use v6brick_net::Mac;

/// See the module docs. Owns the ten `*_q_*` / `aaaa_pos_*` / `aaaa_neg`
/// / `dns_src_v6` observation fields plus the shared
/// [`super::SharedState::ip_to_name`] map. Only dispatched
/// [`super::FrameClass::Dns`] frames.
pub struct DnsPass {
    /// Pending queries: (client mac, txid) -> (name, rtype, over_v6).
    pending: HashMap<(Mac, u16), (Name, RecordType, bool)>,
}

impl DnsPass {
    /// A fresh pass with no outstanding queries.
    pub fn new() -> DnsPass {
        DnsPass {
            pending: HashMap::new(),
        }
    }
}

impl Default for DnsPass {
    fn default() -> Self {
        Self::new()
    }
}

impl AnalyzerPass for DnsPass {
    fn id(&self) -> PassId {
        PassId::Dns
    }

    fn on_frame(&mut self, _ts: u64, p: &ParsedPacket, ctx: &mut SharedFrameCtx<'_>) {
        let L4::Udp { dst_port, .. } = &p.l4 else {
            return;
        };
        let over_v6 = p.is_ipv6();
        if *dst_port == 53 {
            // Query from a device.
            let Some(i) = ctx.from else { return };
            let Some(msg) = ctx.caches.dns_message(p) else {
                return;
            };
            let Some(q) = msg.question() else { return };
            let o = &mut ctx.state.obs[i];
            match q.rtype {
                RecordType::A => {
                    if over_v6 {
                        o.a_q_v6.insert(q.name.clone());
                    } else {
                        o.a_q_v4.insert(q.name.clone());
                    }
                }
                RecordType::Aaaa => {
                    if over_v6 {
                        o.aaaa_q_v6.insert(q.name.clone());
                    } else {
                        o.aaaa_q_v4.insert(q.name.clone());
                    }
                }
                RecordType::Https => {
                    o.https_q.insert(q.name.clone());
                }
                RecordType::Svcb => {
                    o.svcb_q.insert(q.name.clone());
                }
                _ => {}
            }
            self.pending
                .insert((p.eth.src, msg.id), (q.name.clone(), q.rtype, over_v6));
            if over_v6 {
                if let Some(IpAddr::V6(src)) = p.src_ip() {
                    o.dns_src_v6.insert(src);
                }
            }
        } else {
            // Response toward a device.
            let Some(msg) = ctx.caches.dns_message(p) else {
                return;
            };
            // Harvest the global answer map regardless of destination.
            for r in &msg.answers {
                match r.rdata {
                    Rdata::A(a) => {
                        ctx.state.ip_to_name.insert(IpAddr::V4(a), r.name.clone());
                    }
                    Rdata::Aaaa(a) => {
                        ctx.state.ip_to_name.insert(IpAddr::V6(a), r.name.clone());
                    }
                    _ => {}
                }
            }
            if let Some(i) = ctx.to {
                if let Some((name, rtype, _)) = self.pending.remove(&(p.eth.dst, msg.id)) {
                    if rtype == RecordType::Aaaa {
                        let o = &mut ctx.state.obs[i];
                        if msg.aaaa_answers().next().is_some() {
                            if over_v6 {
                                o.aaaa_pos_v6.insert(name);
                            } else {
                                o.aaaa_pos_v4.insert(name);
                            }
                        } else {
                            o.aaaa_neg.insert(name);
                        }
                    }
                }
            }
        }
    }
}
