//! The result types every analyzer pass writes into: one
//! [`DeviceObservation`] per device plus the capture-wide
//! [`ExperimentAnalysis`].
//!
//! Field ownership is partitioned across the passes (see
//! [`super::PassId::owned_device_fields`]): each observation field is
//! written by exactly one pass, which is what makes pass subsets
//! *monotone* — disabling a pass leaves its fields at their defaults and
//! every other field byte-identical to the full run.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::{IpAddr, Ipv6Addr};
use v6brick_net::dns::Name;
use v6brick_net::ipv6::{AddressKind, Ipv6AddrExt};

/// Everything the pipeline measured about one device.
///
/// `Deserialize` exists for the ingest write-ahead log: a WAL record
/// carries the already-analyzed observations so crash recovery can
/// re-absorb them without re-decoding the capture.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceObservation {
    /// Did the device emit any NDP traffic (RS/RA/NS/NA)?
    pub ndp_traffic: bool,
    /// Addresses the device *assigned*: DAD targets and NA announcements.
    pub announced_v6: BTreeSet<Ipv6Addr>,
    /// Addresses that actually sourced UDP/TCP traffic.
    pub active_v6: BTreeSet<Ipv6Addr>,
    /// Addresses for which a DAD probe (NS from `::`) was observed.
    pub dad_probed: BTreeSet<Ipv6Addr>,
    /// Completed a DHCPv4 exchange (request seen).
    pub dhcpv4_used: bool,
    /// Sent a DHCPv6 Information-Request (stateless).
    pub dhcpv6_stateless: bool,
    /// Sent a DHCPv6 Solicit/Request (stateful).
    pub dhcpv6_stateful: bool,
    /// Addresses received in DHCPv6 IA_NA replies.
    pub dhcpv6_addrs: BTreeSet<Ipv6Addr>,

    /// Distinct names in AAAA queries, by transport family.
    pub aaaa_q_v6: BTreeSet<Name>,
    /// AAAA query IPv4.
    pub aaaa_q_v4: BTreeSet<Name>,
    /// Names queried for A over IPv6 transport but never for AAAA
    /// anywhere (the "A-only in IPv6" behaviour) are derived later;
    /// these are the raw A query names per transport.
    pub a_q_v6: BTreeSet<Name>,
    /// A query IPv4.
    pub a_q_v4: BTreeSet<Name>,
    /// HTTPS/SVCB resource-record queries (HTTP/3 probing).
    pub https_q: BTreeSet<Name>,
    /// Svcb query.
    pub svcb_q: BTreeSet<Name>,
    /// Names with positive AAAA answers, by transport family.
    pub aaaa_pos_v6: BTreeSet<Name>,
    /// AAAA positive IPv4.
    pub aaaa_pos_v4: BTreeSet<Name>,
    /// Names whose AAAA query got a negative answer.
    pub aaaa_neg: BTreeSet<Name>,
    /// IPv6 source addresses used for DNS queries.
    pub dns_src_v6: BTreeSet<Ipv6Addr>,

    /// L4 payload bytes exchanged with Internet hosts, per family
    /// (both directions).
    pub v6_internet_bytes: u64,
    /// IPv4 internet bytes.
    pub v4_internet_bytes: u64,
    /// IPv6 bytes exchanged with on-link / non-global peers.
    pub v6_local_bytes: u64,
    /// Distinct IPv6 Internet peers.
    pub v6_internet_peers: BTreeSet<Ipv6Addr>,
    /// IPv6 source addresses that carried Internet data.
    pub data_src_v6: BTreeSet<Ipv6Addr>,
    /// IPv6 source addresses that carried NTP.
    pub ntp_src_v6: BTreeSet<Ipv6Addr>,

    /// Destination domains reached over each family (DNS answer mapping
    /// plus SNI).
    pub domains_v6: BTreeSet<Name>,
    /// Domains IPv4.
    pub domains_v4: BTreeSet<Name>,
    /// Domains seen in TLS SNI.
    pub sni_domains: BTreeSet<Name>,
    /// Domains contacted from an EUI-64 source (DNS or data), for the
    /// Fig. 5 exposure analysis.
    pub domains_from_eui64: BTreeSet<Name>,
    /// Names queried (DNS) from an EUI-64 source.
    pub dns_names_from_eui64: BTreeSet<Name>,
}

impl DeviceObservation {
    /// Any IPv6 address assigned (announced or actively used)?
    pub fn has_v6_addr(&self) -> bool {
        !self.active_v6.is_empty() || self.announced_v6.iter().any(|a| !a.is_unspecified())
    }

    /// Active addresses of a given kind.
    pub fn active_of(&self, kind: AddressKind) -> impl Iterator<Item = &Ipv6Addr> {
        self.active_v6.iter().filter(move |a| a.kind() == kind)
    }

    /// Does any active address classify as `kind`?
    pub fn has_active(&self, kind: AddressKind) -> bool {
        self.active_of(kind).next().is_some()
    }

    /// Every assigned-or-active address.
    pub fn all_addrs(&self) -> BTreeSet<Ipv6Addr> {
        self.announced_v6.union(&self.active_v6).copied().collect()
    }

    /// Active EUI-64 addresses (any scope).
    pub fn active_eui64(&self) -> impl Iterator<Item = &Ipv6Addr> {
        self.active_v6.iter().filter(|a| a.is_eui64())
    }

    /// Did the device send AAAA queries over IPv6 transport?
    pub fn dns_over_v6(&self) -> bool {
        !self.aaaa_q_v6.is_empty() || !self.a_q_v6.is_empty()
    }

    /// All AAAA query names, either transport.
    pub fn aaaa_q_any(&self) -> BTreeSet<Name> {
        self.aaaa_q_v6.union(&self.aaaa_q_v4).cloned().collect()
    }

    /// Names queried A-only over IPv6: asked for A over v6 but never for
    /// AAAA on any transport.
    pub fn a_only_v6_names(&self) -> BTreeSet<Name> {
        let all_aaaa = self.aaaa_q_any();
        self.a_q_v6
            .iter()
            .filter(|n| !all_aaaa.contains(n))
            .cloned()
            .collect()
    }

    /// Positive AAAA answers on either transport.
    pub fn aaaa_pos_any(&self) -> BTreeSet<Name> {
        self.aaaa_pos_v6.union(&self.aaaa_pos_v4).cloned().collect()
    }

    /// Transmitted Internet data over IPv6?
    pub fn v6_internet_data(&self) -> bool {
        self.v6_internet_bytes > 0
    }

    /// Fraction of Internet volume carried over IPv6 (dual-stack; Fig. 4).
    pub fn v6_volume_fraction(&self) -> f64 {
        let total = self.v6_internet_bytes + self.v4_internet_bytes;
        if total == 0 {
            return 0.0;
        }
        self.v6_internet_bytes as f64 / total as f64
    }
}

/// The result of analyzing one experiment capture.
#[derive(Debug, Default, Serialize)]
pub struct ExperimentAnalysis {
    /// Per-device observations, keyed by the label supplied with the MAC.
    pub devices: BTreeMap<String, DeviceObservation>,
    /// DNS answer map harvested from the whole capture: IP → name.
    pub ip_to_name: BTreeMap<IpAddr, Name>,
    /// Frames that could not be attributed to a known device.
    pub unattributed_frames: u64,
    /// Total frames examined.
    pub frames: u64,
    /// Raw frames handed to the analyzer that failed even lenient
    /// parsing. These contribute to nothing else — without this counter
    /// they would vanish without a trace.
    pub parse_errors: u64,
    /// The full 5-tuple flow table (not serialized; used by volume
    /// cross-checks and benchmarks). Populated only when the
    /// [`super::PassId::Flows`] pass runs.
    #[serde(skip)]
    pub flows: crate::flows::FlowTable,
}

impl ExperimentAnalysis {
    /// Observation by device label.
    pub fn device(&self, label: &str) -> Option<&DeviceObservation> {
        self.devices.get(label)
    }

    /// Count devices satisfying a predicate.
    pub fn count(&self, pred: impl Fn(&DeviceObservation) -> bool) -> usize {
        self.devices.values().filter(|o| pred(o)).count()
    }
}
