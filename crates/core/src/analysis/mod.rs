//! The composable analysis pipeline: one [`AnalyzerPass`] per measurement
//! concern, composed by a [`PassSet`].
//!
//! The §5 observables decompose into six passes — [`addressing`]
//! (address assignment and use), [`ndp_dad`] (NDP presence and DAD
//! compliance), [`dns`] (per-transport DNS transactions and the global
//! answer map), [`traffic`] (volume accounting and destination domains),
//! [`eui64`] (EUI-64 exposure), and [`flows`] (the 5-tuple flow table).
//! Each [`DeviceObservation`] field is owned by exactly one pass
//! ([`PassId::owned_device_fields`]), so running a subset leaves the other
//! fields at their defaults and everything the subset *does* populate is
//! byte-identical to a full run — the monotonicity property the fleet
//! path relies on when it runs only the population-relevant passes.
//!
//! Per-frame work shared between passes (frame classification, DNS
//! message parsing, SNI extraction, data-frame attribution) is computed
//! at most once per frame and handed to every pass through
//! [`SharedFrameCtx`].

pub mod addressing;
pub mod dns;
pub mod eui64;
pub mod flows;
pub mod mesh;
pub mod ndp_dad;
pub mod traffic;
pub mod types;

pub use types::{DeviceObservation, ExperimentAnalysis};

use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::{IpAddr, Ipv6Addr};
use std::time::Instant;
use v6brick_net::dns::{Message, Name};
use v6brick_net::ipv6::{Cidr, Ipv6AddrExt};
use v6brick_net::parse::{self, Net, ParsedPacket, L4};
use v6brick_net::{tls, Mac};

/// Stable identifier for one analyzer pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum PassId {
    /// Address assignment and use (SLAAC/DHCPv4/DHCPv6, active sources).
    Addressing,
    /// NDP presence and DAD probing.
    NdpDad,
    /// DNS transactions per transport family + the global answer map.
    Dns,
    /// Data-volume accounting and destination domains.
    Traffic,
    /// EUI-64 exposure (domains contacted from EUI-64 sources).
    Eui64,
    /// The full 5-tuple flow table.
    Flows,
}

impl PassId {
    /// Every pass, in canonical execution order.
    pub const ALL: [PassId; 6] = [
        PassId::Addressing,
        PassId::NdpDad,
        PassId::Dns,
        PassId::Traffic,
        PassId::Eui64,
        PassId::Flows,
    ];

    /// Human-readable (and JSON) label.
    pub fn label(self) -> &'static str {
        match self {
            PassId::Addressing => "addressing",
            PassId::NdpDad => "ndp_dad",
            PassId::Dns => "dns",
            PassId::Traffic => "traffic",
            PassId::Eui64 => "eui64",
            PassId::Flows => "flows",
        }
    }

    /// Inverse of [`PassId::label`]: resolve a label back to its pass.
    /// This is the parsing path for CLI flags and wire headers (the
    /// enum serializes but deliberately does not deserialize — inputs
    /// arrive as labels).
    pub fn from_label(label: &str) -> Option<PassId> {
        PassId::ALL.into_iter().find(|p| p.label() == label)
    }

    /// Passes this pass reads shared state from. [`PassSet::with_passes`]
    /// closes over these, so enabling `Traffic` always enables `Dns` (the
    /// destination-domain attribution reads the DNS answer map).
    pub fn deps(self) -> &'static [PassId] {
        match self {
            PassId::Traffic | PassId::Eui64 => &[PassId::Dns],
            _ => &[],
        }
    }

    /// Does this pass inspect frames of the given class? Used both to
    /// skip dispatch in the hot loop and to attribute per-pass frame
    /// counters.
    pub fn handles(self, class: FrameClass) -> bool {
        match self {
            PassId::Addressing | PassId::Flows => true,
            PassId::NdpDad => class == FrameClass::Icmpv6,
            PassId::Dns => class == FrameClass::Dns,
            PassId::Traffic => class == FrameClass::Data,
            PassId::Eui64 => matches!(class, FrameClass::Dns | FrameClass::Data),
        }
    }

    /// The [`DeviceObservation`] fields this pass (and only this pass)
    /// writes — the ownership partition behind subset monotonicity. Field
    /// names match the serde output.
    pub fn owned_device_fields(self) -> &'static [&'static str] {
        match self {
            PassId::Addressing => &[
                "announced_v6",
                "active_v6",
                "dhcpv4_used",
                "dhcpv6_stateless",
                "dhcpv6_stateful",
                "dhcpv6_addrs",
            ],
            PassId::NdpDad => &["ndp_traffic", "dad_probed"],
            PassId::Dns => &[
                "aaaa_q_v6",
                "aaaa_q_v4",
                "a_q_v6",
                "a_q_v4",
                "https_q",
                "svcb_q",
                "aaaa_pos_v6",
                "aaaa_pos_v4",
                "aaaa_neg",
                "dns_src_v6",
            ],
            PassId::Traffic => &[
                "v6_internet_bytes",
                "v4_internet_bytes",
                "v6_local_bytes",
                "v6_internet_peers",
                "data_src_v6",
                "ntp_src_v6",
                "domains_v6",
                "domains_v4",
                "sni_domains",
            ],
            PassId::Eui64 => &["domains_from_eui64", "dns_names_from_eui64"],
            PassId::Flows => &[],
        }
    }
}

/// What kind of frame is this, for dispatch purposes?
///
/// Classification is purely structural (family + ports), computed once
/// per frame, and reproduces the monolithic analyzer's early-return
/// precedence exactly: ICMPv6 > DHCPv4 > DHCPv6 > DNS > data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameClass {
    /// IPv6 + ICMPv6 (NDP, echo, errors).
    Icmpv6,
    /// IPv4 UDP 68 → 67.
    Dhcpv4,
    /// IPv6 UDP 546 → 547 (client to server).
    Dhcpv6ClientToServer,
    /// IPv6 UDP 547 → 546 (server to client).
    Dhcpv6ServerToClient,
    /// UDP with source or destination port 53.
    Dns,
    /// Everything else (TCP / non-service UDP / other).
    Data,
}

impl FrameClass {
    /// Classify a parsed frame.
    pub fn classify(p: &ParsedPacket) -> FrameClass {
        match (&p.net, &p.l4) {
            (Net::Ipv6(_), L4::Icmpv6(_)) => FrameClass::Icmpv6,
            (
                Net::Ipv4(_),
                L4::Udp {
                    src_port: 68,
                    dst_port: 67,
                    ..
                },
            ) => FrameClass::Dhcpv4,
            (
                Net::Ipv6(_),
                L4::Udp {
                    src_port: 546,
                    dst_port: 547,
                    ..
                },
            ) => FrameClass::Dhcpv6ClientToServer,
            (
                Net::Ipv6(_),
                L4::Udp {
                    src_port: 547,
                    dst_port: 546,
                    ..
                },
            ) => FrameClass::Dhcpv6ServerToClient,
            (
                _,
                L4::Udp {
                    src_port, dst_port, ..
                },
            ) if *src_port == 53 || *dst_port == 53 => FrameClass::Dns,
            _ => FrameClass::Data,
        }
    }
}

/// Is an IPv6 peer local to the home (multicast, non-global, or inside
/// the routed LAN prefix)?
pub fn v6_peer_is_local(peer: Ipv6Addr, lan_prefix: Cidr) -> bool {
    peer.is_multicast() || !peer.is_global_unicast() || lan_prefix.contains(peer)
}

/// A data frame attributed to a device: the common precondition of the
/// traffic and EUI-64 passes, computed once per frame.
#[derive(Debug, Clone, Copy)]
pub struct DataFrame {
    /// Index of the attributed device in the observation vector.
    pub idx: usize,
    /// The device-side address.
    pub dev_ip: IpAddr,
    /// The peer-side address.
    pub peer_ip: IpAddr,
    /// L4 payload bytes carried.
    pub payload_len: u64,
    /// Did the device send the frame (vs. receive it)?
    pub outbound: bool,
    /// Does either port indicate NTP?
    pub is_ntp: bool,
}

impl DataFrame {
    /// Attribute a [`FrameClass::Data`] frame to a device end (sender
    /// preferred, mirroring the monolith). `None` when addresses are
    /// missing, the L4 carries no payload notion, or neither MAC is a
    /// known device.
    fn attribute(p: &ParsedPacket, from: Option<usize>, to: Option<usize>) -> Option<DataFrame> {
        let (src_ip, dst_ip) = match (p.src_ip(), p.dst_ip()) {
            (Some(s), Some(d)) => (s, d),
            _ => return None,
        };
        let payload_len = match &p.l4 {
            L4::Tcp { payload_len, .. } => *payload_len as u64,
            L4::Udp { payload, .. } => payload.len() as u64,
            _ => return None,
        };
        let (idx, dev_ip, peer_ip, outbound) = match (from, to) {
            (Some(i), _) => (i, src_ip, dst_ip, true),
            (_, Some(i)) => (i, dst_ip, src_ip, false),
            _ => return None,
        };
        Some(DataFrame {
            idx,
            dev_ip,
            peer_ip,
            payload_len,
            outbound,
            is_ntp: p.involves_port(123),
        })
    }
}

/// State shared between passes: the per-device observations and the
/// global DNS answer map (written by the [`dns`] pass, read by
/// [`traffic`] and [`eui64`]).
#[derive(Debug)]
pub struct SharedState {
    /// One observation per registered device, indexed like the device
    /// list handed to [`PassSet::with_passes`].
    pub obs: Vec<DeviceObservation>,
    /// The global DNS answer map: IP → last name that resolved to it.
    pub ip_to_name: BTreeMap<IpAddr, Name>,
}

/// Lazily-computed per-frame derivations shared between passes. Lives in
/// a field separate from [`SharedState`] so a pass can hold a parsed
/// message borrowed from the caches while mutating observations.
#[derive(Debug, Default)]
pub struct FrameCaches {
    dns: Option<Option<Message>>,
    sni: Option<Option<Name>>,
}

impl FrameCaches {
    /// The frame's UDP payload parsed as a DNS message (memoized; `None`
    /// for non-UDP frames or unparseable payloads).
    pub fn dns_message(&mut self, p: &ParsedPacket) -> Option<&Message> {
        self.dns
            .get_or_insert_with(|| match &p.l4 {
                L4::Udp { payload, .. } => Message::parse_bytes(payload).ok(),
                _ => None,
            })
            .as_ref()
    }

    /// The TLS SNI carried in the frame's TCP payload (memoized).
    pub fn sni(&mut self, p: &ParsedPacket) -> Option<&Name> {
        self.sni
            .get_or_insert_with(|| match &p.l4 {
                L4::Tcp { payload, .. } => tls::parse_sni(payload).ok(),
                _ => None,
            })
            .as_ref()
    }
}

/// Everything a pass may read or write while handling one frame.
#[derive(Debug)]
pub struct SharedFrameCtx<'a> {
    /// The frame's dispatch class.
    pub class: FrameClass,
    /// Index of the sending device, if the source MAC is registered.
    pub from: Option<usize>,
    /// Index of the receiving device, if the destination MAC is registered.
    pub to: Option<usize>,
    /// The routed LAN /64 (local-vs-Internet split).
    pub lan_prefix: Cidr,
    /// Device attribution for [`FrameClass::Data`] frames (`None`
    /// otherwise, or when the frame can't be attributed).
    pub data: Option<DataFrame>,
    /// Cross-pass mutable state.
    pub state: &'a mut SharedState,
    /// Per-frame memoized derivations.
    pub caches: FrameCaches,
}

/// One analysis concern, fed every frame of the classes it
/// [`PassId::handles`].
pub trait AnalyzerPass: Send {
    /// Which pass this is.
    fn id(&self) -> PassId;

    /// Observe one parsed frame.
    fn on_frame(&mut self, ts: u64, p: &ParsedPacket, ctx: &mut SharedFrameCtx<'_>);

    /// Move any privately-held results into the final analysis. Passes
    /// that write only shared per-device fields need not override this.
    fn finish_into(&mut self, analysis: &mut ExperimentAnalysis) {
        let _ = analysis;
    }
}

/// Per-pass execution counters.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PassMetrics {
    /// Frames dispatched to the pass.
    pub frames: u64,
    /// Wall-clock nanoseconds spent inside the pass. Only collected
    /// after [`PassSet::enable_metrics`] — timing costs two `Instant`
    /// reads per pass per frame, which the fleet hot path must not pay.
    pub nanos: u64,
}

struct PassEntry {
    id: PassId,
    pass: Box<dyn AnalyzerPass>,
    metrics: PassMetrics,
}

impl std::fmt::Debug for PassEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassEntry")
            .field("id", &self.id)
            .field("metrics", &self.metrics)
            .finish()
    }
}

/// A composed set of analyzer passes sharing one frame walk.
///
/// Feed frames (raw or parsed) in capture order, then [`PassSet::finish`]
/// to obtain the [`ExperimentAnalysis`]. With every pass enabled the
/// output is byte-identical (via serde) to the pre-decomposition
/// monolithic analyzer — the streaming-equivalence and property tests pin
/// this.
#[derive(Debug)]
pub struct PassSet {
    devices: Vec<(Mac, String)>,
    lan_prefix: Cidr,
    mac_index: HashMap<Mac, usize>,
    /// IPv6 address → device index, consulted only when MAC attribution
    /// fails — the mesh case, where every leaf frame carries the border
    /// router's MAC. Empty (and therefore free) for Ethernet-only homes.
    mesh_bindings: HashMap<Ipv6Addr, usize>,
    state: SharedState,
    passes: Vec<PassEntry>,
    frames: u64,
    unattributed: u64,
    parse_errors: u64,
    /// Every frame handed to `feed`, including unparseable ones.
    fed: u64,
    metrics_enabled: bool,
}

impl PassSet {
    /// Compose the passes in `ids` (plus their [`PassId::deps`] closure),
    /// instantiated in canonical [`PassId::ALL`] order.
    ///
    /// `lan_prefix` is the routed /64: IPv6 peers inside it (or
    /// non-global) count as local, everything else as Internet. `devices`
    /// maps MAC → label; frames from other MACs (router, phones) only
    /// contribute to the global DNS answer map.
    pub fn with_passes(devices: &[(Mac, String)], lan_prefix: Cidr, ids: &[PassId]) -> PassSet {
        let mut enabled: BTreeSet<PassId> = ids.iter().copied().collect();
        loop {
            let before = enabled.len();
            let deps: Vec<PassId> = enabled.iter().flat_map(|p| p.deps()).copied().collect();
            enabled.extend(deps);
            if enabled.len() == before {
                break;
            }
        }
        let passes = PassId::ALL
            .iter()
            .filter(|id| enabled.contains(id))
            .map(|&id| PassEntry {
                id,
                pass: instantiate(id),
                metrics: PassMetrics::default(),
            })
            .collect();
        PassSet {
            devices: devices.to_vec(),
            lan_prefix,
            mac_index: devices
                .iter()
                .enumerate()
                .map(|(i, (m, _))| (*m, i))
                .collect(),
            mesh_bindings: HashMap::new(),
            state: SharedState {
                obs: vec![DeviceObservation::default(); devices.len()],
                ip_to_name: BTreeMap::new(),
            },
            passes,
            frames: 0,
            unattributed: 0,
            parse_errors: 0,
            fed: 0,
            metrics_enabled: false,
        }
    }

    /// Every pass — the full pre-decomposition semantics.
    pub fn full(devices: &[(Mac, String)], lan_prefix: Cidr) -> PassSet {
        Self::with_passes(devices, lan_prefix, &PassId::ALL)
    }

    /// The passes that will run, in execution order (deps included).
    pub fn enabled(&self) -> Vec<PassId> {
        self.passes.iter().map(|e| e.id).collect()
    }

    /// Collect per-pass wall-clock timings from now on (off by default —
    /// the fleet hot path must not pay for `Instant` reads).
    pub fn enable_metrics(&mut self) {
        self.metrics_enabled = true;
    }

    /// Per-pass execution counters, in execution order.
    pub fn metrics(&self) -> Vec<(PassId, PassMetrics)> {
        self.passes.iter().map(|e| (e.id, e.metrics)).collect()
    }

    /// Bind an IPv6 address to the device owning `mac`, for frames whose
    /// link-layer identity was erased by a border router. Returns `false`
    /// (and binds nothing) when `mac` is not a registered device — the
    /// border router's own mesh-local address lands here.
    ///
    /// Bindings only ever *add* attribution: they are consulted after MAC
    /// lookup fails, so Ethernet-attributed frames are untouched and an
    /// empty binding table reproduces pre-mesh behaviour exactly.
    pub fn add_mesh_binding(&mut self, addr: Ipv6Addr, mac: Mac) -> bool {
        match self.mac_index.get(&mac) {
            Some(&idx) => {
                self.mesh_bindings.insert(addr, idx);
                true
            }
            None => false,
        }
    }

    /// Number of mesh address bindings installed.
    pub fn mesh_binding_count(&self) -> usize {
        self.mesh_bindings.len()
    }

    /// Frames handed to [`PassSet::feed`] so far (parseable or not) — the
    /// equivalent of the buffered pipeline's capture length.
    pub fn frames_fed(&self) -> u64 {
        self.fed
    }

    /// Frames that failed lenient parsing so far.
    pub fn parse_errors(&self) -> u64 {
        self.parse_errors
    }

    /// Consume one raw frame. Unparseable frames count toward
    /// [`PassSet::frames_fed`] and [`PassSet::parse_errors`] but
    /// contribute nothing else.
    pub fn feed(&mut self, timestamp_us: u64, frame: &[u8]) {
        self.fed += 1;
        match parse::parse_lenient(frame) {
            Ok(p) => self.feed_parsed(timestamp_us, &p),
            Err(_) => self.parse_errors += 1,
        }
    }

    /// Consume one already-parsed frame.
    pub fn feed_parsed(&mut self, ts: u64, p: &ParsedPacket) {
        self.frames += 1;
        let mut from = self.mac_index.get(&p.eth.src).copied();
        let mut to = self.mac_index.get(&p.eth.dst).copied();
        if !self.mesh_bindings.is_empty() {
            if let Net::Ipv6(ip) = &p.net {
                if from.is_none() {
                    from = self.mesh_bindings.get(&ip.src).copied();
                }
                if to.is_none() && !ip.dst.is_multicast() {
                    to = self.mesh_bindings.get(&ip.dst).copied();
                }
            }
        }
        if from.is_none() && to.is_none() {
            self.unattributed += 1;
        }
        let class = FrameClass::classify(p);
        let mut ctx = SharedFrameCtx {
            class,
            from,
            to,
            lan_prefix: self.lan_prefix,
            data: if class == FrameClass::Data {
                DataFrame::attribute(p, from, to)
            } else {
                None
            },
            state: &mut self.state,
            caches: FrameCaches::default(),
        };
        for entry in &mut self.passes {
            if !entry.id.handles(class) {
                continue;
            }
            entry.metrics.frames += 1;
            if self.metrics_enabled {
                let t0 = Instant::now();
                entry.pass.on_frame(ts, p, &mut ctx);
                entry.metrics.nanos += t0.elapsed().as_nanos() as u64;
            } else {
                entry.pass.on_frame(ts, p, &mut ctx);
            }
        }
    }

    /// Finalize: key the per-device observations by label and let each
    /// pass move its private results over. Consumes the set — the state
    /// *is* the result.
    pub fn finish(self) -> ExperimentAnalysis {
        let mut analysis = ExperimentAnalysis {
            devices: self
                .devices
                .iter()
                .zip(self.state.obs)
                .map(|((_, label), o)| (label.clone(), o))
                .collect(),
            ip_to_name: self.state.ip_to_name,
            unattributed_frames: self.unattributed,
            frames: self.frames,
            parse_errors: self.parse_errors,
            flows: crate::flows::FlowTable::new(),
        };
        let mut passes = self.passes;
        for entry in &mut passes {
            entry.pass.finish_into(&mut analysis);
        }
        analysis
    }
}

/// Construct the pass implementation for an id.
fn instantiate(id: PassId) -> Box<dyn AnalyzerPass> {
    match id {
        PassId::Addressing => Box::new(addressing::AddressingPass),
        PassId::NdpDad => Box::new(ndp_dad::NdpDadPass),
        PassId::Dns => Box::new(dns::DnsPass::new()),
        PassId::Traffic => Box::new(traffic::TrafficPass),
        PassId::Eui64 => Box::new(eui64::Eui64Pass),
        PassId::Flows => Box::new(flows::FlowsPass::new()),
    }
}
