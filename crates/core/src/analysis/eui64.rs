//! EUI-64 exposure: which domains a device contacted *from* an EUI-64
//! source address (by DNS query, attributed data, or SNI) — the raw
//! material of the Fig. 5 privacy analysis in [`crate::eui64`].

use super::{v6_peer_is_local, AnalyzerPass, FrameClass, PassId, SharedFrameCtx};
use std::net::IpAddr;
use v6brick_net::ipv6::Ipv6AddrExt;
use v6brick_net::parse::{ParsedPacket, L4};

/// See the module docs. Owns `domains_from_eui64` and
/// `dns_names_from_eui64`. Dispatched [`FrameClass::Dns`] and
/// [`FrameClass::Data`] frames; depends on [`super::dns`] for the answer
/// map.
pub struct Eui64Pass;

impl AnalyzerPass for Eui64Pass {
    fn id(&self) -> PassId {
        PassId::Eui64
    }

    fn on_frame(&mut self, _ts: u64, p: &ParsedPacket, ctx: &mut SharedFrameCtx<'_>) {
        match ctx.class {
            FrameClass::Dns => {
                // A query sent from an EUI-64 source exposes the name.
                let L4::Udp { dst_port: 53, .. } = &p.l4 else {
                    return;
                };
                let Some(i) = ctx.from else { return };
                if !p.is_ipv6() {
                    return;
                }
                let Some(IpAddr::V6(src)) = p.src_ip() else {
                    return;
                };
                if !src.is_eui64() {
                    return;
                }
                let name = ctx
                    .caches
                    .dns_message(p)
                    .and_then(|m| m.question())
                    .map(|q| q.name.clone());
                if let Some(name) = name {
                    let o = &mut ctx.state.obs[i];
                    o.dns_names_from_eui64.insert(name.clone());
                    o.domains_from_eui64.insert(name);
                }
            }
            FrameClass::Data => {
                let Some(d) = ctx.data else { return };
                if let (IpAddr::V6(dev6), IpAddr::V6(peer6)) = (d.dev_ip, d.peer_ip) {
                    if !v6_peer_is_local(peer6, ctx.lan_prefix)
                        && d.outbound
                        && dev6.is_eui64()
                        && !d.is_ntp
                    {
                        let name = ctx.state.ip_to_name.get(&IpAddr::V6(peer6)).cloned();
                        if let Some(name) = name {
                            ctx.state.obs[d.idx].domains_from_eui64.insert(name);
                        }
                    }
                }
                // SNI from client-to-server TLS off an EUI-64 source.
                if d.outbound {
                    if let (IpAddr::V6(dev6), IpAddr::V6(peer6)) = (d.dev_ip, d.peer_ip) {
                        if dev6.is_eui64()
                            && peer6.is_global_unicast()
                            && !ctx.lan_prefix.contains(peer6)
                        {
                            if let L4::Tcp { .. } = &p.l4 {
                                if let Some(sni) = ctx.caches.sni(p).cloned() {
                                    ctx.state.obs[d.idx].domains_from_eui64.insert(sni);
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
}
