//! NDP presence and DAD compliance: did the device speak NDP at all, and
//! which addresses did it probe for duplicates before using?

use super::{AnalyzerPass, PassId, SharedFrameCtx};
use v6brick_net::icmpv6;
use v6brick_net::ndp::Repr as Ndp;
use v6brick_net::parse::{Net, ParsedPacket, L4};

/// See the module docs. Owns `ndp_traffic` and `dad_probed`. Only
/// dispatched [`super::FrameClass::Icmpv6`] frames.
pub struct NdpDadPass;

impl AnalyzerPass for NdpDadPass {
    fn id(&self) -> PassId {
        PassId::NdpDad
    }

    fn on_frame(&mut self, _ts: u64, p: &ParsedPacket, ctx: &mut SharedFrameCtx<'_>) {
        let (Net::Ipv6(ip), L4::Icmpv6(msg)) = (&p.net, &p.l4) else {
            return;
        };
        let Some(i) = ctx.from else { return };
        if let icmpv6::Repr::Ndp(ndp) = msg {
            let o = &mut ctx.state.obs[i];
            o.ndp_traffic = true;
            if let Ndp::NeighborSolicit { target, .. } = ndp {
                if ip.src.is_unspecified() {
                    // DAD probe: NS from the unspecified address.
                    o.dad_probed.insert(*target);
                }
            }
        }
    }
}
