//! Data-volume accounting: bytes split by family and by
//! local-versus-Internet scope, Internet peers, data/NTP source
//! addresses, and destination domains attributed through the DNS answer
//! map and TLS SNI — the Fig. 3/4 traffic observables.

use super::{v6_peer_is_local, AnalyzerPass, PassId, SharedFrameCtx};
use std::net::IpAddr;
use v6brick_net::ipv6::Ipv6AddrExt;
use v6brick_net::parse::{ParsedPacket, L4};

/// See the module docs. Owns the byte counters, `v6_internet_peers`,
/// `data_src_v6`, `ntp_src_v6`, `domains_v6`, `domains_v4`, and
/// `sni_domains`. Only dispatched [`super::FrameClass::Data`] frames;
/// depends on [`super::dns`] for the answer map.
pub struct TrafficPass;

impl AnalyzerPass for TrafficPass {
    fn id(&self) -> PassId {
        PassId::Traffic
    }

    fn on_frame(&mut self, _ts: u64, p: &ParsedPacket, ctx: &mut SharedFrameCtx<'_>) {
        let Some(d) = ctx.data else { return };
        match (d.dev_ip, d.peer_ip) {
            (IpAddr::V6(_), IpAddr::V6(peer6)) => {
                if v6_peer_is_local(peer6, ctx.lan_prefix) {
                    ctx.state.obs[d.idx].v6_local_bytes += d.payload_len;
                } else {
                    let name = ctx.state.ip_to_name.get(&IpAddr::V6(peer6)).cloned();
                    let o = &mut ctx.state.obs[d.idx];
                    o.v6_internet_bytes += d.payload_len;
                    o.v6_internet_peers.insert(peer6);
                    if d.outbound {
                        if let IpAddr::V6(dev6) = d.dev_ip {
                            if d.is_ntp {
                                o.ntp_src_v6.insert(dev6);
                            } else {
                                o.data_src_v6.insert(dev6);
                            }
                        }
                    }
                    if let Some(name) = name {
                        o.domains_v6.insert(name);
                    }
                }
            }
            (IpAddr::V4(_), IpAddr::V4(peer4)) => {
                let local = peer4.is_private() || peer4.is_broadcast() || peer4.is_multicast();
                if !local {
                    let name = ctx.state.ip_to_name.get(&IpAddr::V4(peer4)).cloned();
                    let o = &mut ctx.state.obs[d.idx];
                    o.v4_internet_bytes += d.payload_len;
                    if let Some(name) = name {
                        o.domains_v4.insert(name);
                    }
                }
            }
            _ => {}
        }
        // SNI extraction from client-to-server TLS.
        if d.outbound {
            if let L4::Tcp { .. } = &p.l4 {
                if let Some(sni) = ctx.caches.sni(p).cloned() {
                    let o = &mut ctx.state.obs[d.idx];
                    o.sni_domains.insert(sni.clone());
                    match d.peer_ip {
                        IpAddr::V6(peer6)
                            if peer6.is_global_unicast() && !ctx.lan_prefix.contains(peer6) =>
                        {
                            o.domains_v6.insert(sni);
                        }
                        IpAddr::V4(peer4) if !peer4.is_private() => {
                            o.domains_v4.insert(sni);
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}
