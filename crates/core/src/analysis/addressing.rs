//! Address assignment and use: SLAAC announcements, DHCPv4/DHCPv6
//! exchanges, and which IPv6 sources are *active* (actually originate
//! traffic) — the Table 3/4 addressing observables.

use super::{AnalyzerPass, FrameClass, PassId, SharedFrameCtx};
use std::net::IpAddr;
use v6brick_net::icmpv6;
use v6brick_net::ndp::Repr as Ndp;
use v6brick_net::parse::{Net, ParsedPacket, L4};
use v6brick_net::{dhcpv4, dhcpv6};

/// See the module docs. Owns `announced_v6`, `active_v6`, `dhcpv4_used`,
/// `dhcpv6_stateless`, `dhcpv6_stateful`, and `dhcpv6_addrs`.
pub struct AddressingPass;

impl AnalyzerPass for AddressingPass {
    fn id(&self) -> PassId {
        PassId::Addressing
    }

    fn on_frame(&mut self, _ts: u64, p: &ParsedPacket, ctx: &mut SharedFrameCtx<'_>) {
        match ctx.class {
            FrameClass::Icmpv6 => {
                let (Net::Ipv6(ip), L4::Icmpv6(msg)) = (&p.net, &p.l4) else {
                    return;
                };
                let Some(i) = ctx.from else { return };
                match msg {
                    icmpv6::Repr::Ndp(ndp) => match ndp {
                        Ndp::NeighborSolicit { target, .. } if ip.src.is_unspecified() => {
                            // DAD probe: the target is being assigned.
                            ctx.state.obs[i].announced_v6.insert(*target);
                        }
                        Ndp::NeighborAdvert { target, .. } => {
                            ctx.state.obs[i].announced_v6.insert(*target);
                        }
                        _ => {}
                    },
                    icmpv6::Repr::EchoRequest { .. }
                        // Outbound connectivity probes *use* their source
                        // address (this is how probe-only EUI-64 GUAs show
                        // up as active — Fig. 5's "misc" uses).
                        if !ip.src.is_unspecified() && !ip.src.is_multicast() =>
                    {
                        ctx.state.obs[i].active_v6.insert(ip.src);
                    }
                    _ => {}
                }
            }
            FrameClass::Dhcpv4 => {
                let Some(i) = ctx.from else { return };
                let L4::Udp { payload, .. } = &p.l4 else {
                    return;
                };
                if let Ok(msg) = dhcpv4::Repr::parse_bytes(payload) {
                    if msg.message_type == dhcpv4::MessageType::Request {
                        ctx.state.obs[i].dhcpv4_used = true;
                    }
                }
            }
            FrameClass::Dhcpv6ClientToServer => {
                let L4::Udp { payload, .. } = &p.l4 else {
                    return;
                };
                if let (Some(i), Ok(msg)) = (ctx.from, dhcpv6::Repr::parse_bytes(payload)) {
                    match msg.message_type {
                        dhcpv6::MessageType::InformationRequest => {
                            ctx.state.obs[i].dhcpv6_stateless = true
                        }
                        dhcpv6::MessageType::Solicit | dhcpv6::MessageType::Request => {
                            ctx.state.obs[i].dhcpv6_stateful = true
                        }
                        _ => {}
                    }
                }
            }
            FrameClass::Dhcpv6ServerToClient => {
                let L4::Udp { payload, .. } = &p.l4 else {
                    return;
                };
                if let (Some(i), Ok(msg)) = (ctx.to, dhcpv6::Repr::parse_bytes(payload)) {
                    if let Some(ia) = msg.ia_na {
                        for a in ia.addresses {
                            let o = &mut ctx.state.obs[i];
                            o.dhcpv6_addrs.insert(a.addr);
                            o.announced_v6.insert(a.addr);
                        }
                    }
                }
            }
            FrameClass::Dns => {
                // A DNS query over IPv6 *uses* its source address.
                let L4::Udp { dst_port: 53, .. } = &p.l4 else {
                    return;
                };
                let Some(i) = ctx.from else { return };
                if !p.is_ipv6() {
                    return;
                }
                let has_question = ctx
                    .caches
                    .dns_message(p)
                    .and_then(|m| m.question())
                    .is_some();
                if has_question {
                    if let Some(IpAddr::V6(src)) = p.src_ip() {
                        ctx.state.obs[i].active_v6.insert(src);
                    }
                }
            }
            FrameClass::Data => {
                // An outbound data frame *uses* its IPv6 source address.
                let Some(d) = ctx.data else { return };
                if let (IpAddr::V6(dev6), IpAddr::V6(_)) = (d.dev_ip, d.peer_ip) {
                    if d.outbound {
                        ctx.state.obs[d.idx].active_v6.insert(dev6);
                    }
                }
            }
        }
    }
}
