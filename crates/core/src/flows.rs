//! 5-tuple flow reassembly.
//!
//! Flows are keyed on the canonicalized (lower endpoint first) 5-tuple so
//! both directions land in one record. The hash-indexed table is one of
//! the design choices DESIGN.md calls out; `bench_ablation_flows`
//! compares it against a linear scan.

use serde::Serialize;
use std::collections::HashMap;
use std::net::IpAddr;
use v6brick_net::parse::{Net, ParsedPacket, L4};

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FlowProto {
    /// The UDP transport.
    Udp,
    /// The TCP transport.
    Tcp,
}

/// Canonical flow key: `a` is the numerically lower (addr, port) endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct FlowKey {
    /// The numerically lower (address, port) endpoint.
    pub a: (IpAddr, u16),
    /// The numerically higher (address, port) endpoint.
    pub b: (IpAddr, u16),
    /// Transport protocol.
    pub proto: FlowProto,
}

impl FlowKey {
    /// Canonicalize endpoints so both directions map to one key.
    pub fn new(src: (IpAddr, u16), dst: (IpAddr, u16), proto: FlowProto) -> FlowKey {
        if src <= dst {
            FlowKey {
                a: src,
                b: dst,
                proto,
            }
        } else {
            FlowKey {
                a: dst,
                b: src,
                proto,
            }
        }
    }

    /// Is this an IPv6 flow?
    pub fn is_ipv6(&self) -> bool {
        self.a.0.is_ipv6()
    }

    /// Does either endpoint use `port`?
    pub fn involves_port(&self, port: u16) -> bool {
        self.a.1 == port || self.b.1 == port
    }
}

/// Accumulated state of one flow.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Flow {
    /// Bytes from endpoint `a` to `b` (L4 payload).
    pub bytes_ab: u64,
    /// Bytes from endpoint `b` to `a`.
    pub bytes_ba: u64,
    /// Frames in each direction.
    pub packets_ab: u64,
    /// Packets (b to a).
    pub packets_ba: u64,
    /// First (microseconds).
    pub first_us: u64,
    /// Last (microseconds).
    pub last_us: u64,
}

impl Flow {
    /// Total L4 payload bytes both ways.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_ab + self.bytes_ba
    }
}

/// The flow table.
#[derive(Debug, Default)]
pub struct FlowTable {
    flows: HashMap<FlowKey, Flow>,
}

impl FlowTable {
    /// Empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Account one parsed frame; non-TCP/UDP frames are ignored.
    /// Returns the key it was filed under, if any.
    pub fn record(&mut self, ts_us: u64, p: &ParsedPacket) -> Option<FlowKey> {
        let (src_ip, dst_ip) = match (&p.net, p.src_ip(), p.dst_ip()) {
            (Net::Ipv4(_) | Net::Ipv6(_), Some(s), Some(d)) => (s, d),
            _ => return None,
        };
        let (proto, src_port, dst_port, len) = match &p.l4 {
            L4::Udp {
                src_port,
                dst_port,
                payload,
            } => (FlowProto::Udp, *src_port, *dst_port, payload.len() as u64),
            L4::Tcp {
                src_port,
                dst_port,
                payload_len,
                ..
            } => (FlowProto::Tcp, *src_port, *dst_port, *payload_len as u64),
            _ => return None,
        };
        let src = (src_ip, src_port);
        let dst = (dst_ip, dst_port);
        let key = FlowKey::new(src, dst, proto);
        let flow = self.flows.entry(key).or_insert_with(|| Flow {
            first_us: ts_us,
            ..Flow::default()
        });
        flow.last_us = ts_us;
        if key.a == src {
            flow.bytes_ab += len;
            flow.packets_ab += 1;
        } else {
            flow.bytes_ba += len;
            flow.packets_ba += 1;
        }
        Some(key)
    }

    /// Number of distinct flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Look up one flow.
    pub fn get(&self, key: &FlowKey) -> Option<&Flow> {
        self.flows.get(key)
    }

    /// Iterate all flows.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, &Flow)> {
        self.flows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;
    use v6brick_net::ethernet::{EtherType, Repr as EthRepr};
    use v6brick_net::ipv4::Protocol;
    use v6brick_net::udp::{PseudoHeader, Repr as UdpRepr};
    use v6brick_net::{ipv6, Mac};

    fn udp6(src: &str, sp: u16, dst: &str, dp: u16, n: usize) -> ParsedPacket {
        let src: Ipv6Addr = src.parse().unwrap();
        let dst: Ipv6Addr = dst.parse().unwrap();
        let u = UdpRepr {
            src_port: sp,
            dst_port: dp,
            payload: vec![0; n],
        }
        .build(PseudoHeader::V6 { src, dst });
        let ip = ipv6::Repr {
            src,
            dst,
            next_header: Protocol::Udp,
            hop_limit: 64,
            payload_len: u.len(),
        }
        .build(&u);
        let frame = EthRepr {
            src: Mac::new(2, 0, 0, 0, 0, 1),
            dst: Mac::new(2, 0, 0, 0, 0, 2),
            ethertype: EtherType::Ipv6,
        }
        .build(&ip);
        ParsedPacket::parse(&frame).unwrap()
    }

    #[test]
    fn both_directions_share_a_flow() {
        let mut t = FlowTable::new();
        let k1 = t
            .record(10, &udp6("2001:db8::1", 1000, "2001:db8::2", 53, 40))
            .unwrap();
        let k2 = t
            .record(20, &udp6("2001:db8::2", 53, "2001:db8::1", 1000, 120))
            .unwrap();
        assert_eq!(k1, k2);
        assert_eq!(t.len(), 1);
        let f = t.get(&k1).unwrap();
        assert_eq!(f.total_bytes(), 160);
        assert_eq!(f.packets_ab + f.packets_ba, 2);
        assert_eq!((f.first_us, f.last_us), (10, 20));
    }

    #[test]
    fn distinct_tuples_distinct_flows() {
        let mut t = FlowTable::new();
        t.record(0, &udp6("2001:db8::1", 1000, "2001:db8::2", 53, 1));
        t.record(0, &udp6("2001:db8::1", 1001, "2001:db8::2", 53, 1));
        t.record(0, &udp6("2001:db8::1", 1000, "2001:db8::3", 53, 1));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn key_predicates() {
        let k = FlowKey::new(
            ("2001:db8::1".parse().unwrap(), 1000),
            ("2001:db8::2".parse().unwrap(), 53),
            FlowProto::Udp,
        );
        assert!(k.is_ipv6());
        assert!(k.involves_port(53));
        assert!(!k.involves_port(443));
    }
}
