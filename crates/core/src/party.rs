//! First / support / third party classification (§5.4).
//!
//! The paper classifies destinations relative to each device: vendor
//! infrastructure (plus YouTube for TVs) is first-party, clouds/CDNs/NTP
//! are support, and everything else — analytics and trackers — is third
//! party. The authors classify manually; we encode their rules: a name is
//! first-party when it shares a label stem with the device vendor,
//! support when it matches the shared-infrastructure patterns, and third
//! otherwise. The §5.4.3 tracker SLDs are pinned explicitly.

use serde::Serialize;
use v6brick_net::dns::Name;

/// The party a destination belongs to, relative to a device vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Party {
    /// Device-vendor infrastructure (plus YouTube for TVs).
    First,
    /// Cloud services, CDNs, object stores, NTP.
    Support,
    /// Everything else — analytics and trackers.
    Third,
}

/// Tracker second-level domains the paper names in §5.4.3.
pub const KNOWN_TRACKER_SLDS: &[&str] = &["app-measurement.com", "omtrdc.net", "segment.io"];

/// Support-infrastructure markers (CDNs, object stores, time, push).
const SUPPORT_MARKERS: &[&str] = &[
    "cdn",
    "cloudstore",
    "pool-ntp",
    "ntp",
    "firmware",
    "msg-relay",
    "akamai",
    "cloudfront",
    "fastly",
];

/// Third-party (tracking/analytics) markers.
const TRACKER_MARKERS: &[&str] = &[
    "metrics",
    "analytics",
    "beacon",
    "pixel",
    "adtrack",
    "quantify",
    "insight",
    "telemetry-ads",
];

/// Normalize a vendor name into matching stems ("SmartThings/Samsung" →
/// ["smartthings", "samsung"]).
fn vendor_stems(vendor: &str) -> Vec<String> {
    vendor
        .split(['/', ' ', '-'])
        .filter(|s| !s.is_empty())
        .map(|s| s.to_ascii_lowercase())
        .collect()
}

/// Classify `domain` for a device made by `vendor`.
pub fn classify(domain: &Name, vendor: &str) -> Party {
    let name = domain.as_str();
    let sld = domain.second_level();
    if KNOWN_TRACKER_SLDS.iter().any(|t| sld.as_str() == *t) {
        return Party::Third;
    }
    if TRACKER_MARKERS.iter().any(|m| name.contains(m)) {
        return Party::Third;
    }
    // CDNs and clouds count as support even when vendor-branded: the
    // paper's support party is "cloud services and CDNs".
    if SUPPORT_MARKERS.iter().any(|m| name.contains(m)) {
        return Party::Support;
    }
    for stem in vendor_stems(vendor) {
        if name.contains(&stem) {
            return Party::First;
        }
    }
    // YouTube on TVs is first-party per the paper; encoded for vendors
    // whose primary function we test through it.
    if name.contains("youtube") {
        return Party::First;
    }
    // Vendor-agnostic cloud names default to first party (device clouds),
    // matching the paper's lenient first-party definition.
    Party::First
}

/// Is this a known tracking SLD (for the §5.4.3 comparison)?
pub fn is_tracking_sld(sld: &Name) -> bool {
    KNOWN_TRACKER_SLDS.iter().any(|t| sld.as_str() == *t)
        || TRACKER_MARKERS.iter().any(|m| sld.as_str().contains(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::new(s).unwrap()
    }

    #[test]
    fn vendor_names_are_first_party() {
        assert_eq!(classify(&n("api.amazon.com"), "Amazon"), Party::First);
        assert_eq!(
            classify(
                &n("svc1.smartthings-samsung.example"),
                "SmartThings/Samsung"
            ),
            Party::First
        );
        assert_eq!(classify(&n("youtube.com"), "Samsung"), Party::First);
    }

    #[test]
    fn infrastructure_is_support_party() {
        assert_eq!(
            classify(&n("edge1.cdn-net.example"), "Amazon"),
            Party::Support
        );
        assert_eq!(
            classify(&n("time.pool-ntp.example"), "Wyze"),
            Party::Support
        );
        assert_eq!(
            classify(&n("s3-us.cloudstore.example"), "Wyze"),
            Party::Support
        );
    }

    #[test]
    fn trackers_are_third_party() {
        assert_eq!(classify(&n("app-measurement.com"), "Google"), Party::Third);
        assert_eq!(classify(&n("omtrdc.net"), "Samsung"), Party::Third);
        assert_eq!(classify(&n("segment.io"), "Meta"), Party::Third);
        assert_eq!(
            classify(&n("beacon.quantify.example"), "Wyze"),
            Party::Third
        );
        assert!(is_tracking_sld(&n("segment.io")));
        assert!(!is_tracking_sld(&n("amazon.com")));
    }

    #[test]
    fn support_marker_beats_vendor_match() {
        // Vendor-branded CDNs still count as support infrastructure,
        // matching the paper's "cloud services and CDNs" definition.
        assert_eq!(
            classify(&n("cdn12.amazon-net.example"), "Amazon"),
            Party::Support
        );
    }
}
