//! EUI-64 exposure analysis (§5.4.1 / Fig. 5).
//!
//! Given per-device observations, measure the funnel the paper reports:
//! devices that *assign* global EUI-64 addresses, those that *use* them
//! for any traffic, those exposing them through DNS resolution, and those
//! transmitting Internet data from them — plus the party mix of the
//! domains the addresses leak to.

use crate::observe::{DeviceObservation, ExperimentAnalysis};
use crate::party::{classify, Party};
use serde::Serialize;
use std::collections::BTreeSet;
use v6brick_net::dns::Name;
use v6brick_net::ipv6::Ipv6AddrExt;
use v6brick_net::Mac;

/// One device's EUI-64 exposure.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Eui64Exposure {
    /// Assigned (announced or used) global EUI-64 addresses.
    pub assigned_gua: BTreeSet<std::net::Ipv6Addr>,
    /// Did any traffic source from a global EUI-64 address?
    pub used: bool,
    /// Was DNS resolution performed from one?
    pub used_for_dns: bool,
    /// Was Internet data transmitted from one?
    pub used_for_data: bool,
    /// Did the EUI-64 address actually embed the device's own MAC (the
    /// leak is real, not coincidental bytes)?
    pub mac_verified: bool,
    /// Domains the address was exposed to (resolved or contacted).
    pub exposed_domains: BTreeSet<Name>,
}

/// Compute the exposure for one device.
pub fn exposure(mac: Mac, o: &DeviceObservation) -> Eui64Exposure {
    let mut e = Eui64Exposure::default();
    for a in o.all_addrs() {
        if a.is_global_unicast() && a.is_eui64() {
            e.assigned_gua.insert(a);
            if a.eui64_mac() == Some(mac) {
                e.mac_verified = true;
            }
        }
    }
    e.used = o
        .active_v6
        .iter()
        .any(|a| a.is_global_unicast() && a.is_eui64());
    e.used_for_dns = o
        .dns_src_v6
        .iter()
        .any(|a| a.is_global_unicast() && a.is_eui64());
    e.used_for_data = o
        .data_src_v6
        .iter()
        .any(|a| a.is_global_unicast() && a.is_eui64());
    e.exposed_domains = o
        .domains_from_eui64
        .union(&o.dns_names_from_eui64)
        .cloned()
        .collect();
    e
}

/// The aggregate Fig. 5 funnel.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Eui64Funnel {
    /// Devices that assigned at least one global EUI-64 address.
    pub assign: usize,
    /// Devices that sourced any traffic from an EUI-64 GUA.
    pub use_any: usize,
    /// Devices that resolved DNS from an EUI-64 GUA.
    pub use_dns: usize,
    /// Devices that sent Internet data from an EUI-64 GUA.
    pub use_internet_data: usize,
    /// Exposed-domain counts by party, split by whether the exposing
    /// devices transmit data or only resolve DNS from the address.
    pub data_domains_by_party: PartyCounts,
    /// DNS only domains by party.
    pub dns_only_domains_by_party: PartyCounts,
}

/// Domain counts per party.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PartyCounts {
    /// First-party (device-vendor) domains.
    pub first: usize,
    /// Support-party (cloud/CDN/NTP) domains.
    pub support: usize,
    /// Third-party (analytics/tracking) domains.
    pub third: usize,
}

impl PartyCounts {
    fn add(&mut self, p: Party) {
        match p {
            Party::First => self.first += 1,
            Party::Support => self.support += 1,
            Party::Third => self.third += 1,
        }
    }

    /// Total domains across all parties.
    pub fn total(&self) -> usize {
        self.first + self.support + self.third
    }
}

/// Compute the funnel over an analysis; `vendors` maps device label →
/// manufacturer for party classification.
pub fn funnel(
    analysis: &ExperimentAnalysis,
    macs: &[(String, Mac)],
    vendors: &[(String, String)],
) -> Eui64Funnel {
    let mut f = Eui64Funnel::default();
    let mut data_domains: BTreeSet<(Name, String)> = BTreeSet::new();
    let mut dns_domains: BTreeSet<(Name, String)> = BTreeSet::new();
    for (label, o) in &analysis.devices {
        let Some(mac) = macs.iter().find(|(l, _)| l == label).map(|(_, m)| *m) else {
            continue;
        };
        let vendor = vendors
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        let e = exposure(mac, o);
        if !e.assigned_gua.is_empty() {
            f.assign += 1;
        }
        if e.used {
            f.use_any += 1;
        }
        if e.used_for_dns {
            f.use_dns += 1;
        }
        if e.used_for_data {
            f.use_internet_data += 1;
        }
        if e.used_for_data {
            for d in &e.exposed_domains {
                data_domains.insert((d.clone(), vendor.clone()));
            }
        } else if e.used_for_dns {
            for d in &e.exposed_domains {
                dns_domains.insert((d.clone(), vendor.clone()));
            }
        }
    }
    for (d, vendor) in &data_domains {
        f.data_domains_by_party.add(classify(d, vendor));
    }
    for (d, vendor) in &dns_domains {
        f.dns_only_domains_by_party.add(classify(d, vendor));
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::DeviceObservation;

    fn mac() -> Mac {
        Mac::new(0x02, 0x10, 0x20, 0x30, 0x40, 0x50)
    }

    fn eui_gua() -> std::net::Ipv6Addr {
        mac().slaac_address("2001:db8:10:1::".parse().unwrap())
    }

    #[test]
    fn exposure_funnel_stages() {
        let mut o = DeviceObservation::default();
        // Assigned only.
        o.announced_v6.insert(eui_gua());
        let e = exposure(mac(), &o);
        assert_eq!(e.assigned_gua.len(), 1);
        assert!(e.mac_verified);
        assert!(!e.used && !e.used_for_dns && !e.used_for_data);

        // Used for DNS.
        o.active_v6.insert(eui_gua());
        o.dns_src_v6.insert(eui_gua());
        o.dns_names_from_eui64
            .insert(Name::new("svc.acme.example").unwrap());
        let e = exposure(mac(), &o);
        assert!(e.used && e.used_for_dns && !e.used_for_data);
        assert_eq!(e.exposed_domains.len(), 1);

        // Used for data too.
        o.data_src_v6.insert(eui_gua());
        let e = exposure(mac(), &o);
        assert!(e.used_for_data);
    }

    #[test]
    fn privacy_addresses_do_not_count() {
        let mut o = DeviceObservation::default();
        let priv_gua: std::net::Ipv6Addr = "2001:db8:10:1:1234:aabb:5:6".parse().unwrap();
        o.announced_v6.insert(priv_gua);
        o.active_v6.insert(priv_gua);
        o.data_src_v6.insert(priv_gua);
        let e = exposure(mac(), &o);
        assert!(e.assigned_gua.is_empty());
        assert!(!e.used && !e.used_for_data);
    }

    #[test]
    fn lla_eui64_is_not_a_global_exposure() {
        let mut o = DeviceObservation::default();
        let lla = mac().slaac_address("fe80::".parse().unwrap());
        o.announced_v6.insert(lla);
        o.active_v6.insert(lla);
        let e = exposure(mac(), &o);
        assert!(e.assigned_gua.is_empty(), "LLAs never leave the link");
        assert!(!e.used);
    }

    #[test]
    fn funnel_aggregation_and_party_split() {
        let mut a = ExperimentAnalysis::default();
        let mut o = DeviceObservation::default();
        o.announced_v6.insert(eui_gua());
        o.active_v6.insert(eui_gua());
        o.dns_src_v6.insert(eui_gua());
        o.data_src_v6.insert(eui_gua());
        o.domains_from_eui64
            .insert(Name::new("svc.acme.example").unwrap());
        o.domains_from_eui64
            .insert(Name::new("app-measurement.com").unwrap());
        o.domains_from_eui64
            .insert(Name::new("time.pool-ntp.example").unwrap());
        a.devices.insert("dev".into(), o);
        let f = funnel(
            &a,
            &[("dev".into(), mac())],
            &[("dev".into(), "Acme".into())],
        );
        assert_eq!(f.assign, 1);
        assert_eq!(f.use_any, 1);
        assert_eq!(f.use_dns, 1);
        assert_eq!(f.use_internet_data, 1);
        assert_eq!(
            f.data_domains_by_party,
            PartyCounts {
                first: 1,
                support: 1,
                third: 1
            }
        );
    }
}
