//! Outage reaction analysis: Table 9-style IP-version switching.
//!
//! Table 9 of the paper classifies how dual-stack devices shift between
//! IP versions across network changes. The fault-injection scenarios
//! (an upstream 6in4 tunnel outage, RA suppression, DNS faults) make the
//! same question dynamic: *during* a fault, which devices abandon their
//! IPv6 sessions for IPv4, and do they come back once the fault clears?
//!
//! Devices surface their family switches as an ordered event log; this
//! module folds those logs into a serializable [`OutageReport`] with
//! per-device verdicts and per-category rollups. Everything is
//! `BTreeMap`-keyed integers and strings: serializing the same run twice
//! yields byte-identical JSON, which the `broken-v6` determinism gate
//! relies on.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One v6↔v4 family switch performed by a device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchRecord {
    /// Simulated wall-clock time of the switch, in microseconds.
    pub at_us: u64,
    /// Destination domain whose connection switched.
    pub domain: String,
    /// `true` = switched (back) to IPv6; `false` = fell back to IPv4.
    pub to_v6: bool,
}

/// Table 9-style verdict for one device's reaction to a fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutageClass {
    /// Never switched families during the run.
    Unchanged,
    /// Fell back to IPv4 and returned to IPv6 (every fallback matched by
    /// a recovery).
    FellBackAndRecovered,
    /// Fell back to IPv4 and was still there when the run ended.
    StuckOnV4,
}

impl OutageClass {
    /// Stable label used as a rollup key.
    pub fn label(self) -> &'static str {
        match self {
            OutageClass::Unchanged => "unchanged",
            OutageClass::FellBackAndRecovered => "fell-back-and-recovered",
            OutageClass::StuckOnV4 => "stuck-on-v4",
        }
    }
}

/// One device's switching behaviour over a faulted run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceOutage {
    /// Device category label (Table 3 column).
    pub category: String,
    /// Verdict over the whole run.
    pub class: OutageClass,
    /// Count of v6→v4 fallbacks.
    pub fell_back: u64,
    /// Count of v4→v6 recoveries.
    pub recovered: u64,
    /// Every switch, in chronological order.
    pub switches: Vec<SwitchRecord>,
}

/// The aggregated Table 9-style switching report for one faulted run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageReport {
    /// Per-device behaviour, keyed by device id.
    pub devices: BTreeMap<String, DeviceOutage>,
    /// Devices per verdict label.
    pub by_class: BTreeMap<String, u64>,
    /// Verdict counts per device category: `category → label → count`.
    pub by_category: BTreeMap<String, BTreeMap<String, u64>>,
}

impl OutageReport {
    /// Classify one switch log: no events is [`OutageClass::Unchanged`];
    /// otherwise the device recovered iff every fallback was answered by
    /// a later return to v6.
    pub fn classify(switches: &[SwitchRecord]) -> OutageClass {
        if switches.is_empty() {
            return OutageClass::Unchanged;
        }
        let fell_back = switches.iter().filter(|s| !s.to_v6).count();
        let recovered = switches.iter().filter(|s| s.to_v6).count();
        if recovered >= fell_back {
            OutageClass::FellBackAndRecovered
        } else {
            OutageClass::StuckOnV4
        }
    }

    /// Fold one device's ordered switch log into the report.
    pub fn push_device(&mut self, id: &str, category: &str, switches: Vec<SwitchRecord>) {
        let class = Self::classify(&switches);
        *self.by_class.entry(class.label().to_string()).or_insert(0) += 1;
        *self
            .by_category
            .entry(category.to_string())
            .or_default()
            .entry(class.label().to_string())
            .or_insert(0) += 1;
        self.devices.insert(
            id.to_string(),
            DeviceOutage {
                category: category.to_string(),
                class,
                fell_back: switches.iter().filter(|s| !s.to_v6).count() as u64,
                recovered: switches.iter().filter(|s| s.to_v6).count() as u64,
                switches,
            },
        );
    }

    /// Devices that demonstrably fell back to IPv4 at least once.
    pub fn fell_back_count(&self) -> u64 {
        self.devices.values().filter(|d| d.fell_back > 0).count() as u64
    }

    /// Devices that fell back *and* recovered to IPv6.
    pub fn recovered_count(&self) -> u64 {
        self.devices
            .values()
            .filter(|d| d.class == OutageClass::FellBackAndRecovered)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sw(at_us: u64, to_v6: bool) -> SwitchRecord {
        SwitchRecord {
            at_us,
            domain: "api.vendor.example".into(),
            to_v6,
        }
    }

    #[test]
    fn classification_covers_the_three_verdicts() {
        assert_eq!(OutageReport::classify(&[]), OutageClass::Unchanged);
        assert_eq!(
            OutageReport::classify(&[sw(10, false), sw(20, true)]),
            OutageClass::FellBackAndRecovered
        );
        assert_eq!(
            OutageReport::classify(&[sw(10, false)]),
            OutageClass::StuckOnV4
        );
    }

    #[test]
    fn rollups_count_per_class_and_category() {
        let mut r = OutageReport::default();
        r.push_device("tv", "TV/Ent.", vec![sw(1, false), sw(2, true)]);
        r.push_device("plug", "Home Auto", vec![]);
        r.push_device("cam", "Camera", vec![sw(5, false)]);
        assert_eq!(r.by_class["fell-back-and-recovered"], 1);
        assert_eq!(r.by_class["unchanged"], 1);
        assert_eq!(r.by_class["stuck-on-v4"], 1);
        assert_eq!(r.by_category["TV/Ent."]["fell-back-and-recovered"], 1);
        assert_eq!(r.fell_back_count(), 2);
        assert_eq!(r.recovered_count(), 1);
        assert_eq!(r.devices["tv"].fell_back, 1);
        assert_eq!(r.devices["tv"].recovered, 1);
    }

    #[test]
    fn report_serialization_is_deterministic() {
        let build = || {
            let mut r = OutageReport::default();
            r.push_device("b", "Speaker", vec![sw(3, false), sw(9, true)]);
            r.push_device("a", "Camera", vec![]);
            r
        };
        let x = serde_json::to_string(&build()).unwrap();
        let y = serde_json::to_string(&build()).unwrap();
        assert_eq!(x, y);
    }
}
