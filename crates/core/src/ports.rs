//! Port-scan result types and the v4/v6 exposure diff (§5.4.2).

use serde::Serialize;
use std::collections::BTreeSet;

/// The outcome of probing a single port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PortState {
    /// SYN → SYN/ACK (TCP) or a UDP response.
    Open,
    /// SYN → RST (TCP) or ICMPv6 port unreachable (UDP).
    Closed,
    /// No answer within the timeout.
    Filtered,
}

/// One device's scan results over one address family.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ScanResult {
    /// Open TCP.
    pub open_tcp: BTreeSet<u16>,
    /// Open UDP.
    pub open_udp: BTreeSet<u16>,
}

/// The v4-vs-v6 exposure comparison for one device.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ExposureDiff {
    /// TCP ports reachable over IPv4 only.
    pub tcp_v4_only: BTreeSet<u16>,
    /// TCP ports reachable over IPv6 only — the Samsung Fridge finding.
    pub tcp_v6_only: BTreeSet<u16>,
    /// TCP ports open on both.
    pub tcp_both: BTreeSet<u16>,
    /// UDP IPv4 only.
    pub udp_v4_only: BTreeSet<u16>,
    /// UDP IPv6 only.
    pub udp_v6_only: BTreeSet<u16>,
}

/// Diff two scans of the same device.
pub fn diff(v4: &ScanResult, v6: &ScanResult) -> ExposureDiff {
    ExposureDiff {
        tcp_v4_only: v4.open_tcp.difference(&v6.open_tcp).copied().collect(),
        tcp_v6_only: v6.open_tcp.difference(&v4.open_tcp).copied().collect(),
        tcp_both: v4.open_tcp.intersection(&v6.open_tcp).copied().collect(),
        udp_v4_only: v4.open_udp.difference(&v6.open_udp).copied().collect(),
        udp_v6_only: v6.open_udp.difference(&v4.open_udp).copied().collect(),
    }
}

impl ExposureDiff {
    /// Any service reachable over one family but not the other?
    pub fn is_asymmetric(&self) -> bool {
        !self.tcp_v4_only.is_empty()
            || !self.tcp_v6_only.is_empty()
            || !self.udp_v4_only.is_empty()
            || !self.udp_v6_only.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fridge_style_asymmetry() {
        let v4 = ScanResult {
            open_tcp: [8001, 8080].into(),
            open_udp: BTreeSet::new(),
        };
        let v6 = ScanResult {
            open_tcp: [8001, 8080, 37993, 46525, 46757].into(),
            open_udp: BTreeSet::new(),
        };
        let d = diff(&v4, &v6);
        assert!(d.is_asymmetric());
        assert_eq!(d.tcp_v6_only, [37993, 46525, 46757].into());
        assert!(d.tcp_v4_only.is_empty());
        assert_eq!(d.tcp_both, [8001, 8080].into());
    }

    #[test]
    fn symmetric_device() {
        let scan = ScanResult {
            open_tcp: [443].into(),
            open_udp: [5540].into(),
        };
        let d = diff(&scan, &scan.clone());
        assert!(!d.is_asymmetric());
    }
}
