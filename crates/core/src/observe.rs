//! The single-pass analyzer: one [`DeviceObservation`] per device.
//!
//! This is the measurement core. It attributes every frame by source (or
//! destination) MAC, tracks NDP behaviour, address assignment and usage,
//! DAD compliance, DHCPv4/DHCPv6 exchanges, DNS transactions per
//! transport family, SNI extraction, and data volumes split by family and
//! by local-versus-Internet scope — exactly the observables §5 reports.
//!
//! The state machine is incremental: a [`StreamingAnalyzer`] consumes
//! frames one at a time (`feed`), holding only `O(state)` memory — the
//! per-device observation sets, the pending-DNS map, and the flow table —
//! so the simulator's capture tap can drive it live and the experiment
//! never materializes an `O(frames)` byte buffer. [`analyze`] keeps the
//! classic buffered entry point as a thin wrapper over the same machine.

use crate::flows::FlowTable;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::{IpAddr, Ipv6Addr};
use v6brick_net::dns::{Message, Name, RecordType};
use v6brick_net::ipv6::{AddressKind, Cidr, Ipv6AddrExt};
use v6brick_net::ndp::Repr as Ndp;
use v6brick_net::parse::{self, Net, ParsedPacket, L4};
use v6brick_net::{dhcpv6, icmpv6, tls, Mac};
use v6brick_pcap::{Capture, FrameSink};

/// Everything the pipeline measured about one device.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DeviceObservation {
    /// Did the device emit any NDP traffic (RS/RA/NS/NA)?
    pub ndp_traffic: bool,
    /// Addresses the device *assigned*: DAD targets and NA announcements.
    pub announced_v6: BTreeSet<Ipv6Addr>,
    /// Addresses that actually sourced UDP/TCP traffic.
    pub active_v6: BTreeSet<Ipv6Addr>,
    /// Addresses for which a DAD probe (NS from `::`) was observed.
    pub dad_probed: BTreeSet<Ipv6Addr>,
    /// Completed a DHCPv4 exchange (request seen).
    pub dhcpv4_used: bool,
    /// Sent a DHCPv6 Information-Request (stateless).
    pub dhcpv6_stateless: bool,
    /// Sent a DHCPv6 Solicit/Request (stateful).
    pub dhcpv6_stateful: bool,
    /// Addresses received in DHCPv6 IA_NA replies.
    pub dhcpv6_addrs: BTreeSet<Ipv6Addr>,

    /// Distinct names in AAAA queries, by transport family.
    pub aaaa_q_v6: BTreeSet<Name>,
    /// AAAA query IPv4.
    pub aaaa_q_v4: BTreeSet<Name>,
    /// Names queried for A over IPv6 transport but never for AAAA
    /// anywhere (the "A-only in IPv6" behaviour) are derived later;
    /// these are the raw A query names per transport.
    pub a_q_v6: BTreeSet<Name>,
    /// A query IPv4.
    pub a_q_v4: BTreeSet<Name>,
    /// HTTPS/SVCB resource-record queries (HTTP/3 probing).
    pub https_q: BTreeSet<Name>,
    /// Svcb query.
    pub svcb_q: BTreeSet<Name>,
    /// Names with positive AAAA answers, by transport family.
    pub aaaa_pos_v6: BTreeSet<Name>,
    /// AAAA positive IPv4.
    pub aaaa_pos_v4: BTreeSet<Name>,
    /// Names whose AAAA query got a negative answer.
    pub aaaa_neg: BTreeSet<Name>,
    /// IPv6 source addresses used for DNS queries.
    pub dns_src_v6: BTreeSet<Ipv6Addr>,

    /// L4 payload bytes exchanged with Internet hosts, per family
    /// (both directions).
    pub v6_internet_bytes: u64,
    /// IPv4 internet bytes.
    pub v4_internet_bytes: u64,
    /// IPv6 bytes exchanged with on-link / non-global peers.
    pub v6_local_bytes: u64,
    /// Distinct IPv6 Internet peers.
    pub v6_internet_peers: BTreeSet<Ipv6Addr>,
    /// IPv6 source addresses that carried Internet data.
    pub data_src_v6: BTreeSet<Ipv6Addr>,
    /// IPv6 source addresses that carried NTP.
    pub ntp_src_v6: BTreeSet<Ipv6Addr>,

    /// Destination domains reached over each family (DNS answer mapping
    /// plus SNI).
    pub domains_v6: BTreeSet<Name>,
    /// Domains IPv4.
    pub domains_v4: BTreeSet<Name>,
    /// Domains seen in TLS SNI.
    pub sni_domains: BTreeSet<Name>,
    /// Domains contacted from an EUI-64 source (DNS or data), for the
    /// Fig. 5 exposure analysis.
    pub domains_from_eui64: BTreeSet<Name>,
    /// Names queried (DNS) from an EUI-64 source.
    pub dns_names_from_eui64: BTreeSet<Name>,
}

impl DeviceObservation {
    /// Any IPv6 address assigned (announced or actively used)?
    pub fn has_v6_addr(&self) -> bool {
        !self.active_v6.is_empty() || self.announced_v6.iter().any(|a| !a.is_unspecified())
    }

    /// Active addresses of a given kind.
    pub fn active_of(&self, kind: AddressKind) -> impl Iterator<Item = &Ipv6Addr> {
        self.active_v6.iter().filter(move |a| a.kind() == kind)
    }

    /// Does any active address classify as `kind`?
    pub fn has_active(&self, kind: AddressKind) -> bool {
        self.active_of(kind).next().is_some()
    }

    /// Every assigned-or-active address.
    pub fn all_addrs(&self) -> BTreeSet<Ipv6Addr> {
        self.announced_v6.union(&self.active_v6).copied().collect()
    }

    /// Active EUI-64 addresses (any scope).
    pub fn active_eui64(&self) -> impl Iterator<Item = &Ipv6Addr> {
        self.active_v6.iter().filter(|a| a.is_eui64())
    }

    /// Did the device send AAAA queries over IPv6 transport?
    pub fn dns_over_v6(&self) -> bool {
        !self.aaaa_q_v6.is_empty() || !self.a_q_v6.is_empty()
    }

    /// All AAAA query names, either transport.
    pub fn aaaa_q_any(&self) -> BTreeSet<Name> {
        self.aaaa_q_v6.union(&self.aaaa_q_v4).cloned().collect()
    }

    /// Names queried A-only over IPv6: asked for A over v6 but never for
    /// AAAA on any transport.
    pub fn a_only_v6_names(&self) -> BTreeSet<Name> {
        let all_aaaa = self.aaaa_q_any();
        self.a_q_v6
            .iter()
            .filter(|n| !all_aaaa.contains(n))
            .cloned()
            .collect()
    }

    /// Positive AAAA answers on either transport.
    pub fn aaaa_pos_any(&self) -> BTreeSet<Name> {
        self.aaaa_pos_v6.union(&self.aaaa_pos_v4).cloned().collect()
    }

    /// Transmitted Internet data over IPv6?
    pub fn v6_internet_data(&self) -> bool {
        self.v6_internet_bytes > 0
    }

    /// Fraction of Internet volume carried over IPv6 (dual-stack; Fig. 4).
    pub fn v6_volume_fraction(&self) -> f64 {
        let total = self.v6_internet_bytes + self.v4_internet_bytes;
        if total == 0 {
            return 0.0;
        }
        self.v6_internet_bytes as f64 / total as f64
    }
}

/// The result of analyzing one experiment capture.
#[derive(Debug, Default, Serialize)]
pub struct ExperimentAnalysis {
    /// Per-device observations, keyed by the label supplied with the MAC.
    pub devices: BTreeMap<String, DeviceObservation>,
    /// DNS answer map harvested from the whole capture: IP → name.
    pub ip_to_name: BTreeMap<IpAddr, Name>,
    /// Frames that could not be attributed to a known device.
    pub unattributed_frames: u64,
    /// Total frames examined.
    pub frames: u64,
    /// The full 5-tuple flow table (not serialized; used by volume
    /// cross-checks and benchmarks).
    #[serde(skip)]
    pub flows: crate::flows::FlowTable,
}

impl ExperimentAnalysis {
    /// Observation by device label.
    pub fn device(&self, label: &str) -> Option<&DeviceObservation> {
        self.devices.get(label)
    }

    /// Count devices satisfying a predicate.
    pub fn count(&self, pred: impl Fn(&DeviceObservation) -> bool) -> usize {
        self.devices.values().filter(|o| pred(o)).count()
    }
}

/// The incremental analysis state machine.
///
/// Construct with the device MAC → label map and the LAN prefix, [`feed`]
/// every tapped frame in capture order, then [`finish`] to obtain the
/// [`ExperimentAnalysis`]. Feeding frame-by-frame from the live tap is
/// byte-equivalent (via serde) to buffering the whole capture and calling
/// [`analyze`] — the equivalence tests pin this.
///
/// [`feed`]: StreamingAnalyzer::feed
/// [`finish`]: StreamingAnalyzer::finish
#[derive(Debug)]
pub struct StreamingAnalyzer {
    devices: Vec<(Mac, String)>,
    lan_prefix: Cidr,
    mac_index: HashMap<Mac, usize>,
    obs: Vec<DeviceObservation>,
    analysis: ExperimentAnalysis,
    /// Pending DNS queries: (client mac, txid) -> (name, rtype, over_v6).
    pending: HashMap<(Mac, u16), (Name, RecordType, bool)>,
    flows: FlowTable,
    /// Every frame handed to `feed`, including unparseable ones
    /// (`analysis.frames` counts only frames that parsed).
    fed: u64,
}

impl StreamingAnalyzer {
    /// A fresh analyzer.
    ///
    /// `lan_prefix` is the routed /64: IPv6 peers inside it (or
    /// non-global) count as local, everything else as Internet. `devices`
    /// maps MAC → label; frames from other MACs (router, phones) only
    /// contribute to the global DNS answer map.
    pub fn new(devices: &[(Mac, String)], lan_prefix: Cidr) -> StreamingAnalyzer {
        StreamingAnalyzer {
            devices: devices.to_vec(),
            lan_prefix,
            mac_index: devices
                .iter()
                .enumerate()
                .map(|(i, (m, _))| (*m, i))
                .collect(),
            obs: vec![DeviceObservation::default(); devices.len()],
            analysis: ExperimentAnalysis::default(),
            pending: HashMap::new(),
            flows: FlowTable::new(),
            fed: 0,
        }
    }

    /// Frames handed to [`StreamingAnalyzer::feed`] so far (parseable or
    /// not) — the equivalent of the buffered pipeline's capture length.
    pub fn frames_fed(&self) -> u64 {
        self.fed
    }

    /// Consume one raw frame. Unparseable frames count toward
    /// [`StreamingAnalyzer::frames_fed`] but contribute nothing else,
    /// mirroring `Capture::parsed`'s lenient skip.
    pub fn feed(&mut self, timestamp_us: u64, frame: &[u8]) {
        self.fed += 1;
        if let Ok(p) = parse::parse_lenient(frame) {
            self.feed_parsed(timestamp_us, &p);
        }
    }

    /// Consume one already-parsed frame.
    pub fn feed_parsed(&mut self, ts: u64, p: &ParsedPacket) {
        let analysis = &mut self.analysis;
        let obs = &mut self.obs;
        let pending = &mut self.pending;
        let lan_prefix = self.lan_prefix;
        analysis.frames += 1;
        let from = self.mac_index.get(&p.eth.src).copied();
        let to = self.mac_index.get(&p.eth.dst).copied();
        if from.is_none() && to.is_none() {
            analysis.unattributed_frames += 1;
        }
        self.flows.record(ts, p);

        // --- NDP / ICMPv6, attributed to the sender ---
        if let (Net::Ipv6(ip), L4::Icmpv6(msg)) = (&p.net, &p.l4) {
            if let Some(i) = from {
                let o = &mut obs[i];
                match msg {
                    icmpv6::Repr::Ndp(ndp) => {
                        o.ndp_traffic = true;
                        match ndp {
                            Ndp::NeighborSolicit { target, .. } if ip.src.is_unspecified() => {
                                // DAD probe.
                                o.dad_probed.insert(*target);
                                o.announced_v6.insert(*target);
                            }
                            Ndp::NeighborAdvert { target, .. } => {
                                o.announced_v6.insert(*target);
                            }
                            _ => {}
                        }
                    }
                    icmpv6::Repr::EchoRequest { .. }
                        // Outbound connectivity probes *use* their source
                        // address (this is how probe-only EUI-64 GUAs show
                        // up as active — Fig. 5's "misc" uses).
                        if !ip.src.is_unspecified() && !ip.src.is_multicast() => {
                            o.active_v6.insert(ip.src);
                        }
                    _ => {}
                }
            }
            return;
        }

        // --- DHCPv4 (UDP 67/68) ---
        if let (
            Net::Ipv4(_),
            L4::Udp {
                src_port: 68,
                dst_port: 67,
                payload,
            },
        ) = (&p.net, &p.l4)
        {
            if let Some(i) = from {
                if let Ok(msg) = v6brick_net::dhcpv4::Repr::parse_bytes(payload) {
                    if msg.message_type == v6brick_net::dhcpv4::MessageType::Request {
                        obs[i].dhcpv4_used = true;
                    }
                }
            }
            return;
        }

        // --- DHCPv6 (UDP 546/547) ---
        if let (
            Net::Ipv6(_),
            L4::Udp {
                src_port,
                dst_port,
                payload,
            },
        ) = (&p.net, &p.l4)
        {
            if *dst_port == 547 && *src_port == 546 {
                if let (Some(i), Ok(msg)) = (from, dhcpv6::Repr::parse_bytes(payload)) {
                    match msg.message_type {
                        dhcpv6::MessageType::InformationRequest => obs[i].dhcpv6_stateless = true,
                        dhcpv6::MessageType::Solicit | dhcpv6::MessageType::Request => {
                            obs[i].dhcpv6_stateful = true
                        }
                        _ => {}
                    }
                }
                return;
            }
            if *dst_port == 546 && *src_port == 547 {
                if let (Some(i), Ok(msg)) = (to, dhcpv6::Repr::parse_bytes(payload)) {
                    if let Some(ia) = msg.ia_na {
                        for a in ia.addresses {
                            obs[i].dhcpv6_addrs.insert(a.addr);
                            obs[i].announced_v6.insert(a.addr);
                        }
                    }
                }
                return;
            }
        }

        // --- DNS (UDP 53) ---
        if let L4::Udp {
            src_port,
            dst_port,
            payload,
        } = &p.l4
        {
            if *dst_port == 53 || *src_port == 53 {
                let over_v6 = p.is_ipv6();
                if *dst_port == 53 {
                    // Query from a device.
                    if let (Some(i), Ok(msg)) = (from, Message::parse_bytes(payload)) {
                        if let Some(q) = msg.question() {
                            let o = &mut obs[i];
                            match q.rtype {
                                RecordType::A => {
                                    if over_v6 {
                                        o.a_q_v6.insert(q.name.clone());
                                    } else {
                                        o.a_q_v4.insert(q.name.clone());
                                    }
                                }
                                RecordType::Aaaa => {
                                    if over_v6 {
                                        o.aaaa_q_v6.insert(q.name.clone());
                                    } else {
                                        o.aaaa_q_v4.insert(q.name.clone());
                                    }
                                }
                                RecordType::Https => {
                                    o.https_q.insert(q.name.clone());
                                }
                                RecordType::Svcb => {
                                    o.svcb_q.insert(q.name.clone());
                                }
                                _ => {}
                            }
                            pending.insert((p.eth.src, msg.id), (q.name.clone(), q.rtype, over_v6));
                            if over_v6 {
                                if let Some(IpAddr::V6(src)) = p.src_ip() {
                                    o.dns_src_v6.insert(src);
                                    o.active_v6.insert(src);
                                    if src.is_eui64() {
                                        o.dns_names_from_eui64.insert(q.name.clone());
                                        o.domains_from_eui64.insert(q.name.clone());
                                    }
                                }
                            }
                        }
                    }
                } else {
                    // Response toward a device.
                    if let Ok(msg) = Message::parse_bytes(payload) {
                        // Harvest the global answer map regardless of
                        // destination.
                        for r in &msg.answers {
                            match r.rdata {
                                v6brick_net::dns::Rdata::A(a) => {
                                    analysis.ip_to_name.insert(IpAddr::V4(a), r.name.clone());
                                }
                                v6brick_net::dns::Rdata::Aaaa(a) => {
                                    analysis.ip_to_name.insert(IpAddr::V6(a), r.name.clone());
                                }
                                _ => {}
                            }
                        }
                        if let Some(i) = to {
                            if let Some((name, rtype, _)) = pending.remove(&(p.eth.dst, msg.id)) {
                                if rtype == RecordType::Aaaa {
                                    let o = &mut obs[i];
                                    if msg.aaaa_answers().next().is_some() {
                                        if over_v6 {
                                            o.aaaa_pos_v6.insert(name);
                                        } else {
                                            o.aaaa_pos_v4.insert(name);
                                        }
                                    } else {
                                        o.aaaa_neg.insert(name);
                                    }
                                }
                            }
                        }
                    }
                }
                return;
            }
        }

        // --- Data traffic (TCP / non-service UDP) ---
        let (src_ip, dst_ip) = match (p.src_ip(), p.dst_ip()) {
            (Some(s), Some(d)) => (s, d),
            _ => return,
        };
        let payload_len = match &p.l4 {
            L4::Tcp { payload_len, .. } => *payload_len as u64,
            L4::Udp { payload, .. } => payload.len() as u64,
            _ => return,
        };
        let is_ntp = p.involves_port(123);
        // Attribute to the device end (sender preferred).
        let (idx, dev_ip, peer_ip, outbound) = match (from, to) {
            (Some(i), _) => (i, src_ip, dst_ip, true),
            (_, Some(i)) => (i, dst_ip, src_ip, false),
            _ => return,
        };
        let o = &mut obs[idx];
        match (dev_ip, peer_ip) {
            (IpAddr::V6(dev6), IpAddr::V6(peer6)) => {
                if outbound {
                    o.active_v6.insert(dev6);
                }
                let local = peer6.is_multicast()
                    || !peer6.is_global_unicast()
                    || lan_prefix.contains(peer6);
                if local {
                    o.v6_local_bytes += payload_len;
                } else {
                    o.v6_internet_bytes += payload_len;
                    o.v6_internet_peers.insert(peer6);
                    if outbound {
                        if is_ntp {
                            o.ntp_src_v6.insert(dev6);
                        } else {
                            o.data_src_v6.insert(dev6);
                        }
                    }
                    if let Some(name) = analysis.ip_to_name.get(&IpAddr::V6(peer6)) {
                        o.domains_v6.insert(name.clone());
                        if outbound && dev6.is_eui64() && !is_ntp {
                            o.domains_from_eui64.insert(name.clone());
                        }
                    }
                }
            }
            (IpAddr::V4(_), IpAddr::V4(peer4)) => {
                let local = peer4.is_private() || peer4.is_broadcast() || peer4.is_multicast();
                if !local {
                    o.v4_internet_bytes += payload_len;
                    if let Some(name) = analysis.ip_to_name.get(&IpAddr::V4(peer4)) {
                        o.domains_v4.insert(name.clone());
                    }
                }
            }
            _ => {}
        }
        // SNI extraction from client-to-server TLS.
        if outbound {
            if let L4::Tcp { payload, .. } = &p.l4 {
                if let Ok(sni) = tls::parse_sni(payload) {
                    let o = &mut obs[idx];
                    o.sni_domains.insert(sni.clone());
                    match peer_ip {
                        IpAddr::V6(peer6)
                            if peer6.is_global_unicast() && !lan_prefix.contains(peer6) =>
                        {
                            o.domains_v6.insert(sni.clone());
                            if let IpAddr::V6(dev6) = dev_ip {
                                if dev6.is_eui64() {
                                    o.domains_from_eui64.insert(sni);
                                }
                            }
                        }
                        IpAddr::V4(peer4) if !peer4.is_private() => {
                            o.domains_v4.insert(sni);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Finalize: key the per-device observations by label and hand the
    /// flow table over. Consumes the analyzer — the state *is* the result.
    pub fn finish(self) -> ExperimentAnalysis {
        let mut analysis = self.analysis;
        analysis.devices = self
            .devices
            .iter()
            .zip(self.obs)
            .map(|((_, label), o)| (label.clone(), o))
            .collect();
        analysis.flows = self.flows;
        analysis
    }
}

impl FrameSink for StreamingAnalyzer {
    fn on_frame(&mut self, timestamp_us: u64, frame: &[u8]) {
        self.feed(timestamp_us, frame);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Walk a buffered capture once and produce per-device observations.
///
/// A thin wrapper over [`StreamingAnalyzer`] for captures that already
/// sit in memory (pcap files, tests); the live path feeds the analyzer
/// straight from the simulator's capture tap instead. See
/// [`StreamingAnalyzer::new`] for the `devices` / `lan_prefix` contract.
pub fn analyze(
    capture: &Capture,
    devices: &[(Mac, String)],
    lan_prefix: Cidr,
) -> ExperimentAnalysis {
    let mut analyzer = StreamingAnalyzer::new(devices, lan_prefix);
    for (ts, p) in capture.parsed() {
        analyzer.feed_parsed(ts, &p);
    }
    analyzer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6brick_net::ethernet::EtherType;
    use v6brick_net::ipv4::Protocol;

    use v6brick_net::udp::PseudoHeader;
    use v6brick_net::{ethernet, ipv6, udp};

    fn lan() -> Cidr {
        Cidr::new("2001:db8:10:1::".parse().unwrap(), 64)
    }

    fn dev_mac() -> Mac {
        Mac::new(2, 0, 0, 0, 0, 0x55)
    }

    fn labels() -> Vec<(Mac, String)> {
        vec![(dev_mac(), "dev".into())]
    }

    fn eth(src: Mac, dst: Mac, payload: &[u8]) -> Vec<u8> {
        ethernet::Repr {
            src,
            dst,
            ethertype: EtherType::Ipv6,
        }
        .build(payload)
    }

    fn v6_udp(src: Ipv6Addr, dst: Ipv6Addr, sp: u16, dp: u16, body: Vec<u8>) -> Vec<u8> {
        let u = udp::Repr {
            src_port: sp,
            dst_port: dp,
            payload: body,
        }
        .build(PseudoHeader::V6 { src, dst });
        ipv6::Repr {
            src,
            dst,
            next_header: Protocol::Udp,
            hop_limit: 64,
            payload_len: u.len(),
        }
        .build(&u)
    }

    #[test]
    fn dad_and_announce_are_assigned_not_active() {
        let target: Ipv6Addr = "fe80::c2ff:4dff:fe2e:1a2b".parse().unwrap();
        let ns = icmpv6::Repr::Ndp(Ndp::NeighborSolicit {
            target,
            options: vec![],
        });
        let dst = target.solicited_node();
        let body = ns.build(Ipv6Addr::UNSPECIFIED, dst);
        let ip = ipv6::Repr {
            src: Ipv6Addr::UNSPECIFIED,
            dst,
            next_header: Protocol::Icmpv6,
            hop_limit: 255,
            payload_len: body.len(),
        }
        .build(&body);
        let mut cap = Capture::new();
        cap.push(0, &eth(dev_mac(), Mac::for_ipv6_multicast(dst), &ip));
        let a = analyze(&cap, &labels(), lan());
        let o = a.device("dev").unwrap();
        assert!(o.ndp_traffic);
        assert!(o.announced_v6.contains(&target));
        assert!(o.dad_probed.contains(&target));
        assert!(o.active_v6.is_empty());
        assert!(o.has_v6_addr());
    }

    #[test]
    fn dns_query_and_positive_answer_tracked_per_transport() {
        // An EUI-64 GUA source exercises the exposure path.
        let dev: Ipv6Addr = {
            let m = dev_mac();
            m.slaac_address("2001:db8:10:1::".parse().unwrap())
        };
        let resolver: Ipv6Addr = "2001:4860:4860::8888".parse().unwrap();
        let name = Name::new("svc0.acme.example").unwrap();
        let q = Message::query(77, name.clone(), RecordType::Aaaa);
        let mut cap = Capture::new();
        cap.push(
            0,
            &eth(
                dev_mac(),
                Mac::new(2, 0, 0, 0, 0, 0xfe),
                &v6_udp(dev, resolver, 40001, 53, q.build()),
            ),
        );
        let mut resp = q.response(v6brick_net::dns::Rcode::NoError);
        resp.answers.push(v6brick_net::dns::Record::new(
            name.clone(),
            300,
            v6brick_net::dns::Rdata::Aaaa("2001:db8:ffff::5".parse().unwrap()),
        ));
        cap.push(
            10,
            &eth(
                Mac::new(2, 0, 0, 0, 0, 0xfe),
                dev_mac(),
                &v6_udp(resolver, dev, 53, 40001, resp.build()),
            ),
        );
        let a = analyze(&cap, &labels(), lan());
        let o = a.device("dev").unwrap();
        assert!(o.aaaa_q_v6.contains(&name));
        assert!(o.aaaa_pos_v6.contains(&name));
        assert!(o.dns_over_v6());
        assert!(o.dns_src_v6.contains(&dev));
        assert!(o.dns_names_from_eui64.contains(&name));
        assert_eq!(
            a.ip_to_name
                .get(&IpAddr::V6("2001:db8:ffff::5".parse().unwrap())),
            Some(&name)
        );
    }

    #[test]
    fn negative_aaaa_tracked() {
        let dev: Ipv6Addr = "2001:db8:10:1:1234:aabb:1:2".parse().unwrap();
        let resolver: Ipv6Addr = "2001:4860:4860::8888".parse().unwrap();
        let name = Name::new("api.amazon.com").unwrap();
        let q = Message::query(5, name.clone(), RecordType::Aaaa);
        let mut cap = Capture::new();
        cap.push(
            0,
            &eth(
                dev_mac(),
                Mac::new(2, 0, 0, 0, 0, 0xfe),
                &v6_udp(dev, resolver, 40001, 53, q.build()),
            ),
        );
        let resp = q.response(v6brick_net::dns::Rcode::NoError);
        cap.push(
            10,
            &eth(
                Mac::new(2, 0, 0, 0, 0, 0xfe),
                dev_mac(),
                &v6_udp(resolver, dev, 53, 40001, resp.build()),
            ),
        );
        let a = analyze(&cap, &labels(), lan());
        let o = a.device("dev").unwrap();
        assert!(o.aaaa_neg.contains(&name));
        assert!(o.aaaa_pos_any().is_empty());
    }

    #[test]
    fn internet_vs_local_volume_split() {
        let dev: Ipv6Addr = "2001:db8:10:1::10".parse().unwrap();
        let internet: Ipv6Addr = "2001:db8:ffff::99".parse().unwrap();
        let local_peer: Ipv6Addr = "fd12::9".parse().unwrap();
        let mut cap = Capture::new();
        cap.push(
            0,
            &eth(
                dev_mac(),
                Mac::new(2, 0, 0, 0, 0, 0xfe),
                &v6_udp(dev, internet, 5000, 9999, vec![0; 100]),
            ),
        );
        cap.push(
            1,
            &eth(
                dev_mac(),
                Mac::new(2, 0, 0, 0, 0, 0xfe),
                &v6_udp(dev, local_peer, 5353, 5353, vec![0; 40]),
            ),
        );
        let a = analyze(&cap, &labels(), lan());
        let o = a.device("dev").unwrap();
        assert_eq!(o.v6_internet_bytes, 100);
        assert_eq!(o.v6_local_bytes, 40);
        assert!(o.v6_internet_data());
        assert!(o.v6_internet_peers.contains(&internet));
        assert!(o.data_src_v6.contains(&dev));
        assert!(o.active_v6.contains(&dev));
    }

    #[test]
    fn a_only_names_derived() {
        let mut o = DeviceObservation::default();
        let a_only = Name::new("a-only.example").unwrap();
        let both = Name::new("both.example").unwrap();
        o.a_q_v6.insert(a_only.clone());
        o.a_q_v6.insert(both.clone());
        o.aaaa_q_v4.insert(both.clone());
        let set = o.a_only_v6_names();
        assert!(set.contains(&a_only));
        assert!(!set.contains(&both));
    }

    #[test]
    fn unattributed_frames_counted() {
        let stranger = Mac::new(2, 9, 9, 9, 9, 9);
        let mut cap = Capture::new();
        cap.push(
            0,
            &eth(
                stranger,
                Mac::new(2, 8, 8, 8, 8, 8),
                &v6_udp(
                    "fe80::9".parse().unwrap(),
                    "fe80::8".parse().unwrap(),
                    1,
                    2,
                    vec![],
                ),
            ),
        );
        let a = analyze(&cap, &labels(), lan());
        assert_eq!(a.unattributed_frames, 1);
        assert_eq!(a.frames, 1);
    }
}
