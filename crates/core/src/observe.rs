//! The single-pass analyzer facade: one [`DeviceObservation`] per device.
//!
//! This is the measurement core's classic entry point. It attributes
//! every frame by source (or destination) MAC, tracks NDP behaviour,
//! address assignment and usage, DAD compliance, DHCPv4/DHCPv6 exchanges,
//! DNS transactions per transport family, SNI extraction, and data
//! volumes split by family and by local-versus-Internet scope — exactly
//! the observables §5 reports.
//!
//! Since the pass decomposition, the actual analysis lives in
//! [`crate::analysis`]: one [`AnalyzerPass`](crate::analysis::AnalyzerPass)
//! per concern, composed by a [`PassSet`]. [`StreamingAnalyzer`] is a
//! thin wrapper over the *full* set, byte-equivalent (via serde) to the
//! pre-decomposition monolith — the streaming-equivalence and property
//! tests pin this. Callers that need only a subset of the observables
//! (the fleet population path) construct a narrower set with
//! [`StreamingAnalyzer::with_passes`].
//!
//! The state machine is incremental: frames are consumed one at a time
//! (`feed`), holding only `O(state)` memory — the per-device observation
//! sets, the pending-DNS map, and the flow table — so the simulator's
//! capture tap can drive it live and the experiment never materializes an
//! `O(frames)` byte buffer. [`analyze`] keeps the classic buffered entry
//! point as a thin wrapper over the same machine.

use crate::analysis::{PassId, PassMetrics, PassSet};
use v6brick_net::ipv6::Cidr;
use v6brick_net::parse::ParsedPacket;
use v6brick_net::Mac;
use v6brick_pcap::{Capture, FrameSink};

pub use crate::analysis::{DeviceObservation, ExperimentAnalysis};

/// The incremental analysis state machine.
///
/// Construct with the device MAC → label map and the LAN prefix, [`feed`]
/// every tapped frame in capture order, then [`finish`] to obtain the
/// [`ExperimentAnalysis`]. Feeding frame-by-frame from the live tap is
/// byte-equivalent (via serde) to buffering the whole capture and calling
/// [`analyze`] — the equivalence tests pin this.
///
/// [`feed`]: StreamingAnalyzer::feed
/// [`finish`]: StreamingAnalyzer::finish
#[derive(Debug)]
pub struct StreamingAnalyzer {
    set: PassSet,
}

impl StreamingAnalyzer {
    /// A fresh analyzer running every pass.
    ///
    /// `lan_prefix` is the routed /64: IPv6 peers inside it (or
    /// non-global) count as local, everything else as Internet. `devices`
    /// maps MAC → label; frames from other MACs (router, phones) only
    /// contribute to the global DNS answer map.
    pub fn new(devices: &[(Mac, String)], lan_prefix: Cidr) -> StreamingAnalyzer {
        StreamingAnalyzer {
            set: PassSet::full(devices, lan_prefix),
        }
    }

    /// An analyzer running only the given passes (plus their
    /// dependencies). The fields those passes own come out byte-identical
    /// to a full run; everything else stays at its default.
    pub fn with_passes(
        devices: &[(Mac, String)],
        lan_prefix: Cidr,
        passes: &[PassId],
    ) -> StreamingAnalyzer {
        StreamingAnalyzer {
            set: PassSet::with_passes(devices, lan_prefix, passes),
        }
    }

    /// The passes this analyzer runs, in execution order.
    pub fn enabled_passes(&self) -> Vec<PassId> {
        self.set.enabled()
    }

    /// Bind an IPv6 address to the device owning `mac`, for mesh homes
    /// where a border router erased the leaf's link-layer identity (see
    /// [`PassSet::add_mesh_binding`]). Returns `false` when `mac` is not
    /// a registered device.
    pub fn add_mesh_binding(&mut self, addr: std::net::Ipv6Addr, mac: Mac) -> bool {
        self.set.add_mesh_binding(addr, mac)
    }

    /// Number of mesh address bindings installed.
    pub fn mesh_binding_count(&self) -> usize {
        self.set.mesh_binding_count()
    }

    /// Collect per-pass wall-clock timings from now on (off by default).
    pub fn enable_metrics(&mut self) {
        self.set.enable_metrics();
    }

    /// Per-pass execution counters, in execution order.
    pub fn pass_metrics(&self) -> Vec<(PassId, PassMetrics)> {
        self.set.metrics()
    }

    /// Frames handed to [`StreamingAnalyzer::feed`] so far (parseable or
    /// not) — the equivalent of the buffered pipeline's capture length.
    pub fn frames_fed(&self) -> u64 {
        self.set.frames_fed()
    }

    /// Frames that failed lenient parsing so far.
    pub fn parse_errors(&self) -> u64 {
        self.set.parse_errors()
    }

    /// Consume one raw frame. Unparseable frames count toward
    /// [`StreamingAnalyzer::frames_fed`] and
    /// [`StreamingAnalyzer::parse_errors`] but contribute nothing else.
    pub fn feed(&mut self, timestamp_us: u64, frame: &[u8]) {
        self.set.feed(timestamp_us, frame);
    }

    /// Consume one already-parsed frame.
    pub fn feed_parsed(&mut self, ts: u64, p: &ParsedPacket) {
        self.set.feed_parsed(ts, p);
    }

    /// Finalize: key the per-device observations by label and hand the
    /// flow table over. Consumes the analyzer — the state *is* the result.
    pub fn finish(self) -> ExperimentAnalysis {
        self.set.finish()
    }
}

impl FrameSink for StreamingAnalyzer {
    fn on_frame(&mut self, timestamp_us: u64, frame: &[u8]) {
        self.feed(timestamp_us, frame);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Walk a buffered capture once and produce per-device observations.
///
/// A thin wrapper over [`StreamingAnalyzer`] for captures that already
/// sit in memory (pcap files, tests); the live path feeds the analyzer
/// straight from the simulator's capture tap instead. Feeds the *raw*
/// frames so unparseable ones land in
/// [`ExperimentAnalysis::parse_errors`], exactly as on the live path. See
/// [`StreamingAnalyzer::new`] for the `devices` / `lan_prefix` contract.
pub fn analyze(
    capture: &Capture,
    devices: &[(Mac, String)],
    lan_prefix: Cidr,
) -> ExperimentAnalysis {
    let mut analyzer = StreamingAnalyzer::new(devices, lan_prefix);
    for pkt in capture.iter() {
        analyzer.feed(pkt.timestamp_us, &pkt.data);
    }
    analyzer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv6Addr};
    use v6brick_net::dns::{Message, Name, RecordType};
    use v6brick_net::ethernet::EtherType;
    use v6brick_net::icmpv6;
    use v6brick_net::ipv4::Protocol;
    use v6brick_net::ipv6::Ipv6AddrExt;
    use v6brick_net::ndp::Repr as Ndp;

    use v6brick_net::udp::PseudoHeader;
    use v6brick_net::{ethernet, ipv6, udp};

    fn lan() -> Cidr {
        Cidr::new("2001:db8:10:1::".parse().unwrap(), 64)
    }

    fn dev_mac() -> Mac {
        Mac::new(2, 0, 0, 0, 0, 0x55)
    }

    fn labels() -> Vec<(Mac, String)> {
        vec![(dev_mac(), "dev".into())]
    }

    fn eth(src: Mac, dst: Mac, payload: &[u8]) -> Vec<u8> {
        ethernet::Repr {
            src,
            dst,
            ethertype: EtherType::Ipv6,
        }
        .build(payload)
    }

    fn v6_udp(src: Ipv6Addr, dst: Ipv6Addr, sp: u16, dp: u16, body: Vec<u8>) -> Vec<u8> {
        let u = udp::Repr {
            src_port: sp,
            dst_port: dp,
            payload: body,
        }
        .build(PseudoHeader::V6 { src, dst });
        ipv6::Repr {
            src,
            dst,
            next_header: Protocol::Udp,
            hop_limit: 64,
            payload_len: u.len(),
        }
        .build(&u)
    }

    #[test]
    fn dad_and_announce_are_assigned_not_active() {
        let target: Ipv6Addr = "fe80::c2ff:4dff:fe2e:1a2b".parse().unwrap();
        let ns = icmpv6::Repr::Ndp(Ndp::NeighborSolicit {
            target,
            options: vec![],
        });
        let dst = target.solicited_node();
        let body = ns.build(Ipv6Addr::UNSPECIFIED, dst);
        let ip = ipv6::Repr {
            src: Ipv6Addr::UNSPECIFIED,
            dst,
            next_header: Protocol::Icmpv6,
            hop_limit: 255,
            payload_len: body.len(),
        }
        .build(&body);
        let mut cap = Capture::new();
        cap.push(0, &eth(dev_mac(), Mac::for_ipv6_multicast(dst), &ip));
        let a = analyze(&cap, &labels(), lan());
        let o = a.device("dev").unwrap();
        assert!(o.ndp_traffic);
        assert!(o.announced_v6.contains(&target));
        assert!(o.dad_probed.contains(&target));
        assert!(o.active_v6.is_empty());
        assert!(o.has_v6_addr());
    }

    #[test]
    fn dns_query_and_positive_answer_tracked_per_transport() {
        // An EUI-64 GUA source exercises the exposure path.
        let dev: Ipv6Addr = {
            let m = dev_mac();
            m.slaac_address("2001:db8:10:1::".parse().unwrap())
        };
        let resolver: Ipv6Addr = "2001:4860:4860::8888".parse().unwrap();
        let name = Name::new("svc0.acme.example").unwrap();
        let q = Message::query(77, name.clone(), RecordType::Aaaa);
        let mut cap = Capture::new();
        cap.push(
            0,
            &eth(
                dev_mac(),
                Mac::new(2, 0, 0, 0, 0, 0xfe),
                &v6_udp(dev, resolver, 40001, 53, q.build()),
            ),
        );
        let mut resp = q.response(v6brick_net::dns::Rcode::NoError);
        resp.answers.push(v6brick_net::dns::Record::new(
            name.clone(),
            300,
            v6brick_net::dns::Rdata::Aaaa("2001:db8:ffff::5".parse().unwrap()),
        ));
        cap.push(
            10,
            &eth(
                Mac::new(2, 0, 0, 0, 0, 0xfe),
                dev_mac(),
                &v6_udp(resolver, dev, 53, 40001, resp.build()),
            ),
        );
        let a = analyze(&cap, &labels(), lan());
        let o = a.device("dev").unwrap();
        assert!(o.aaaa_q_v6.contains(&name));
        assert!(o.aaaa_pos_v6.contains(&name));
        assert!(o.dns_over_v6());
        assert!(o.dns_src_v6.contains(&dev));
        assert!(o.dns_names_from_eui64.contains(&name));
        assert_eq!(
            a.ip_to_name
                .get(&IpAddr::V6("2001:db8:ffff::5".parse().unwrap())),
            Some(&name)
        );
    }

    #[test]
    fn negative_aaaa_tracked() {
        let dev: Ipv6Addr = "2001:db8:10:1:1234:aabb:1:2".parse().unwrap();
        let resolver: Ipv6Addr = "2001:4860:4860::8888".parse().unwrap();
        let name = Name::new("api.amazon.com").unwrap();
        let q = Message::query(5, name.clone(), RecordType::Aaaa);
        let mut cap = Capture::new();
        cap.push(
            0,
            &eth(
                dev_mac(),
                Mac::new(2, 0, 0, 0, 0, 0xfe),
                &v6_udp(dev, resolver, 40001, 53, q.build()),
            ),
        );
        let resp = q.response(v6brick_net::dns::Rcode::NoError);
        cap.push(
            10,
            &eth(
                Mac::new(2, 0, 0, 0, 0, 0xfe),
                dev_mac(),
                &v6_udp(resolver, dev, 53, 40001, resp.build()),
            ),
        );
        let a = analyze(&cap, &labels(), lan());
        let o = a.device("dev").unwrap();
        assert!(o.aaaa_neg.contains(&name));
        assert!(o.aaaa_pos_any().is_empty());
    }

    #[test]
    fn internet_vs_local_volume_split() {
        let dev: Ipv6Addr = "2001:db8:10:1::10".parse().unwrap();
        let internet: Ipv6Addr = "2001:db8:ffff::99".parse().unwrap();
        let local_peer: Ipv6Addr = "fd12::9".parse().unwrap();
        let mut cap = Capture::new();
        cap.push(
            0,
            &eth(
                dev_mac(),
                Mac::new(2, 0, 0, 0, 0, 0xfe),
                &v6_udp(dev, internet, 5000, 9999, vec![0; 100]),
            ),
        );
        cap.push(
            1,
            &eth(
                dev_mac(),
                Mac::new(2, 0, 0, 0, 0, 0xfe),
                &v6_udp(dev, local_peer, 5353, 5353, vec![0; 40]),
            ),
        );
        let a = analyze(&cap, &labels(), lan());
        let o = a.device("dev").unwrap();
        assert_eq!(o.v6_internet_bytes, 100);
        assert_eq!(o.v6_local_bytes, 40);
        assert!(o.v6_internet_data());
        assert!(o.v6_internet_peers.contains(&internet));
        assert!(o.data_src_v6.contains(&dev));
        assert!(o.active_v6.contains(&dev));
    }

    #[test]
    fn a_only_names_derived() {
        let mut o = DeviceObservation::default();
        let a_only = Name::new("a-only.example").unwrap();
        let both = Name::new("both.example").unwrap();
        o.a_q_v6.insert(a_only.clone());
        o.a_q_v6.insert(both.clone());
        o.aaaa_q_v4.insert(both.clone());
        let set = o.a_only_v6_names();
        assert!(set.contains(&a_only));
        assert!(!set.contains(&both));
    }

    #[test]
    fn unattributed_frames_counted() {
        let stranger = Mac::new(2, 9, 9, 9, 9, 9);
        let mut cap = Capture::new();
        cap.push(
            0,
            &eth(
                stranger,
                Mac::new(2, 8, 8, 8, 8, 8),
                &v6_udp(
                    "fe80::9".parse().unwrap(),
                    "fe80::8".parse().unwrap(),
                    1,
                    2,
                    vec![],
                ),
            ),
        );
        let a = analyze(&cap, &labels(), lan());
        assert_eq!(a.unattributed_frames, 1);
        assert_eq!(a.frames, 1);
        assert_eq!(a.parse_errors, 0);
    }

    #[test]
    fn parse_errors_counted_and_contribute_nothing_else() {
        let mut cap = Capture::new();
        // A frame too short for even an Ethernet header.
        cap.push(0, &[0xde, 0xad]);
        cap.push(
            1,
            &eth(
                dev_mac(),
                Mac::new(2, 0, 0, 0, 0, 0xfe),
                &v6_udp(
                    "2001:db8:10:1::10".parse().unwrap(),
                    "2001:db8:ffff::99".parse().unwrap(),
                    5000,
                    9999,
                    vec![0; 10],
                ),
            ),
        );
        let a = analyze(&cap, &labels(), lan());
        assert_eq!(a.parse_errors, 1);
        assert_eq!(a.frames, 1, "only the parseable frame is analyzed");
        assert_eq!(a.unattributed_frames, 0);
    }

    #[test]
    fn mesh_bindings_attribute_br_forwarded_frames() {
        let dev: Ipv6Addr = "2001:db8:10:1::10".parse().unwrap();
        let internet: Ipv6Addr = "2001:db8:ffff::99".parse().unwrap();
        // A border router's MAC: not in the device list.
        let br = Mac::new(2, 0x52, 0x54, 0, 0xb0, 1);
        let frame = eth(
            br,
            Mac::new(2, 0, 0, 0, 0, 0xfe),
            &v6_udp(dev, internet, 5000, 9999, vec![0; 100]),
        );
        // Without bindings the forwarded frame can't be attributed…
        let mut plain = StreamingAnalyzer::new(&labels(), lan());
        plain.feed(0, &frame);
        let plain = plain.finish();
        assert_eq!(plain.unattributed_frames, 1);
        assert_eq!(plain.device("dev").unwrap().v6_internet_bytes, 0);
        // …with one it credits the leaf, not the border router.
        let mut mesh = StreamingAnalyzer::new(&labels(), lan());
        assert!(mesh.add_mesh_binding(dev, dev_mac()));
        assert!(!mesh.add_mesh_binding(dev, br), "unknown MAC binds nothing");
        assert_eq!(mesh.mesh_binding_count(), 1);
        mesh.feed(0, &frame);
        let mesh = mesh.finish();
        assert_eq!(mesh.unattributed_frames, 0);
        let o = mesh.device("dev").unwrap();
        assert_eq!(o.v6_internet_bytes, 100);
        assert!(o.active_v6.contains(&dev));
    }

    #[test]
    fn pass_subset_populates_only_owned_fields() {
        use crate::analysis::PassId;
        let dev: Ipv6Addr = "2001:db8:10:1::10".parse().unwrap();
        let internet: Ipv6Addr = "2001:db8:ffff::99".parse().unwrap();
        let frame = eth(
            dev_mac(),
            Mac::new(2, 0, 0, 0, 0, 0xfe),
            &v6_udp(dev, internet, 5000, 9999, vec![0; 100]),
        );
        let mut full = StreamingAnalyzer::new(&labels(), lan());
        full.feed(0, &frame);
        let full = full.finish();

        let mut sub = StreamingAnalyzer::with_passes(&labels(), lan(), &[PassId::Traffic]);
        assert_eq!(
            sub.enabled_passes(),
            vec![PassId::Dns, PassId::Traffic],
            "the dns dependency is pulled in"
        );
        sub.feed(0, &frame);
        let sub = sub.finish();

        let (f, s) = (full.device("dev").unwrap(), sub.device("dev").unwrap());
        assert_eq!(s.v6_internet_bytes, f.v6_internet_bytes);
        assert_eq!(s.v6_internet_peers, f.v6_internet_peers);
        assert_eq!(s.data_src_v6, f.data_src_v6);
        assert!(f.active_v6.contains(&dev), "full run sees the active addr");
        assert!(
            s.active_v6.is_empty(),
            "addressing disabled: its fields stay default"
        );
    }
}
