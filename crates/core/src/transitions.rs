//! Per-domain IP-version transition analysis (Table 9 / RQ3).
//!
//! Given the per-device domain sets from two experiments (a single-stack
//! one and the dual-stack one), classify every *common* domain by what
//! happened to its transport family when the other family became
//! available: stayed, partially extended, or fully switched.

use crate::observe::ExperimentAnalysis;
use serde::Serialize;
use std::collections::BTreeSet;
use v6brick_net::dns::Name;

/// How one domain moved between families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Transition {
    /// Same family only, before and after.
    Unchanged,
    /// Used both families in dual-stack (partial extension).
    PartialExtension,
    /// Entirely switched to the other family in dual-stack.
    FullSwitch,
}

/// Transition counts between a single-stack and a dual-stack experiment.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TransitionReport {
    /// Domains observed in both experiments.
    pub common: usize,
    /// Domains that kept their original family exclusively.
    pub unchanged: usize,
    /// Domains that used both families in dual-stack.
    pub partial_extension: usize,
    /// Domains that moved entirely to the other family.
    pub full_switch: usize,
    /// The switching domains, for inspection.
    pub partial_domains: BTreeSet<Name>,
    /// The fully-switched domains.
    pub switched_domains: BTreeSet<Name>,
}

/// Union of a device set's domains per family across an analysis.
pub fn domains_by_family(a: &ExperimentAnalysis) -> (BTreeSet<Name>, BTreeSet<Name>) {
    let mut v4 = BTreeSet::new();
    let mut v6 = BTreeSet::new();
    for o in a.devices.values() {
        v4.extend(o.domains_v4.iter().cloned());
        v6.extend(o.domains_v6.iter().cloned());
    }
    (v4, v6)
}

/// Classify IPv4→IPv6 movement: domains contacted over v4 in the
/// IPv4-only experiment, against their family use in dual-stack.
pub fn v4_to_v6(v4_only: &ExperimentAnalysis, dual: &ExperimentAnalysis) -> TransitionReport {
    let (v4_base, _) = domains_by_family(v4_only);
    let (dual_v4, dual_v6) = domains_by_family(dual);
    classify(&v4_base, &dual_v4, &dual_v6)
}

/// Classify IPv6→IPv4 movement: domains contacted over v6 in the
/// IPv6-only experiment, against their family use in dual-stack.
pub fn v6_to_v4(v6_only: &ExperimentAnalysis, dual: &ExperimentAnalysis) -> TransitionReport {
    let (_, v6_base) = domains_by_family(v6_only);
    let (dual_v4, dual_v6) = domains_by_family(dual);
    classify(&v6_base, &dual_v6, &dual_v4)
}

/// Core classification: for each domain in `base` (family F in the
/// single-stack run) that also appears in dual-stack, check whether
/// dual-stack used F only (`Unchanged`), both (`PartialExtension`), or
/// only the other family (`FullSwitch`).
fn classify(
    base: &BTreeSet<Name>,
    dual_same: &BTreeSet<Name>,
    dual_other: &BTreeSet<Name>,
) -> TransitionReport {
    let mut r = TransitionReport::default();
    for d in base {
        let same = dual_same.contains(d);
        let other = dual_other.contains(d);
        if !same && !other {
            continue; // not observed in dual-stack at all
        }
        r.common += 1;
        match (same, other) {
            (true, false) => r.unchanged += 1,
            (true, true) => {
                r.partial_extension += 1;
                r.partial_domains.insert(d.clone());
            }
            (false, true) => {
                r.full_switch += 1;
                r.switched_domains.insert(d.clone());
            }
            (false, false) => unreachable!(),
        }
    }
    r
}

/// The Table 9 bottom row: domains contacted only over IPv4 in dual-stack
/// although an AAAA record exists (per the active-DNS readiness set).
pub fn v4_only_with_aaaa(dual: &ExperimentAnalysis, aaaa_ready: &BTreeSet<Name>) -> BTreeSet<Name> {
    let (dual_v4, dual_v6) = domains_by_family(dual);
    dual_v4
        .difference(&dual_v6)
        .filter(|d| aaaa_ready.contains(*d))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::DeviceObservation;

    fn n(s: &str) -> Name {
        Name::new(s).unwrap()
    }

    fn analysis_with(v4: &[&str], v6: &[&str]) -> ExperimentAnalysis {
        let o = DeviceObservation {
            domains_v4: v4.iter().map(|s| n(s)).collect(),
            domains_v6: v6.iter().map(|s| n(s)).collect(),
            ..DeviceObservation::default()
        };
        let mut a = ExperimentAnalysis::default();
        a.devices.insert("d".into(), o);
        a
    }

    #[test]
    fn v4_to_v6_classification() {
        let v4_only = analysis_with(
            &[
                "stay.example",
                "ext.example",
                "switch.example",
                "gone.example",
            ],
            &[],
        );
        let dual = analysis_with(
            &["stay.example", "ext.example"],
            &["ext.example", "switch.example"],
        );
        let r = v4_to_v6(&v4_only, &dual);
        assert_eq!(r.common, 3); // gone.example not seen in dual
        assert_eq!(r.unchanged, 1);
        assert_eq!(r.partial_extension, 1);
        assert_eq!(r.full_switch, 1);
        assert!(r.partial_domains.contains(&n("ext.example")));
        assert!(r.switched_domains.contains(&n("switch.example")));
    }

    #[test]
    fn v6_to_v4_classification() {
        let v6_only = analysis_with(&[], &["revert.example", "keep.example"]);
        let dual = analysis_with(&["revert.example"], &["keep.example"]);
        let r = v6_to_v4(&v6_only, &dual);
        assert_eq!(r.common, 2);
        assert_eq!(r.full_switch, 1);
        assert_eq!(r.unchanged, 1);
    }

    #[test]
    fn v4_only_with_aaaa_detection() {
        let dual = analysis_with(&["ready.example", "notready.example"], &["used6.example"]);
        let ready: BTreeSet<Name> = [n("ready.example"), n("used6.example")].into();
        let set = v4_only_with_aaaa(&dual, &ready);
        assert!(set.contains(&n("ready.example")));
        assert!(!set.contains(&n("notready.example")));
        assert!(!set.contains(&n("used6.example")));
    }
}
