//! Internet-side exposure: scanner hitlist generation and the mergeable
//! per-campaign [`ExposureReport`].
//!
//! The paper measures IPv6 service readiness from *inside* the home
//! (Fig. 5's LAN port scan). The related work looks at the same devices
//! from the Internet: "Unconsidered Installations" discovers IoT
//! deployments in the v6 Internet via hitlists built from structured
//! interface identifiers, and "Where Have All the Firewalls Gone?" shows
//! routed residential /64s often lack the default-deny posture NAT gave
//! IPv4. This module supplies the vantage-independent pieces of that
//! methodology:
//!
//! * [`hitlist`] — candidate GUAs derived from observed EUI-64/SLAAC
//!   addressing, the way real scanners extrapolate from passive
//!   observations (a MAC seen once pins the OUI; adjacent NIC suffixes
//!   from the same production batch are worth probing too);
//! * [`dense_sweep`] — the brute-force low-IID baseline, which a 2^64
//!   interface-identifier space makes structurally hopeless for SLAAC
//!   addresses;
//! * [`ExposureReport`] — a byte-deterministic aggregate of what a WAN
//!   scanner reached, broken down by device category x firewall policy x
//!   addressing mode, merging hierarchically like
//!   [`PopulationReport`](crate::population::PopulationReport).

use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv6Addr;
use v6brick_net::ipv6::Ipv6AddrExt;
use v6brick_net::Mac;

/// Candidate GUAs for an Internet-side scan of `prefix`, extrapolated
/// from passively `observed` addresses (any scope — an EUI-64 link-local
/// leaks the same MAC as a GUA).
///
/// Only EUI-64-format observations contribute: each one pins a MAC, and
/// every NIC suffix within `neighborhood` of it (same OUI, wrapping in
/// the 24-bit suffix space) is re-derived into a SLAAC address under
/// `prefix`. Privacy-extension and DHCPv6 addresses carry no structure
/// worth extrapolating and are skipped — so a hitlist never contains a
/// temporary address, and always contains the true SLAAC GUA of any
/// device whose EUI-64 identifier was observed.
///
/// Returned sorted and deduplicated.
pub fn hitlist(prefix: Ipv6Addr, observed: &[Ipv6Addr], neighborhood: u16) -> Vec<Ipv6Addr> {
    let mut out = BTreeSet::new();
    for a in observed {
        let Some(mac) = a.eui64_mac() else {
            continue;
        };
        let oui = mac.oui();
        let suffix = u32::from_be_bytes([0, mac.0[3], mac.0[4], mac.0[5]]);
        for delta in -i64::from(neighborhood)..=i64::from(neighborhood) {
            let s = (i64::from(suffix) + delta).rem_euclid(1 << 24) as u32;
            let b = s.to_be_bytes();
            let m = Mac::new(oui[0], oui[1], oui[2], b[1], b[2], b[3]);
            out.insert(m.slaac_address(prefix));
        }
    }
    out.into_iter().collect()
}

/// The dense-sweep baseline: the first `budget` interface identifiers of
/// `prefix` (`::1` up), the way a v4-style address-space walk would start.
/// It finds low-IID router/DHCP-style addresses and structurally misses
/// both SLAAC identifiers (2^64 space) and high-IID DHCPv6 pools.
pub fn dense_sweep(prefix: Ipv6Addr, budget: u32) -> Vec<Ipv6Addr> {
    (1..=u128::from(budget))
        .map(|i| Ipv6Addr::from(u128::from(prefix) | i))
        .collect()
}

/// Addressing-mode label of a global address as a scanner would classify
/// it from the address alone.
pub fn addressing_mode(a: Ipv6Addr) -> &'static str {
    if a.is_eui64() {
        "eui64"
    } else {
        "opaque"
    }
}

/// One cell of the exposure matrix: scan targets sharing a device
/// category, firewall policy, and addressing mode.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ExposureCell {
    /// Global addresses probed.
    pub targets: u64,
    /// Targets that answered the liveness probe from the WAN.
    pub responsive: u64,
    /// Open TCP (target, port) pairs reachable from the Internet.
    pub open_tcp: u64,
    /// Open UDP (target, port) pairs reachable from the Internet.
    pub open_udp: u64,
}

impl ExposureCell {
    /// Ports reachable from the Internet, either transport.
    pub fn open_total(&self) -> u64 {
        self.open_tcp + self.open_udp
    }

    fn merge(&mut self, other: &ExposureCell) {
        self.targets += other.targets;
        self.responsive += other.responsive;
        self.open_tcp += other.open_tcp;
        self.open_udp += other.open_udp;
    }
}

/// Hitlist quality against ground truth, per firewall policy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct HitlistStats {
    /// Ground-truth global addresses assigned across the scanned homes.
    pub truth_addrs: u64,
    /// EUI-64 hitlist candidates generated.
    pub candidates: u64,
    /// Ground-truth addresses the hitlist covered.
    pub covered: u64,
    /// Hitlist candidates that answered the liveness probe.
    pub responsive: u64,
    /// Dense-sweep candidates probed.
    pub dense_candidates: u64,
    /// Ground-truth addresses the dense sweep covered.
    pub dense_covered: u64,
    /// Dense-sweep candidates that answered the liveness probe.
    pub dense_responsive: u64,
}

impl HitlistStats {
    fn merge(&mut self, other: &HitlistStats) {
        self.truth_addrs += other.truth_addrs;
        self.candidates += other.candidates;
        self.covered += other.covered;
        self.responsive += other.responsive;
        self.dense_candidates += other.dense_candidates;
        self.dense_covered += other.dense_covered;
        self.dense_responsive += other.dense_responsive;
    }
}

/// The WAN scan outcome for one target address under one policy.
#[derive(Debug, Clone)]
pub struct TargetOutcome {
    /// Firewall policy label the home ran (`default-deny`/`pinholed`/
    /// `open`).
    pub policy: String,
    /// Device category label (the paper's Table 3 grouping).
    pub category: String,
    /// Addressing mode of the probed address (`eui64`/`privacy`/`dhcpv6`).
    pub addressing: String,
    /// Did the target answer the liveness probe?
    pub responsive: bool,
    /// Open TCP ports found reachable on it.
    pub open_tcp: u64,
    /// Open UDP ports found reachable on it.
    pub open_udp: u64,
}

/// Everything one home's WAN scan campaign produced (all policies).
#[derive(Debug, Clone, Default)]
pub struct HomeScanOutcome {
    /// IoT devices in the home.
    pub devices: u64,
    /// Per-target, per-policy scan results.
    pub targets: Vec<TargetOutcome>,
    /// Per-policy hitlist quality.
    pub hitlist: Vec<(String, HitlistStats)>,
}

/// Mergeable, byte-deterministic aggregate of a WAN scan campaign.
///
/// Counters only, in `BTreeMap`s keyed by stable labels: serialization is
/// byte-identical for a given campaign regardless of worker count, merge
/// order, or shard boundaries (the same discipline as
/// [`PopulationReport`](crate::population::PopulationReport), pinned by
/// the `wanscan_determinism` integration test).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExposureReport {
    /// Campaign seed — merging reports from different campaigns is a bug.
    pub campaign_seed: u64,
    /// Homes scanned.
    pub homes: u64,
    /// IoT devices across those homes.
    pub devices: u64,
    /// category → firewall policy → addressing mode → cell.
    pub cells: BTreeMap<String, BTreeMap<String, BTreeMap<String, ExposureCell>>>,
    /// firewall policy → hitlist quality vs ground truth.
    pub hitlist: BTreeMap<String, HitlistStats>,
    /// Homes whose scan worker crashed (not serialized: crash isolation
    /// reporting, like `PopulationReport::failures`).
    #[serde(skip)]
    pub failures: Vec<(u64, String)>,
}

impl ExposureReport {
    /// An empty report for a campaign.
    pub fn new(campaign_seed: u64) -> ExposureReport {
        ExposureReport {
            campaign_seed,
            homes: 0,
            devices: 0,
            cells: BTreeMap::new(),
            hitlist: BTreeMap::new(),
            failures: Vec::new(),
        }
    }

    /// Fold one home's scan outcome in.
    pub fn absorb_home(&mut self, outcome: &HomeScanOutcome) {
        self.homes += 1;
        self.devices += outcome.devices;
        for t in &outcome.targets {
            let cell = self
                .cells
                .entry(t.category.clone())
                .or_default()
                .entry(t.policy.clone())
                .or_default()
                .entry(t.addressing.clone())
                .or_default();
            cell.targets += 1;
            cell.responsive += u64::from(t.responsive);
            cell.open_tcp += t.open_tcp;
            cell.open_udp += t.open_udp;
        }
        for (policy, hs) in &outcome.hitlist {
            self.hitlist.entry(policy.clone()).or_default().merge(hs);
        }
    }

    /// Record a home whose scan worker crashed.
    pub fn absorb_failure(&mut self, home_index: u64, panic_message: String) {
        self.failures.push((home_index, panic_message));
    }

    /// Merge another shard of the same campaign (associative and
    /// commutative, like `PopulationReport::merge`).
    pub fn merge(&mut self, other: &ExposureReport) {
        assert_eq!(
            self.campaign_seed, other.campaign_seed,
            "merging exposure reports from different campaigns"
        );
        self.homes += other.homes;
        self.devices += other.devices;
        for (cat, by_policy) in &other.cells {
            let mine = self.cells.entry(cat.clone()).or_default();
            for (policy, by_mode) in by_policy {
                let mine = mine.entry(policy.clone()).or_default();
                for (mode, cell) in by_mode {
                    mine.entry(mode.clone()).or_default().merge(cell);
                }
            }
        }
        for (policy, hs) in &other.hitlist {
            self.hitlist.entry(policy.clone()).or_default().merge(hs);
        }
        self.failures.extend(other.failures.iter().cloned());
    }

    /// Open ports reachable under `policy` in `category`, summed over
    /// addressing modes.
    pub fn open_ports(&self, category: &str, policy: &str) -> u64 {
        self.cells
            .get(category)
            .and_then(|p| p.get(policy))
            .map(|modes| modes.values().map(ExposureCell::open_total).sum())
            .unwrap_or(0)
    }

    /// Check the structural guarantee of the firewall-policy lattice: for
    /// every device category, `open` reaches at least as many ports as
    /// `pinholed`, which reaches at least as many as `default-deny`.
    /// Returns a violation description per offending category.
    pub fn monotonic_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for cat in self.cells.keys() {
            let deny = self.open_ports(cat, "default-deny");
            let pin = self.open_ports(cat, "pinholed");
            let open = self.open_ports(cat, "open");
            if !(open >= pin && pin >= deny) {
                v.push(format!(
                    "{cat}: open={open} pinholed={pin} default-deny={deny}"
                ));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> Mac {
        Mac::new(0xc0, 0xff, 0x4d, 0x2e, 0x1a, 0x2b)
    }

    fn prefix() -> Ipv6Addr {
        "2001:db8:10:1::".parse().unwrap()
    }

    #[test]
    fn hitlist_rederives_gua_from_any_eui64_observation() {
        let gua = mac().slaac_address(prefix());
        // Observing the GUA itself, or only the EUI-64 LLA, both pin the
        // MAC and therefore the GUA.
        let lla = mac().slaac_address("fe80::".parse().unwrap());
        for obs in [gua, lla] {
            let h = hitlist(prefix(), &[obs], 2);
            assert!(h.contains(&gua), "observation {obs} must cover {gua}");
            assert_eq!(h.len(), 5, "window of 2 yields 5 candidates");
        }
    }

    #[test]
    fn hitlist_skips_unstructured_addresses() {
        let privacy: Ipv6Addr = "2001:db8:10:1:7c11:aabb:1234:5678".parse().unwrap();
        let dhcp: Ipv6Addr = "2001:db8:10:1::d000".parse().unwrap();
        assert!(hitlist(prefix(), &[privacy, dhcp], 8).is_empty());
    }

    #[test]
    fn hitlist_neighborhood_wraps_within_oui() {
        let low = Mac::new(0xc0, 0xff, 0x4d, 0, 0, 0);
        let h = hitlist(prefix(), &[low.slaac_address(prefix())], 1);
        let wrapped = Mac::new(0xc0, 0xff, 0x4d, 0xff, 0xff, 0xff);
        assert!(h.contains(&wrapped.slaac_address(prefix())));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn dense_sweep_misses_slaac_and_dhcpv6_pool() {
        let sweep = dense_sweep(prefix(), 1024);
        assert_eq!(sweep.len(), 1024);
        assert_eq!(sweep[0], "2001:db8:10:1::1".parse::<Ipv6Addr>().unwrap());
        assert!(!sweep.contains(&mac().slaac_address(prefix())));
        assert!(!sweep.contains(&"2001:db8:10:1::d000".parse().unwrap()));
    }

    fn outcome(devices: u64, policy: &str, open_tcp: u64) -> HomeScanOutcome {
        HomeScanOutcome {
            devices,
            targets: vec![TargetOutcome {
                policy: policy.into(),
                category: "Camera".into(),
                addressing: "eui64".into(),
                responsive: open_tcp > 0,
                open_tcp,
                open_udp: 0,
            }],
            hitlist: vec![(
                policy.into(),
                HitlistStats {
                    truth_addrs: devices,
                    candidates: devices * 3,
                    covered: devices,
                    responsive: devices,
                    dense_candidates: 16,
                    dense_covered: 0,
                    dense_responsive: 0,
                },
            )],
        }
    }

    #[test]
    fn merge_equals_sequential_absorb() {
        let outcomes = [
            outcome(3, "open", 5),
            outcome(2, "pinholed", 2),
            outcome(4, "open", 1),
        ];
        let mut seq = ExposureReport::new(9);
        for o in &outcomes {
            seq.absorb_home(o);
        }
        let mut left = ExposureReport::new(9);
        left.absorb_home(&outcomes[0]);
        let mut right = ExposureReport::new(9);
        right.absorb_home(&outcomes[1]);
        right.absorb_home(&outcomes[2]);
        left.merge(&right);
        assert_eq!(left, seq);
        assert_eq!(
            serde_json::to_string(&left).unwrap(),
            serde_json::to_string(&seq).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "different campaigns")]
    fn merge_rejects_foreign_campaign() {
        let mut a = ExposureReport::new(1);
        a.merge(&ExposureReport::new(2));
    }

    #[test]
    fn monotonicity_check_flags_inversions() {
        let mut r = ExposureReport::new(1);
        r.absorb_home(&outcome(1, "open", 3));
        r.absorb_home(&outcome(1, "pinholed", 1));
        r.absorb_home(&outcome(1, "default-deny", 0));
        assert!(r.monotonic_violations().is_empty());
        r.absorb_home(&outcome(1, "default-deny", 9));
        let v = r.monotonic_violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("Camera:"));
    }
}
