//! Network-facing reader fuzz: the pcap/pcapng readers and the
//! incremental [`StreamDecoder`] now sit behind `v6brickd`'s upload
//! path, where remote clients control every byte. Mirroring
//! `crates/sim/tests/router_fuzz.rs`, these properties pin that hostile
//! input — pure garbage, truncations, bit flips, mixed-endian
//! multi-section files, adversarial chunkings — always yields a typed
//! [`PcapError`], never a panic, and that streaming decode is exactly
//! equivalent to batch decode on valid input.

use proptest::prelude::*;
use v6brick_pcap::format::PcapError;
use v6brick_pcap::stream::StreamDecoder;
use v6brick_pcap::{format, pcapng, Capture};

fn arb_capture() -> impl Strategy<Value = Capture> {
    proptest::collection::vec(
        (
            0u64..10_000_000_000,
            proptest::collection::vec(any::<u8>(), 0..200),
        ),
        0..24,
    )
    .prop_map(|mut frames| {
        frames.sort_by_key(|(ts, _)| *ts);
        let mut c = Capture::new();
        for (ts, data) in frames {
            c.push(ts, &data);
        }
        c
    })
}

/// Encode `c` in one of the wire formats the upload path accepts.
fn encode(c: &Capture, ng: bool) -> Vec<u8> {
    if ng {
        pcapng::to_bytes(c)
    } else {
        format::to_bytes(c)
    }
}

/// Drive a fresh decoder over `bytes` split at `cuts`, collecting frames.
fn stream_decode(bytes: &[u8], chunk_sizes: &[usize]) -> Result<Vec<(u64, Vec<u8>)>, PcapError> {
    let mut frames = Vec::new();
    let mut d = StreamDecoder::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < bytes.len() {
        let n = chunk_sizes
            .get(i % chunk_sizes.len().max(1))
            .copied()
            .unwrap_or(17)
            .clamp(1, bytes.len() - pos);
        d.feed(&bytes[pos..pos + n], &mut |ts, f: &[u8]| {
            frames.push((ts, f.to_vec()))
        })?;
        pos += n;
        i += 1;
    }
    d.finish()?;
    Ok(frames)
}

/// A multi-section pcapng stream with per-section byte order.
fn arb_multi_section() -> impl Strategy<Value = (Vec<u8>, usize)> {
    proptest::collection::vec((arb_capture(), any::<bool>()), 1..4).prop_map(|sections| {
        let mut bytes = Vec::new();
        let mut total = 0usize;
        for (c, big_endian) in &sections {
            // The crate writer emits little-endian; synthesize the
            // big-endian variant by byte-swapping each block's framing
            // and body words. Easier: write LE, then for BE sections
            // rebuild by hand — but the reader already has unit tests
            // for that; here we exercise *multi-section concatenation*
            // with the writer's LE sections plus truncation/garbage, so
            // only honor `big_endian` as "also append an empty section".
            bytes.extend_from_slice(&pcapng::to_bytes(c));
            if *big_endian {
                bytes.extend_from_slice(&pcapng::to_bytes(&Capture::new()));
            }
            total += c.len();
        }
        (bytes, total)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pure garbage never panics any reader and never reports success
    /// with phantom frames.
    #[test]
    fn garbage_is_typed_everywhere(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = format::from_bytes(&bytes);
        let _ = pcapng::from_bytes(&bytes);
        let mut d = StreamDecoder::new();
        let mut n = 0u64;
        let fed = d.feed(&bytes, &mut |_, _| n += 1);
        if fed.is_ok() {
            // Whatever was accepted so far must be internally counted.
            prop_assert_eq!(d.frames(), n);
        }
    }

    /// Every truncation point of a valid stream yields Ok (clean empty
    /// prefix) or a typed error — never a panic — for batch and
    /// streaming decode alike, in both formats.
    #[test]
    fn truncation_is_typed(c in arb_capture(), ng in any::<bool>(), cut in any::<usize>()) {
        let bytes = encode(&c, ng);
        let cut = cut % (bytes.len() + 1);
        let prefix = &bytes[..cut];
        if ng {
            let _ = pcapng::from_bytes(prefix);
        } else {
            let _ = format::from_bytes(prefix);
        }
        let _ = stream_decode(prefix, &[13]);
    }

    /// Any single-byte corruption is survived without panic by all
    /// three decode paths.
    #[test]
    fn corruption_is_typed(
        c in arb_capture(),
        ng in any::<bool>(),
        flip in any::<(usize, u8)>(),
    ) {
        let mut bytes = encode(&c, ng);
        if !bytes.is_empty() {
            let idx = flip.0 % bytes.len();
            bytes[idx] ^= flip.1.max(1); // guarantee a real flip
        }
        if ng {
            let _ = pcapng::from_bytes(&bytes);
        } else {
            let _ = format::from_bytes(&bytes);
        }
        let _ = stream_decode(&bytes, &[7, 31]);
    }

    /// Streaming decode under ANY chunking equals batch decode: same
    /// frames, same timestamps, same order. This is the invariant that
    /// lets `v6brickd` analyze uploads chunk-by-chunk and still match
    /// the offline pipeline byte-for-byte.
    #[test]
    fn chunking_invariance(
        c in arb_capture(),
        ng in any::<bool>(),
        chunks in proptest::collection::vec(1usize..97, 1..8),
    ) {
        let bytes = encode(&c, ng);
        let streamed = stream_decode(&bytes, &chunks).unwrap();
        let batch: Vec<(u64, Vec<u8>)> = if ng {
            pcapng::from_bytes(&bytes).unwrap()
        } else {
            format::from_bytes(&bytes).unwrap()
        }
        .iter()
        .map(|p| (p.timestamp_us, p.data.to_vec()))
        .collect();
        prop_assert_eq!(streamed, batch);
    }

    /// Concatenated pcapng sections (including empty ones) decode to
    /// the sum of their frames, batch and streamed, at any chunking.
    #[test]
    fn multi_section_streams_decode(
        (bytes, total) in arb_multi_section(),
        chunks in proptest::collection::vec(1usize..64, 1..6),
    ) {
        let batch = pcapng::from_bytes(&bytes).unwrap();
        prop_assert_eq!(batch.len(), total);
        let streamed = stream_decode(&bytes, &chunks).unwrap();
        prop_assert_eq!(streamed.len(), total);
    }

    /// A decoder that errored refuses all further input (sticky
    /// poisoning): an upload handler can rely on the first typed error
    /// being final.
    #[test]
    fn errors_are_sticky(c in arb_capture(), ng in any::<bool>(), cut in 1usize..24) {
        let bytes = encode(&c, ng);
        let cut = bytes.len().saturating_sub(cut).max(1);
        let mut d = StreamDecoder::new();
        let mut sink = |_: u64, _: &[u8]| {};
        let first = d.feed(&bytes[..cut], &mut sink).and_then(|_| {
            // Simulate end-of-stream by probing finish on a clone of
            // state: feeding garbage after a clean prefix must error.
            d.feed(&[0xFFu8; 3], &mut sink)
        });
        if first.is_err() {
            prop_assert!(d.feed(&bytes[cut..], &mut sink).is_err());
        }
    }
}
