//! Property tests: pcap serialization is lossless and robust.

use proptest::prelude::*;
use v6brick_pcap::{format, Capture};

fn arb_capture() -> impl Strategy<Value = Capture> {
    proptest::collection::vec(
        (
            0u64..10_000_000_000,
            proptest::collection::vec(any::<u8>(), 0..256),
        ),
        0..40,
    )
    .prop_map(|mut frames| {
        frames.sort_by_key(|(ts, _)| *ts);
        let mut c = Capture::new();
        for (ts, data) in frames {
            c.push(ts, &data);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_is_lossless(c in arb_capture()) {
        let bytes = format::to_bytes(&c);
        let back = format::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn file_size_is_exact(c in arb_capture()) {
        // Global header 24 + 16 per record + payload bytes.
        let bytes = format::to_bytes(&c);
        let expected = 24 + c.len() * 16 + c.total_bytes() as usize;
        prop_assert_eq!(bytes.len(), expected);
    }

    #[test]
    fn truncation_never_panics(c in arb_capture(), cut in any::<usize>()) {
        let bytes = format::to_bytes(&c);
        let cut = cut % (bytes.len() + 1);
        let _ = format::from_bytes(&bytes[..cut]);
    }

    #[test]
    fn corruption_never_panics(c in arb_capture(), flip in any::<(usize, u8)>()) {
        let mut bytes = format::to_bytes(&c);
        if !bytes.is_empty() {
            let idx = flip.0 % bytes.len();
            bytes[idx] ^= flip.1;
        }
        let _ = format::from_bytes(&bytes);
    }

    #[test]
    fn merge_preserves_order_and_count(a in arb_capture(), b in arb_capture()) {
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.len(), a.len() + b.len());
        let mut last = 0;
        for p in merged.iter() {
            prop_assert!(p.timestamp_us >= last);
            last = p.timestamp_us;
        }
        prop_assert_eq!(merged.total_bytes(), a.total_bytes() + b.total_bytes());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pcapng_roundtrip_is_lossless(c in arb_capture()) {
        let bytes = v6brick_pcap::pcapng::to_bytes(&c);
        let back = v6brick_pcap::pcapng::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn pcapng_truncation_never_panics(c in arb_capture(), cut in any::<usize>()) {
        let bytes = v6brick_pcap::pcapng::to_bytes(&c);
        let cut = cut % (bytes.len() + 1);
        let _ = v6brick_pcap::pcapng::from_bytes(&bytes[..cut]);
    }

    #[test]
    fn both_formats_agree(c in arb_capture()) {
        let via_classic =
            v6brick_pcap::format::from_bytes(&v6brick_pcap::format::to_bytes(&c)).unwrap();
        let via_ng = v6brick_pcap::pcapng::from_bytes(&v6brick_pcap::pcapng::to_bytes(&c)).unwrap();
        prop_assert_eq!(via_classic, via_ng);
    }
}
