//! A tcpdump-flavoured text syntax for [`crate::filter::Filter`].
//!
//! The paper's pipeline drives tcpdump with BPF expressions like
//! `ip6 and udp port 53`; this module accepts the conjunctive subset of
//! that syntax so analysis scripts read the same way:
//!
//! ```
//! use v6brick_pcap::bpf;
//!
//! let f = bpf::parse("ip6 and udp and port 53").unwrap();
//! # let _ = f;
//! ```
//!
//! Supported terms, joined by `and`/`&&`: `ip`, `ip6`, `tcp`, `udp`,
//! `icmp`, `icmp6`, `port N`, `host A`, `ether src M`, `ether host M`.

use crate::filter::{Filter, IpVersion};
use std::net::IpAddr;
use v6brick_net::ipv4::Protocol;
use v6brick_net::Mac;

/// A syntax error with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The token that could not be interpreted.
    pub token: String,
    /// Human-readable explanation.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad filter term {:?}: {}", self.token, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(token: &str, message: &'static str) -> ParseError {
    ParseError {
        token: token.to_string(),
        message,
    }
}

/// Parse a conjunctive filter expression.
pub fn parse(expr: &str) -> Result<Filter, ParseError> {
    let mut filter = Filter::new();
    let tokens: Vec<&str> = expr
        .split_whitespace()
        .filter(|t| *t != "and" && *t != "&&")
        .collect();
    let mut i = 0;
    while i < tokens.len() {
        match tokens[i] {
            "ip" => filter = filter.ip_version(IpVersion::V4),
            "ip6" => filter = filter.ip_version(IpVersion::V6),
            "tcp" => filter = filter.protocol(Protocol::Tcp),
            "udp" => filter = filter.protocol(Protocol::Udp),
            "icmp" => filter = filter.protocol(Protocol::Icmp),
            "icmp6" | "icmpv6" => filter = filter.protocol(Protocol::Icmpv6),
            "port" => {
                i += 1;
                let t = tokens.get(i).ok_or(err("port", "missing port number"))?;
                let p: u16 = t.parse().map_err(|_| err(t, "not a port number"))?;
                filter = filter.port(p);
            }
            "host" => {
                i += 1;
                let t = tokens.get(i).ok_or(err("host", "missing address"))?;
                let a: IpAddr = t.parse().map_err(|_| err(t, "not an IP address"))?;
                filter = filter.ip(a);
            }
            "ether" => {
                i += 1;
                let kind = *tokens.get(i).ok_or(err("ether", "expected src|host"))?;
                i += 1;
                let t = tokens.get(i).ok_or(err(kind, "missing MAC"))?;
                let m: Mac = t.parse().map_err(|_| err(t, "not a MAC address"))?;
                filter = match kind {
                    "src" => filter.src_mac(m),
                    "host" => filter.either_mac(m),
                    other => return Err(err(other, "expected src|host")),
                };
            }
            other => return Err(err(other, "unknown term")),
        }
        i += 1;
    }
    Ok(filter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;
    use v6brick_net::ethernet::{EtherType, Repr as EthRepr};
    use v6brick_net::parse::ParsedPacket;
    use v6brick_net::udp::PseudoHeader;
    use v6brick_net::{ipv6, udp};

    fn dns6_packet() -> ParsedPacket {
        let src: Ipv6Addr = "2001:db8::10".parse().unwrap();
        let dst: Ipv6Addr = "2001:4860:4860::8888".parse().unwrap();
        let u = udp::Repr {
            src_port: 40000,
            dst_port: 53,
            payload: vec![0; 12],
        }
        .build(PseudoHeader::V6 { src, dst });
        let ip = ipv6::Repr {
            src,
            dst,
            next_header: v6brick_net::ipv4::Protocol::Udp,
            hop_limit: 64,
            payload_len: u.len(),
        }
        .build(&u);
        let frame = EthRepr {
            src: Mac::new(2, 0, 0, 0, 0, 0x11),
            dst: Mac::new(2, 0, 0, 0, 0, 0xfe),
            ethertype: EtherType::Ipv6,
        }
        .build(&ip);
        ParsedPacket::parse(&frame).unwrap()
    }

    #[test]
    fn tcpdump_style_expressions() {
        let p = dns6_packet();
        assert!(parse("ip6 and udp and port 53").unwrap().matches(&p));
        assert!(parse("ip6 && udp && port 53").unwrap().matches(&p));
        assert!(!parse("ip and udp").unwrap().matches(&p));
        assert!(!parse("tcp").unwrap().matches(&p));
        assert!(parse("host 2001:4860:4860::8888").unwrap().matches(&p));
        assert!(parse("ether src 02:00:00:00:00:11").unwrap().matches(&p));
        assert!(!parse("ether src 02:00:00:00:00:22").unwrap().matches(&p));
        assert!(parse("ether host 02:00:00:00:00:fe").unwrap().matches(&p));
        assert!(parse("").unwrap().matches(&p), "empty matches all");
    }

    #[test]
    fn errors_carry_the_bad_token() {
        assert_eq!(parse("bogus").unwrap_err().token, "bogus");
        assert_eq!(parse("port banana").unwrap_err().token, "banana");
        assert_eq!(parse("port").unwrap_err().token, "port");
        assert_eq!(parse("host not-an-ip").unwrap_err().token, "not-an-ip");
        assert_eq!(
            parse("ether dst 02:00:00:00:00:01").unwrap_err().token,
            "dst"
        );
        assert!(parse("icmp6").is_ok());
    }
}
