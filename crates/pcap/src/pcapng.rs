//! pcapng (the modern capture format, RFC draft-ietf-opsawg-pcapng).
//!
//! Wireshark defaults to pcapng; supporting it alongside classic pcap
//! makes the simulator's captures drop-in for either toolchain. We write
//! little-endian files with one section, one Ethernet interface at
//! microsecond resolution, and one Enhanced Packet Block per frame; the
//! reader accepts both endiannesses and skips unknown blocks.

use crate::format::PcapError;
use crate::{Capture, CapturedPacket};
use bytes::Bytes;

const BLOCK_SHB: u32 = 0x0A0D_0D0A;
const BLOCK_IDB: u32 = 0x0000_0001;
const BLOCK_EPB: u32 = 0x0000_0006;
const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;
const LINKTYPE_ETHERNET: u16 = 1;

fn pad4(n: usize) -> usize {
    (4 - n % 4) % 4
}

fn push_block(out: &mut Vec<u8>, block_type: u32, body: &[u8]) {
    let total = 12 + body.len() + pad4(body.len());
    out.extend_from_slice(&block_type.to_le_bytes());
    out.extend_from_slice(&(total as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend(std::iter::repeat_n(0u8, pad4(body.len())));
    out.extend_from_slice(&(total as u32).to_le_bytes());
}

/// Serialize a capture as a pcapng stream.
pub fn to_bytes(capture: &Capture) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + capture.len() * 96);

    // Section Header Block.
    let mut shb = Vec::with_capacity(16);
    shb.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
    shb.extend_from_slice(&1u16.to_le_bytes()); // major
    shb.extend_from_slice(&0u16.to_le_bytes()); // minor
    shb.extend_from_slice(&(-1i64).to_le_bytes()); // section length: unknown
    push_block(&mut out, BLOCK_SHB, &shb);

    // Interface Description Block: Ethernet, default (µs) resolution.
    let mut idb = Vec::with_capacity(8);
    idb.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
    idb.extend_from_slice(&0u16.to_le_bytes()); // reserved
    idb.extend_from_slice(&262_144u32.to_le_bytes()); // snaplen
    push_block(&mut out, BLOCK_IDB, &idb);

    // One Enhanced Packet Block per frame.
    for p in capture.iter() {
        let mut epb = Vec::with_capacity(20 + p.data.len());
        epb.extend_from_slice(&0u32.to_le_bytes()); // interface id
        epb.extend_from_slice(&((p.timestamp_us >> 32) as u32).to_le_bytes());
        epb.extend_from_slice(&(p.timestamp_us as u32).to_le_bytes());
        epb.extend_from_slice(&(p.data.len() as u32).to_le_bytes()); // captured
        epb.extend_from_slice(&(p.data.len() as u32).to_le_bytes()); // original
        epb.extend_from_slice(&p.data);
        epb.extend(std::iter::repeat_n(0u8, pad4(p.data.len())));
        push_block(&mut out, BLOCK_EPB, &epb);
    }
    out
}

/// Deserialize a pcapng stream (single or multi-section; unknown block
/// types are skipped, as the format requires).
pub fn from_bytes(buf: &[u8]) -> Result<Capture, PcapError> {
    if buf.len() < 12 {
        return Err(PcapError::TruncatedRecord);
    }
    // The SHB carries the byte-order magic at offset 8.
    let first_type = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if first_type != BLOCK_SHB {
        return Err(PcapError::BadMagic(first_type));
    }
    let magic_le = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let big_endian = match magic_le {
        BYTE_ORDER_MAGIC => false,
        m if m.swap_bytes() == BYTE_ORDER_MAGIC => true,
        m => return Err(PcapError::BadMagic(m)),
    };
    let u32_at = |off: usize| -> Result<u32, PcapError> {
        let b: [u8; 4] = buf
            .get(off..off + 4)
            .ok_or(PcapError::TruncatedRecord)?
            .try_into()
            .unwrap();
        Ok(if big_endian {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        })
    };

    // Pre-scan the block chain (headers only) to count EPBs, so the
    // packet vector is allocated exactly once.
    let mut count = 0usize;
    let mut pos = 0usize;
    while pos + 12 <= buf.len() {
        let total = u32_at(pos + 4)? as usize;
        if total < 12 || !total.is_multiple_of(4) || pos + total > buf.len() {
            break; // the parse loop below reports the truncation
        }
        if u32_at(pos)? == BLOCK_EPB {
            count += 1;
        }
        pos += total;
    }
    let mut packets: Vec<CapturedPacket> = Vec::with_capacity(count);
    let mut pos = 0usize;
    while pos + 12 <= buf.len() {
        let block_type = u32_at(pos)?;
        let total = u32_at(pos + 4)? as usize;
        if total < 12 || !total.is_multiple_of(4) || pos + total > buf.len() {
            return Err(PcapError::TruncatedRecord);
        }
        // Trailing length must agree (format self-check).
        if u32_at(pos + total - 4)? as usize != total {
            return Err(PcapError::TruncatedRecord);
        }
        if block_type == BLOCK_EPB {
            let body = pos + 8;
            let ts_hi = u64::from(u32_at(body + 4)?);
            let ts_lo = u64::from(u32_at(body + 8)?);
            let captured = u32_at(body + 12)? as usize;
            let data_start = body + 20;
            if data_start + captured > pos + total - 4 {
                return Err(PcapError::TruncatedRecord);
            }
            packets.push(CapturedPacket {
                timestamp_us: (ts_hi << 32) | ts_lo,
                data: Bytes::copy_from_slice(&buf[data_start..data_start + captured]),
            });
        }
        // SHB, IDB, and anything unknown: skip.
        pos += total;
    }
    if pos != buf.len() {
        return Err(PcapError::TruncatedRecord);
    }
    packets.sort_by_key(|p| p.timestamp_us);
    Ok(packets.into_iter().collect())
}

/// Write a capture to any `io::Write` as pcapng.
pub fn write_pcapng<W: std::io::Write>(capture: &Capture, mut w: W) -> Result<(), PcapError> {
    w.write_all(&to_bytes(capture))?;
    Ok(())
}

/// Read a pcapng stream.
pub fn read_pcapng<R: std::io::Read>(mut r: R) -> Result<Capture, PcapError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Capture {
        let mut c = Capture::new();
        c.push(1_000_001, &[0xAA; 15]); // odd length exercises padding
        c.push(2_500_000, &[0xBB; 64]);
        c.push(u64::from(u32::MAX) * 2, &[0xCC; 3]); // >32-bit timestamp
        c
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let bytes = to_bytes(&c);
        assert_eq!(from_bytes(&bytes).unwrap(), c);
    }

    #[test]
    fn blocks_are_32bit_aligned_with_matching_lengths() {
        let bytes = to_bytes(&sample());
        let mut pos = 0;
        while pos < bytes.len() {
            let total = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
            assert_eq!(total % 4, 0);
            let trailing =
                u32::from_le_bytes(bytes[pos + total - 4..pos + total].try_into().unwrap());
            assert_eq!(trailing as usize, total);
            pos += total;
        }
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn header_layout_matches_spec() {
        let bytes = to_bytes(&Capture::new());
        // SHB type + byte-order magic.
        assert_eq!(&bytes[0..4], &BLOCK_SHB.to_le_bytes());
        assert_eq!(&bytes[8..12], &BYTE_ORDER_MAGIC.to_le_bytes());
        // Second block is the IDB with LINKTYPE_ETHERNET.
        let shb_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        assert_eq!(&bytes[shb_len..shb_len + 4], &BLOCK_IDB.to_le_bytes());
        assert_eq!(
            u16::from_le_bytes(bytes[shb_len + 8..shb_len + 10].try_into().unwrap()),
            LINKTYPE_ETHERNET
        );
    }

    #[test]
    fn unknown_blocks_are_skipped() {
        let mut bytes = to_bytes(&sample());
        // Append a custom block (type 0x0BAD) — readers must skip it.
        let mut custom = Vec::new();
        super::push_block(&mut custom, 0x0BAD, &[1, 2, 3, 4, 5]);
        bytes.extend_from_slice(&custom);
        assert_eq!(from_bytes(&bytes).unwrap(), sample());
    }

    #[test]
    fn rejects_classic_pcap_and_garbage() {
        let classic = crate::format::to_bytes(&sample());
        assert!(matches!(from_bytes(&classic), Err(PcapError::BadMagic(_))));
        assert!(from_bytes(&[0u8; 7]).is_err());
    }

    #[test]
    fn truncation_detected() {
        let bytes = to_bytes(&sample());
        for cut in [bytes.len() - 1, bytes.len() - 5, 13] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
