//! pcapng (the modern capture format, RFC draft-ietf-opsawg-pcapng).
//!
//! Wireshark defaults to pcapng; supporting it alongside classic pcap
//! makes the simulator's captures drop-in for either toolchain. We write
//! little-endian files with one section, one Ethernet interface at
//! microsecond resolution, and one Enhanced Packet Block per frame; the
//! reader accepts both endiannesses and skips unknown blocks.

use crate::format::PcapError;
use crate::{Capture, CapturedPacket};
use bytes::Bytes;

const BLOCK_SHB: u32 = 0x0A0D_0D0A;
const BLOCK_IDB: u32 = 0x0000_0001;
pub(crate) const BLOCK_EPB: u32 = 0x0000_0006;
const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;

/// IDB linktype for Ethernet II frames (the default everywhere).
pub const LINKTYPE_ETHERNET: u16 = 1;

/// IDB linktype for IEEE 802.15.4 frames captured without the trailing
/// FCS — what the mesh sub-network capture writes.
pub const LINKTYPE_IEEE802_15_4_NOFCS: u16 = 230;

fn pad4(n: usize) -> usize {
    (4 - n % 4) % 4
}

fn push_block(out: &mut Vec<u8>, block_type: u32, body: &[u8]) {
    let total = 12 + body.len() + pad4(body.len());
    out.extend_from_slice(&block_type.to_le_bytes());
    out.extend_from_slice(&(total as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend(std::iter::repeat_n(0u8, pad4(body.len())));
    out.extend_from_slice(&(total as u32).to_le_bytes());
}

/// Serialize a capture as a pcapng stream with an Ethernet interface.
pub fn to_bytes(capture: &Capture) -> Vec<u8> {
    to_bytes_with_linktype(capture, LINKTYPE_ETHERNET)
}

/// Serialize a capture as a pcapng stream whose single interface carries
/// the given linktype (e.g. [`LINKTYPE_IEEE802_15_4_NOFCS`] for mesh
/// captures). Readers in this crate are linktype-agnostic — the IDB is
/// informational for external dissectors.
pub fn to_bytes_with_linktype(capture: &Capture, linktype: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + capture.len() * 96);

    // Section Header Block.
    let mut shb = Vec::with_capacity(16);
    shb.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
    shb.extend_from_slice(&1u16.to_le_bytes()); // major
    shb.extend_from_slice(&0u16.to_le_bytes()); // minor
    shb.extend_from_slice(&(-1i64).to_le_bytes()); // section length: unknown
    push_block(&mut out, BLOCK_SHB, &shb);

    // Interface Description Block: default (µs) resolution.
    let mut idb = Vec::with_capacity(8);
    idb.extend_from_slice(&linktype.to_le_bytes());
    idb.extend_from_slice(&0u16.to_le_bytes()); // reserved
    idb.extend_from_slice(&262_144u32.to_le_bytes()); // snaplen
    push_block(&mut out, BLOCK_IDB, &idb);

    // One Enhanced Packet Block per frame.
    for p in capture.iter() {
        let mut epb = Vec::with_capacity(20 + p.data.len());
        epb.extend_from_slice(&0u32.to_le_bytes()); // interface id
        epb.extend_from_slice(&((p.timestamp_us >> 32) as u32).to_le_bytes());
        epb.extend_from_slice(&(p.timestamp_us as u32).to_le_bytes());
        epb.extend_from_slice(&(p.data.len() as u32).to_le_bytes()); // captured
        epb.extend_from_slice(&(p.data.len() as u32).to_le_bytes()); // original
        epb.extend_from_slice(&p.data);
        epb.extend(std::iter::repeat_n(0u8, pad4(p.data.len())));
        push_block(&mut out, BLOCK_EPB, &epb);
    }
    out
}

/// One parsed block header: `(type, body offset, total length)`.
pub(crate) type BlockHead = (u32, usize, usize);

/// A cursor over a pcapng block chain that tracks the **per-section**
/// byte order: each Section Header Block re-establishes endianness for
/// the blocks that follow it, so a file concatenating a little-endian
/// and a big-endian section (legal per the spec — each capture host
/// writes its native order) parses correctly.
pub(crate) struct BlockWalker<'a> {
    buf: &'a [u8],
    pos: usize,
    big_endian: bool,
}

impl<'a> BlockWalker<'a> {
    /// Validate the leading SHB and position the cursor at block 0.
    pub(crate) fn new(buf: &'a [u8]) -> Result<BlockWalker<'a>, PcapError> {
        if buf.len() < 4 {
            return Err(PcapError::TruncatedRecord);
        }
        // The SHB type value is a byte-order palindrome, so this check
        // is endianness-independent.
        let first_type = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if first_type != BLOCK_SHB {
            return Err(PcapError::BadMagic(first_type));
        }
        Ok(BlockWalker {
            buf,
            pos: 0,
            big_endian: false,
        })
    }

    /// Resume mid-chain at a block boundary, with the byte order the
    /// enclosing section established. The streaming decoder re-enters
    /// here on every fed chunk.
    pub(crate) fn resume(buf: &'a [u8], big_endian: bool) -> BlockWalker<'a> {
        BlockWalker {
            buf,
            pos: 0,
            big_endian,
        }
    }

    /// Cursor position (the next unconsumed block boundary).
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// The byte order currently in force.
    pub(crate) fn big_endian(&self) -> bool {
        self.big_endian
    }

    fn u32_at(&self, off: usize) -> Result<u32, PcapError> {
        let b: [u8; 4] = self
            .buf
            .get(off..off + 4)
            .ok_or(PcapError::TruncatedRecord)?
            .try_into()
            .unwrap();
        Ok(if self.big_endian {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        })
    }

    /// Advance to the next block. `Ok(None)` at a clean end of input;
    /// [`PcapError::PartialTail`] when the input ends mid-block.
    pub(crate) fn next_block(&mut self) -> Result<Option<BlockHead>, PcapError> {
        let (buf, pos) = (self.buf, self.pos);
        if pos == buf.len() {
            return Ok(None);
        }
        if pos + 12 > buf.len() {
            return Err(PcapError::PartialTail {
                offset: pos as u64,
                pending: buf.len() - pos,
            });
        }
        // The block type is written in the section's byte order, but
        // SHB's value is a palindrome — safe to test before switching.
        let raw_type = self.u32_at(pos)?;
        if raw_type == BLOCK_SHB {
            // A new section: its byte-order magic governs everything
            // from this block's own length field onward.
            let magic_le = u32::from_le_bytes(buf[pos + 8..pos + 12].try_into().unwrap());
            self.big_endian = match magic_le {
                BYTE_ORDER_MAGIC => false,
                m if m.swap_bytes() == BYTE_ORDER_MAGIC => true,
                m => return Err(PcapError::BadMagic(m)),
            };
        }
        let block_type = self.u32_at(pos)?;
        let total = self.u32_at(pos + 4)? as usize;
        if total < 12 || !total.is_multiple_of(4) {
            return Err(PcapError::TruncatedRecord);
        }
        if total > MAX_BLOCK_BYTES {
            return Err(PcapError::OversizedRecord(total));
        }
        if pos + total > buf.len() {
            return Err(PcapError::PartialTail {
                offset: pos as u64,
                pending: buf.len() - pos,
            });
        }
        // Trailing length must agree (format self-check).
        if self.u32_at(pos + total - 4)? as usize != total {
            return Err(PcapError::TruncatedRecord);
        }
        self.pos = pos + total;
        Ok(Some((block_type, pos + 8, total)))
    }

    /// Decode the packet out of an EPB located by [`Self::next_block`].
    pub(crate) fn decode_epb(
        &self,
        body: usize,
        total: usize,
    ) -> Result<(u64, &'a [u8]), PcapError> {
        let ts_hi = u64::from(self.u32_at(body + 4)?);
        let ts_lo = u64::from(self.u32_at(body + 8)?);
        let captured = self.u32_at(body + 12)? as usize;
        let data_start = body + 20;
        // body == block start + 8; the trailing length occupies the
        // final 4 bytes of the block.
        if data_start + captured > body - 8 + total - 4 {
            return Err(PcapError::TruncatedRecord);
        }
        Ok((
            (ts_hi << 32) | ts_lo,
            &self.buf[data_start..data_start + captured],
        ))
    }
}

/// Upper bound on a single block's declared length — generous for any
/// real EPB, small enough that corrupt lengths cannot make a streaming
/// reader buffer unbounded input.
pub(crate) const MAX_BLOCK_BYTES: usize = crate::format::MAX_RECORD_BYTES + 64;

/// Deserialize a pcapng stream (single or multi-section, sections of
/// either endianness; unknown block types are skipped, as the format
/// requires). Sections without interfaces or packets are valid and
/// contribute nothing; a stream cut mid-block yields the typed
/// [`PcapError::PartialTail`] rather than a generic failure.
pub fn from_bytes(buf: &[u8]) -> Result<Capture, PcapError> {
    // Pre-scan the block chain (headers only) to count EPBs, so the
    // packet vector is allocated exactly once.
    let mut count = 0usize;
    let mut scout = BlockWalker::new(buf)?;
    // An erroring scout just stops counting early; the parse loop below
    // reports errors with full context.
    while let Ok(Some((block_type, _, _))) = scout.next_block() {
        if block_type == BLOCK_EPB {
            count += 1;
        }
    }
    let mut packets: Vec<CapturedPacket> = Vec::with_capacity(count);
    let mut walker = BlockWalker::new(buf)?;
    while let Some((block_type, body, total)) = walker.next_block()? {
        if block_type == BLOCK_EPB {
            let (timestamp_us, data) = walker.decode_epb(body, total)?;
            packets.push(CapturedPacket {
                timestamp_us,
                data: Bytes::copy_from_slice(data),
            });
        }
        // SHB, IDB, and anything unknown: skip.
    }
    packets.sort_by_key(|p| p.timestamp_us);
    Ok(packets.into_iter().collect())
}

/// Write a capture to any `io::Write` as pcapng.
pub fn write_pcapng<W: std::io::Write>(capture: &Capture, mut w: W) -> Result<(), PcapError> {
    w.write_all(&to_bytes(capture))?;
    Ok(())
}

/// Read a pcapng stream.
pub fn read_pcapng<R: std::io::Read>(mut r: R) -> Result<Capture, PcapError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Capture {
        let mut c = Capture::new();
        c.push(1_000_001, &[0xAA; 15]); // odd length exercises padding
        c.push(2_500_000, &[0xBB; 64]);
        c.push(u64::from(u32::MAX) * 2, &[0xCC; 3]); // >32-bit timestamp
        c
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let bytes = to_bytes(&c);
        assert_eq!(from_bytes(&bytes).unwrap(), c);
    }

    #[test]
    fn blocks_are_32bit_aligned_with_matching_lengths() {
        let bytes = to_bytes(&sample());
        let mut pos = 0;
        while pos < bytes.len() {
            let total = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
            assert_eq!(total % 4, 0);
            let trailing =
                u32::from_le_bytes(bytes[pos + total - 4..pos + total].try_into().unwrap());
            assert_eq!(trailing as usize, total);
            pos += total;
        }
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn header_layout_matches_spec() {
        let bytes = to_bytes(&Capture::new());
        // SHB type + byte-order magic.
        assert_eq!(&bytes[0..4], &BLOCK_SHB.to_le_bytes());
        assert_eq!(&bytes[8..12], &BYTE_ORDER_MAGIC.to_le_bytes());
        // Second block is the IDB with LINKTYPE_ETHERNET.
        let shb_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        assert_eq!(&bytes[shb_len..shb_len + 4], &BLOCK_IDB.to_le_bytes());
        assert_eq!(
            u16::from_le_bytes(bytes[shb_len + 8..shb_len + 10].try_into().unwrap()),
            LINKTYPE_ETHERNET
        );
    }

    #[test]
    fn unknown_blocks_are_skipped() {
        let mut bytes = to_bytes(&sample());
        // Append a custom block (type 0x0BAD) — readers must skip it.
        let mut custom = Vec::new();
        super::push_block(&mut custom, 0x0BAD, &[1, 2, 3, 4, 5]);
        bytes.extend_from_slice(&custom);
        assert_eq!(from_bytes(&bytes).unwrap(), sample());
    }

    #[test]
    fn rejects_classic_pcap_and_garbage() {
        let classic = crate::format::to_bytes(&sample());
        assert!(matches!(from_bytes(&classic), Err(PcapError::BadMagic(_))));
        assert!(from_bytes(&[0u8; 7]).is_err());
    }

    #[test]
    fn truncation_detected() {
        let bytes = to_bytes(&sample());
        for cut in [bytes.len() - 1, bytes.len() - 5, 13] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    /// Build one section (SHB + IDB + EPBs) in the requested byte order.
    fn section(packets: &[(u64, &[u8])], big_endian: bool) -> Vec<u8> {
        let w32 = |v: u32| {
            if big_endian {
                v.to_be_bytes()
            } else {
                v.to_le_bytes()
            }
        };
        let mut out = Vec::new();
        let mut block = |block_type: u32, body: &[u8]| {
            let total = 12 + body.len() + pad4(body.len());
            out.extend_from_slice(&w32(block_type));
            out.extend_from_slice(&w32(total as u32));
            out.extend_from_slice(body);
            out.extend(std::iter::repeat_n(0u8, pad4(body.len())));
            out.extend_from_slice(&w32(total as u32));
        };
        let mut shb = Vec::new();
        shb.extend_from_slice(&w32(BYTE_ORDER_MAGIC));
        shb.extend_from_slice(&if big_endian {
            1u16.to_be_bytes()
        } else {
            1u16.to_le_bytes()
        });
        shb.extend_from_slice(&[0u8; 2]); // minor 0 either way
        shb.extend_from_slice(&(-1i64).to_le_bytes());
        block(BLOCK_SHB, &shb);
        let mut idb = Vec::new();
        idb.extend_from_slice(&if big_endian {
            LINKTYPE_ETHERNET.to_be_bytes()
        } else {
            LINKTYPE_ETHERNET.to_le_bytes()
        });
        idb.extend_from_slice(&[0u8; 2]);
        idb.extend_from_slice(&w32(262_144));
        block(BLOCK_IDB, &idb);
        for (ts, data) in packets {
            let mut epb = Vec::new();
            epb.extend_from_slice(&w32(0));
            epb.extend_from_slice(&w32((ts >> 32) as u32));
            epb.extend_from_slice(&w32(*ts as u32));
            epb.extend_from_slice(&w32(data.len() as u32));
            epb.extend_from_slice(&w32(data.len() as u32));
            epb.extend_from_slice(data);
            epb.extend(std::iter::repeat_n(0u8, pad4(data.len())));
            block(BLOCK_EPB, &epb);
        }
        out
    }

    #[test]
    fn mixed_endian_sections_parse_per_section() {
        // A little-endian section followed by a big-endian one: each
        // SHB re-establishes the byte order for its own blocks.
        let mut bytes = section(&[(10, &[0xAA; 7])], false);
        bytes.extend_from_slice(&section(&[(20, &[0xBB; 5])], true));
        let c = from_bytes(&bytes).unwrap();
        assert_eq!(c.len(), 2);
        let frames: Vec<_> = c.iter().collect();
        assert_eq!(frames[0].timestamp_us, 10);
        assert_eq!(&frames[0].data[..], &[0xAA; 7]);
        assert_eq!(frames[1].timestamp_us, 20);
        assert_eq!(&frames[1].data[..], &[0xBB; 5]);
    }

    #[test]
    fn empty_and_interfaceless_sections_tolerated() {
        // A bare SHB (no IDB, no packets) is a valid, empty capture.
        let shb_only = &to_bytes(&Capture::new())[..28];
        assert_eq!(from_bytes(shb_only).unwrap(), Capture::new());
        // Packets in a section that never declared an interface still
        // decode (the reader does not require an IDB).
        let mut interfaceless = section(&[], false)[..28].to_vec();
        let full = section(&[(5, &[0xCC; 4])], false);
        interfaceless.extend_from_slice(&full[full.len() - 36..]); // just the EPB
        let c = from_bytes(&interfaceless).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.iter().next().unwrap().timestamp_us, 5);
        // An empty section between two populated ones is skipped.
        let mut multi = section(&[(1, &[0x11; 2])], false);
        multi.extend_from_slice(&section(&[], true));
        multi.extend_from_slice(&section(&[(2, &[0x22; 2])], false));
        assert_eq!(from_bytes(&multi).unwrap().len(), 2);
    }

    #[test]
    fn trailing_partial_block_is_typed() {
        let bytes = to_bytes(&sample());
        // Cut mid-way through the final EPB: everything before it is a
        // clean prefix, the error names the boundary.
        let cut = bytes.len() - 6;
        match from_bytes(&bytes[..cut]) {
            Err(PcapError::PartialTail { offset, pending }) => {
                assert!(offset as usize <= cut);
                assert_eq!(offset as usize + pending, cut);
            }
            other => panic!("expected PartialTail, got {other:?}"),
        }
        // A corrupt trailing length is corruption, not a partial tail.
        let mut corrupt = to_bytes(&sample());
        let n = corrupt.len();
        corrupt[n - 2] ^= 0xFF;
        assert!(matches!(
            from_bytes(&corrupt),
            Err(PcapError::TruncatedRecord)
        ));
    }
}
