#![warn(missing_docs)]
//! # v6brick-pcap — packet captures
//!
//! The testbed's router captures every LAN frame with tcpdump; the paper's
//! analysis pipeline is pcap analysis. This crate provides:
//!
//! * [`Capture`] — an in-memory, timestamped packet store that the
//!   simulator's capture tap fills and the analysis pipeline consumes;
//! * classic pcap ([`mod@format`]) serialization, byte-compatible with
//!   tcpdump/wireshark (linktype 1, microsecond resolution, both
//!   endiannesses and the nanosecond variant accepted on read);
//! * typed packet [`filter`]s and capture [`stats`].

pub mod bpf;
pub mod filter;
pub mod format;
pub mod pcapng;
pub mod stats;
pub mod stream;

use bytes::Bytes;
use v6brick_net::parse::{self, ParsedPacket};

/// A streaming consumer of tapped frames.
///
/// The simulator's capture tap drives any combination of sinks, one
/// `on_frame` call per frame in capture order. A sink that buffers (the
/// [`Capture`] impl below) reproduces the classic tcpdump-to-disk
/// pipeline; a sink that folds each frame into running state analyzes
/// the experiment in a single pass with `O(state)` memory instead of
/// `O(frames)`.
pub trait FrameSink: Send {
    /// Observe one frame as it crosses the tap. Timestamps are
    /// non-decreasing microseconds since the start of the experiment.
    fn on_frame(&mut self, timestamp_us: u64, frame: &[u8]);

    /// Recover the concrete sink once the producer is done with it.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

impl FrameSink for Capture {
    fn on_frame(&mut self, timestamp_us: u64, frame: &[u8]) {
        self.push(timestamp_us, frame);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// One captured frame: a timestamp (microseconds since the start of the
/// experiment) plus the raw Ethernet bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedPacket {
    /// Timestamp (microseconds).
    pub timestamp_us: u64,
    /// Data.
    pub data: Bytes,
}

impl CapturedPacket {
    /// Parse this frame leniently (never fails on L4 corruption).
    pub fn parse(&self) -> Option<ParsedPacket> {
        parse::parse_lenient(&self.data).ok()
    }
}

/// An in-memory packet capture, in capture order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Capture {
    packets: Vec<CapturedPacket>,
}

impl Capture {
    /// An empty capture.
    pub fn new() -> Capture {
        Capture::default()
    }

    /// An empty capture with room for `frames` frames — the constructor
    /// for every path that knows the frame count up front (pcap readers
    /// pre-scan their record headers, filters bound by the source size).
    pub fn with_capacity(frames: usize) -> Capture {
        Capture {
            packets: Vec::with_capacity(frames),
        }
    }

    /// Append a frame. Timestamps must be non-decreasing; the simulator
    /// guarantees this, and [`format::read_pcap`] sorts on load.
    pub fn push(&mut self, timestamp_us: u64, frame: &[u8]) {
        debug_assert!(
            self.packets
                .last()
                .map(|p| p.timestamp_us <= timestamp_us)
                .unwrap_or(true),
            "capture timestamps must be monotone"
        );
        self.packets.push(CapturedPacket {
            timestamp_us,
            data: Bytes::copy_from_slice(frame),
        });
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Is the capture empty?
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Iterate over raw frames.
    pub fn iter(&self) -> impl Iterator<Item = &CapturedPacket> {
        self.packets.iter()
    }

    /// Iterate over parsed frames (lenient; unparseable frames skipped).
    pub fn parsed(&self) -> impl Iterator<Item = (u64, ParsedPacket)> + '_ {
        self.packets
            .iter()
            .filter_map(|p| p.parse().map(|pp| (p.timestamp_us, pp)))
    }

    /// Keep only frames matching `pred`.
    pub fn filter(&self, mut pred: impl FnMut(&ParsedPacket) -> bool) -> Capture {
        // The match count is bounded by the source length; one exact-ish
        // allocation beats the doubling growth of a bare collect.
        let mut packets = Vec::with_capacity(self.packets.len());
        packets.extend(
            self.packets
                .iter()
                .filter(|p| p.parse().map(|pp| pred(&pp)).unwrap_or(false))
                .cloned(),
        );
        Capture { packets }
    }

    /// Append every frame of `other` and restore timestamp order.
    pub fn merge(&mut self, other: &Capture) {
        self.packets.reserve(other.packets.len());
        self.packets.extend(other.packets.iter().cloned());
        self.packets.sort_by_key(|p| p.timestamp_us);
    }

    /// Total captured bytes.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.data.len() as u64).sum()
    }

    /// The timestamp of the last frame, if any.
    pub fn last_timestamp_us(&self) -> Option<u64> {
        self.packets.last().map(|p| p.timestamp_us)
    }
}

impl FromIterator<CapturedPacket> for Capture {
    fn from_iter<I: IntoIterator<Item = CapturedPacket>>(iter: I) -> Capture {
        Capture {
            packets: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6brick_net::ethernet::{EtherType, Repr as EthRepr};
    use v6brick_net::Mac;

    fn frame(ethertype: EtherType) -> Vec<u8> {
        EthRepr {
            src: Mac::new(2, 0, 0, 0, 0, 1),
            dst: Mac::BROADCAST,
            ethertype,
        }
        .build(&[0u8; 4])
    }

    #[test]
    fn push_iter_and_totals() {
        let mut c = Capture::new();
        c.push(0, &frame(EtherType::Other(0x1234)));
        c.push(5, &frame(EtherType::Other(0x1234)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_bytes(), 36);
        assert_eq!(c.last_timestamp_us(), Some(5));
        assert_eq!(c.iter().count(), 2);
    }

    #[test]
    fn merge_restores_order() {
        let mut a = Capture::new();
        a.push(10, &frame(EtherType::Other(1)));
        let mut b = Capture::new();
        b.push(5, &frame(EtherType::Other(2)));
        a.merge(&b);
        let ts: Vec<u64> = a.iter().map(|p| p.timestamp_us).collect();
        assert_eq!(ts, vec![5, 10]);
    }

    #[test]
    fn filter_by_parsed_content() {
        let mut c = Capture::new();
        c.push(0, &frame(EtherType::Other(0x1111)));
        c.push(1, &frame(EtherType::Other(0x2222)));
        let only = c.filter(|p| p.eth.ethertype == EtherType::Other(0x2222));
        assert_eq!(only.len(), 1);
    }
}
