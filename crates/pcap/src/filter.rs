//! Typed packet filters — the role BPF expressions play in the paper's
//! tcpdump-based pipeline, but checked at compile time.

use std::net::IpAddr;
use v6brick_net::ipv4::Protocol;
use v6brick_net::parse::{Net, ParsedPacket, L4};
use v6brick_net::Mac;

/// Which IP family a filter selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpVersion {
    /// V4.
    V4,
    /// V6.
    V6,
}

/// A conjunctive packet filter: every populated field must match.
///
/// ```
/// use v6brick_pcap::filter::{Filter, IpVersion};
///
/// // tcpdump's `ip6 and udp port 53`:
/// let dns6 = Filter::new().ip_version(IpVersion::V6).port(53);
/// # let _ = dns6;
/// ```
#[derive(Debug, Clone, Default)]
pub struct Filter {
    ip_version: Option<IpVersion>,
    protocol: Option<Protocol>,
    port: Option<u16>,
    src_mac: Option<Mac>,
    either_mac: Option<Mac>,
    ip: Option<IpAddr>,
}

impl Filter {
    /// A filter matching everything.
    pub fn new() -> Filter {
        Filter::default()
    }

    /// Require the given IP family.
    pub fn ip_version(mut self, v: IpVersion) -> Filter {
        self.ip_version = Some(v);
        self
    }

    /// Require the given transport protocol.
    pub fn protocol(mut self, p: Protocol) -> Filter {
        self.protocol = Some(p);
        self
    }

    /// Require either TCP/UDP port to equal `port`.
    pub fn port(mut self, port: u16) -> Filter {
        self.port = Some(port);
        self
    }

    /// Require the frame's source MAC (device attribution — the paper keys
    /// every per-device statistic on the MAC).
    pub fn src_mac(mut self, mac: Mac) -> Filter {
        self.src_mac = Some(mac);
        self
    }

    /// Require the frame's source *or* destination MAC.
    pub fn either_mac(mut self, mac: Mac) -> Filter {
        self.either_mac = Some(mac);
        self
    }

    /// Require either IP address to equal `ip`.
    pub fn ip(mut self, ip: IpAddr) -> Filter {
        self.ip = Some(ip);
        self
    }

    /// Does `p` satisfy every populated condition?
    pub fn matches(&self, p: &ParsedPacket) -> bool {
        if let Some(v) = self.ip_version {
            let ok = match v {
                IpVersion::V4 => matches!(p.net, Net::Ipv4(_)),
                IpVersion::V6 => matches!(p.net, Net::Ipv6(_)),
            };
            if !ok {
                return false;
            }
        }
        if let Some(proto) = self.protocol {
            let actual = match (&p.net, &p.l4) {
                (_, L4::Udp { .. }) => Some(Protocol::Udp),
                (_, L4::Tcp { .. }) => Some(Protocol::Tcp),
                (_, L4::Icmpv4 { .. }) => Some(Protocol::Icmp),
                (_, L4::Icmpv6(_)) => Some(Protocol::Icmpv6),
                (Net::Ipv4(r), L4::Other { .. }) => Some(r.protocol),
                (Net::Ipv6(r), L4::Other { .. }) => Some(r.next_header),
                _ => None,
            };
            if actual != Some(proto) {
                return false;
            }
        }
        if let Some(port) = self.port {
            if !p.involves_port(port) {
                return false;
            }
        }
        if let Some(mac) = self.src_mac {
            if p.eth.src != mac {
                return false;
            }
        }
        if let Some(mac) = self.either_mac {
            if p.eth.src != mac && p.eth.dst != mac {
                return false;
            }
        }
        if let Some(ip) = self.ip {
            if p.src_ip() != Some(ip) && p.dst_ip() != Some(ip) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;
    use v6brick_net::ethernet::{EtherType, Repr as EthRepr};
    use v6brick_net::udp::{PseudoHeader, Repr as UdpRepr};
    use v6brick_net::{ipv6, parse::ParsedPacket};

    fn dns6_frame(src_mac: Mac) -> Vec<u8> {
        let src: Ipv6Addr = "2001:db8::10".parse().unwrap();
        let dst: Ipv6Addr = "2001:4860:4860::8888".parse().unwrap();
        let udp = UdpRepr {
            src_port: 40001,
            dst_port: 53,
            payload: vec![0; 12],
        }
        .build(PseudoHeader::V6 { src, dst });
        let ip = ipv6::Repr {
            src,
            dst,
            next_header: Protocol::Udp,
            hop_limit: 64,
            payload_len: udp.len(),
        }
        .build(&udp);
        EthRepr {
            src: src_mac,
            dst: Mac::new(2, 0, 0, 0, 0, 0xfe),
            ethertype: EtherType::Ipv6,
        }
        .build(&ip)
    }

    #[test]
    fn conjunctive_matching() {
        let mac = Mac::new(2, 0, 0, 0, 0, 9);
        let p = ParsedPacket::parse(&dns6_frame(mac)).unwrap();
        assert!(Filter::new().matches(&p));
        assert!(Filter::new()
            .ip_version(IpVersion::V6)
            .protocol(Protocol::Udp)
            .port(53)
            .src_mac(mac)
            .matches(&p));
        assert!(!Filter::new().ip_version(IpVersion::V4).matches(&p));
        assert!(!Filter::new().port(443).matches(&p));
        assert!(!Filter::new().src_mac(Mac::BROADCAST).matches(&p));
        assert!(Filter::new()
            .either_mac(Mac::new(2, 0, 0, 0, 0, 0xfe))
            .matches(&p));
        assert!(Filter::new()
            .ip("2001:4860:4860::8888".parse().unwrap())
            .matches(&p));
        assert!(!Filter::new()
            .ip("2001:db8::99".parse().unwrap())
            .matches(&p));
    }
}
