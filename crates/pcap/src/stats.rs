//! Capture-level summary statistics, the first thing the pipeline prints
//! when sanity-checking an experiment run.

use crate::Capture;
use v6brick_net::parse::{Net, L4};

/// Frame and byte counts broken down the way the paper slices traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// Frames.
    pub frames: u64,
    /// Bytes.
    pub bytes: u64,
    /// IPv4 frames.
    pub ipv4_frames: u64,
    /// IPv6 frames.
    pub ipv6_frames: u64,
    /// Arp frames.
    pub arp_frames: u64,
    /// UDP frames.
    pub udp_frames: u64,
    /// TCP frames.
    pub tcp_frames: u64,
    /// Icmpv6 frames.
    pub icmpv6_frames: u64,
    /// DNS frames.
    pub dns_frames: u64,
    /// DHCPv4 frames.
    pub dhcpv4_frames: u64,
    /// DHCPv6 frames.
    pub dhcpv6_frames: u64,
    /// Frames whose layer 4 failed strict parsing.
    pub undecoded_frames: u64,
}

impl CaptureStats {
    /// Compute statistics over a capture.
    pub fn of(capture: &Capture) -> CaptureStats {
        let mut s = CaptureStats {
            frames: capture.len() as u64,
            bytes: capture.total_bytes(),
            ..CaptureStats::default()
        };
        for (_, p) in capture.parsed() {
            match &p.net {
                Net::Ipv4(_) => s.ipv4_frames += 1,
                Net::Ipv6(_) => s.ipv6_frames += 1,
                Net::Arp(_) => s.arp_frames += 1,
                Net::Other(_) => {}
            }
            match &p.l4 {
                L4::Udp {
                    src_port, dst_port, ..
                } => {
                    s.udp_frames += 1;
                    if *src_port == 53 || *dst_port == 53 {
                        s.dns_frames += 1;
                    }
                    if *src_port == 67 || *dst_port == 67 || *src_port == 68 || *dst_port == 68 {
                        s.dhcpv4_frames += 1;
                    }
                    if *src_port == 546 || *dst_port == 546 || *src_port == 547 || *dst_port == 547
                    {
                        s.dhcpv6_frames += 1;
                    }
                }
                L4::Tcp {
                    src_port, dst_port, ..
                } => {
                    s.tcp_frames += 1;
                    if *src_port == 53 || *dst_port == 53 {
                        s.dns_frames += 1;
                    }
                }
                L4::Icmpv6(_) => s.icmpv6_frames += 1,
                L4::Icmpv4 { .. } | L4::None => {}
                L4::Other { .. } => s.undecoded_frames += 1,
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;
    use v6brick_net::ethernet::{EtherType, Repr as EthRepr};
    use v6brick_net::ipv4::Protocol;
    use v6brick_net::udp::{PseudoHeader, Repr as UdpRepr};
    use v6brick_net::{ipv6, Mac};

    #[test]
    fn counts_dns_and_families() {
        let src: Ipv6Addr = "fe80::1".parse().unwrap();
        let dst: Ipv6Addr = "fe80::2".parse().unwrap();
        let udp = UdpRepr {
            src_port: 40000,
            dst_port: 53,
            payload: vec![0; 12],
        }
        .build(PseudoHeader::V6 { src, dst });
        let ip = ipv6::Repr {
            src,
            dst,
            next_header: Protocol::Udp,
            hop_limit: 64,
            payload_len: udp.len(),
        }
        .build(&udp);
        let frame = EthRepr {
            src: Mac::new(2, 0, 0, 0, 0, 1),
            dst: Mac::new(2, 0, 0, 0, 0, 2),
            ethertype: EtherType::Ipv6,
        }
        .build(&ip);
        let mut c = Capture::new();
        c.push(0, &frame);
        c.push(1, &frame);
        let s = CaptureStats::of(&c);
        assert_eq!(s.frames, 2);
        assert_eq!(s.ipv6_frames, 2);
        assert_eq!(s.ipv4_frames, 0);
        assert_eq!(s.udp_frames, 2);
        assert_eq!(s.dns_frames, 2);
        assert_eq!(s.undecoded_frames, 0);
    }
}
