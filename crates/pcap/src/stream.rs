//! Incremental capture decoding for network-fed byte streams.
//!
//! The batch readers ([`crate::format::from_bytes`],
//! [`crate::pcapng::from_bytes`]) need the whole file in memory. A
//! capture arriving over a socket shows up as arbitrary chunks instead,
//! and an ingestion daemon must analyze it *as it arrives* without ever
//! materializing the `O(frames)` byte buffer. [`StreamDecoder`] fills
//! that gap: feed it chunks in stream order and it emits each completed
//! frame to a callback, buffering only the current partial record —
//! `O(max frame)` memory, independent of upload size.
//!
//! The format (classic pcap in either endianness and timestamp
//! resolution, or pcapng with per-section byte order) is auto-detected
//! from the first bytes. All errors are the typed
//! [`PcapError`] values the batch readers
//! return — a decoder on a network-facing path must never panic, which
//! `tests/prop_readers.rs` fuzzes.
//!
//! Frames are emitted in **stream order** (no timestamp sort): the
//! writers in this crate emit monotone timestamps, so for captures this
//! workspace produces, stream order equals the batch readers' sorted
//! order, and streaming analysis is byte-equivalent to buffered
//! analysis.

use crate::format::{PcapError, MAX_RECORD_BYTES};
use crate::pcapng::{BlockWalker, BLOCK_EPB};

const MAGIC_USEC: u32 = 0xa1b2_c3d4;
const MAGIC_NSEC: u32 = 0xa1b2_3c4d;
const BLOCK_SHB: u32 = 0x0A0D_0D0A;
const LINKTYPE_ETHERNET: u32 = 1;

/// Decode state: which format the stream turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Not enough bytes yet to tell the format.
    Detect,
    /// Classic pcap, past its 24-byte global header.
    Classic {
        /// Multi-byte fields are big-endian.
        big_endian: bool,
        /// Timestamps carry nanoseconds in the sub-second field.
        nsec: bool,
    },
    /// pcapng; the flag tracks the current section's byte order.
    Ng {
        /// The byte order the most recent SHB established.
        big_endian: bool,
    },
}

/// An incremental pcap/pcapng decoder.
///
/// ```
/// use v6brick_pcap::{format, stream::StreamDecoder, Capture};
///
/// let mut capture = Capture::new();
/// capture.push(5, &[0xAB; 14]);
/// let bytes = format::to_bytes(&capture);
///
/// let mut frames = Vec::new();
/// let mut decoder = StreamDecoder::new();
/// for chunk in bytes.chunks(7) {
///     decoder
///         .feed(chunk, &mut |ts, frame: &[u8]| frames.push((ts, frame.to_vec())))
///         .unwrap();
/// }
/// assert_eq!(decoder.finish().unwrap(), 1);
/// assert_eq!(frames, vec![(5u64, vec![0xAB; 14])]);
/// ```
#[derive(Debug)]
pub struct StreamDecoder {
    state: State,
    /// Unconsumed tail: at most one partial record plus the chunk that
    /// completed it — never the whole stream.
    buf: Vec<u8>,
    /// Bytes consumed (drained out of `buf`) so far.
    consumed: u64,
    /// Frames emitted so far.
    frames: u64,
    /// A hard error already reported; further feeding is refused.
    poisoned: bool,
}

impl Default for StreamDecoder {
    fn default() -> StreamDecoder {
        StreamDecoder::new()
    }
}

impl StreamDecoder {
    /// A decoder awaiting the first chunk.
    pub fn new() -> StreamDecoder {
        StreamDecoder {
            state: State::Detect,
            buf: Vec::new(),
            consumed: 0,
            frames: 0,
            poisoned: false,
        }
    }

    /// Frames emitted so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Total bytes accepted so far (consumed plus pending).
    pub fn bytes_fed(&self) -> u64 {
        self.consumed + self.buf.len() as u64
    }

    /// Feed one chunk, emitting every frame it completes to `sink` in
    /// stream order. After an error the decoder is poisoned and refuses
    /// further input (the error is sticky by design: a network server
    /// must fail the whole upload, not resynchronize into garbage).
    pub fn feed(
        &mut self,
        chunk: &[u8],
        sink: &mut dyn FnMut(u64, &[u8]),
    ) -> Result<(), PcapError> {
        if self.poisoned {
            return Err(PcapError::TruncatedRecord);
        }
        self.buf.extend_from_slice(chunk);
        let result = self.drain(sink);
        if result.is_err() {
            self.poisoned = true;
        }
        result
    }

    /// End of stream. Returns the total frame count on a clean boundary;
    /// a non-empty pending buffer is the typed
    /// [`PcapError::PartialTail`] (a truncated upload), and a stream too
    /// short to even identify is [`PcapError::TruncatedRecord`].
    pub fn finish(self) -> Result<u64, PcapError> {
        if self.poisoned {
            return Err(PcapError::TruncatedRecord);
        }
        if self.state == State::Detect {
            // Never saw a complete magic/global header: nothing of any
            // format was decoded.
            return Err(PcapError::TruncatedRecord);
        }
        if !self.buf.is_empty() {
            return Err(PcapError::PartialTail {
                offset: self.consumed,
                pending: self.buf.len(),
            });
        }
        Ok(self.frames)
    }

    /// Consume as much of `buf` as currently possible.
    fn drain(&mut self, sink: &mut dyn FnMut(u64, &[u8])) -> Result<(), PcapError> {
        if self.state == State::Detect && !self.detect()? {
            return Ok(()); // need more bytes
        }
        match self.state {
            State::Detect => unreachable!("detect() either errored or advanced"),
            State::Classic { big_endian, nsec } => self.drain_classic(big_endian, nsec, sink),
            State::Ng { .. } => self.drain_ng(sink),
        }
    }

    /// Identify the format from the leading bytes. `Ok(true)` once the
    /// relevant header is fully consumed.
    fn detect(&mut self) -> Result<bool, PcapError> {
        if self.buf.len() < 4 {
            return Ok(false);
        }
        let magic_le = u32::from_le_bytes(self.buf[0..4].try_into().unwrap());
        let magic_be = u32::from_be_bytes(self.buf[0..4].try_into().unwrap());
        if magic_le == BLOCK_SHB {
            // pcapng: leave the SHB in the buffer — the block walker
            // consumes it like any other block (and sets the byte
            // order from its magic).
            self.state = State::Ng { big_endian: false };
            return Ok(true);
        }
        let (big_endian, nsec) = match (magic_le, magic_be) {
            (MAGIC_USEC, _) => (false, false),
            (MAGIC_NSEC, _) => (false, true),
            (_, MAGIC_USEC) => (true, false),
            (_, MAGIC_NSEC) => (true, true),
            _ => return Err(PcapError::BadMagic(magic_le)),
        };
        // Classic: wait for the full 24-byte global header, validate
        // the linktype, then consume it.
        if self.buf.len() < 24 {
            return Ok(false);
        }
        let lt: [u8; 4] = self.buf[20..24].try_into().unwrap();
        let linktype = if big_endian {
            u32::from_be_bytes(lt)
        } else {
            u32::from_le_bytes(lt)
        };
        if linktype != LINKTYPE_ETHERNET {
            return Err(PcapError::UnsupportedLinkType(linktype));
        }
        self.discard(24);
        self.state = State::Classic { big_endian, nsec };
        Ok(true)
    }

    fn drain_classic(
        &mut self,
        big_endian: bool,
        nsec: bool,
        sink: &mut dyn FnMut(u64, &[u8]),
    ) -> Result<(), PcapError> {
        let u32_at = |buf: &[u8], off: usize| -> u32 {
            let b: [u8; 4] = buf[off..off + 4].try_into().unwrap();
            if big_endian {
                u32::from_be_bytes(b)
            } else {
                u32::from_le_bytes(b)
            }
        };
        let mut pos = 0usize;
        while pos + 16 <= self.buf.len() {
            let incl = u32_at(&self.buf, pos + 8) as usize;
            if incl > MAX_RECORD_BYTES {
                return Err(PcapError::OversizedRecord(incl));
            }
            if pos + 16 + incl > self.buf.len() {
                break; // partial record: wait for more bytes
            }
            let sec = u64::from(u32_at(&self.buf, pos));
            let sub = u64::from(u32_at(&self.buf, pos + 4));
            let usec = if nsec { sub / 1000 } else { sub };
            sink(sec * 1_000_000 + usec, &self.buf[pos + 16..pos + 16 + incl]);
            self.frames += 1;
            pos += 16 + incl;
        }
        self.discard(pos);
        Ok(())
    }

    fn drain_ng(&mut self, sink: &mut dyn FnMut(u64, &[u8])) -> Result<(), PcapError> {
        let State::Ng { big_endian } = self.state else {
            unreachable!("drain_ng outside Ng state");
        };
        let mut walker = BlockWalker::resume(&self.buf, big_endian);
        let mut frames = 0u64;
        let consumed = loop {
            match walker.next_block() {
                Ok(Some((block_type, body, total))) => {
                    if block_type == BLOCK_EPB {
                        let (ts, data) = walker.decode_epb(body, total)?;
                        sink(ts, data);
                        frames += 1;
                    }
                }
                Ok(None) => break walker.pos(),
                // Mid-block end of the *current* buffer just means the
                // next chunk completes it.
                Err(PcapError::PartialTail { .. }) => break walker.pos(),
                Err(e) => return Err(e),
            }
        };
        self.state = State::Ng {
            big_endian: walker.big_endian(),
        };
        self.frames += frames;
        self.discard(consumed);
        Ok(())
    }

    /// Drop `n` consumed bytes off the front of the pending buffer.
    fn discard(&mut self, n: usize) {
        if n > 0 {
            self.buf.drain(..n);
            self.consumed += n as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{format, pcapng, Capture};

    fn sample() -> Capture {
        let mut c = Capture::new();
        c.push(1_000_001, &[0x11; 15]);
        c.push(2_500_000, &[0x22; 64]);
        c.push(9_000_000, &[0x33; 3]);
        c
    }

    type DecodedFrames = (Vec<(u64, Vec<u8>)>, u64);

    fn decode_chunked(bytes: &[u8], chunk: usize) -> Result<DecodedFrames, PcapError> {
        let mut frames = Vec::new();
        let mut d = StreamDecoder::new();
        for c in bytes.chunks(chunk.max(1)) {
            d.feed(c, &mut |ts, f: &[u8]| frames.push((ts, f.to_vec())))?;
        }
        let n = d.finish()?;
        Ok((frames, n))
    }

    #[test]
    fn classic_all_chunkings_match_batch_reader() {
        let bytes = format::to_bytes(&sample());
        let whole = decode_chunked(&bytes, bytes.len()).unwrap();
        assert_eq!(whole.1, 3);
        let batch: Vec<(u64, Vec<u8>)> = format::from_bytes(&bytes)
            .unwrap()
            .iter()
            .map(|p| (p.timestamp_us, p.data.to_vec()))
            .collect();
        assert_eq!(whole.0, batch);
        for chunk in [1, 2, 3, 7, 16, 64] {
            assert_eq!(
                decode_chunked(&bytes, chunk).unwrap(),
                whole,
                "chunk {chunk}"
            );
        }
    }

    #[test]
    fn pcapng_all_chunkings_match_batch_reader() {
        let bytes = pcapng::to_bytes(&sample());
        let whole = decode_chunked(&bytes, bytes.len()).unwrap();
        assert_eq!(whole.1, 3);
        let batch: Vec<(u64, Vec<u8>)> = pcapng::from_bytes(&bytes)
            .unwrap()
            .iter()
            .map(|p| (p.timestamp_us, p.data.to_vec()))
            .collect();
        assert_eq!(whole.0, batch);
        for chunk in [1, 2, 5, 13, 32, 101] {
            assert_eq!(
                decode_chunked(&bytes, chunk).unwrap(),
                whole,
                "chunk {chunk}"
            );
        }
    }

    #[test]
    fn truncated_stream_is_typed_partial_tail() {
        for bytes in [format::to_bytes(&sample()), pcapng::to_bytes(&sample())] {
            let cut = &bytes[..bytes.len() - 5];
            let err = decode_chunked(cut, 9).unwrap_err();
            assert!(matches!(err, PcapError::PartialTail { .. }), "got {err:?}");
        }
    }

    #[test]
    fn empty_capture_and_empty_stream() {
        // A header-only classic stream is a valid empty capture.
        let empty = format::to_bytes(&Capture::new());
        assert_eq!(decode_chunked(&empty, 5).unwrap(), (vec![], 0));
        // A zero-byte stream never identified a format.
        let d = StreamDecoder::new();
        assert!(matches!(d.finish(), Err(PcapError::TruncatedRecord)));
    }

    #[test]
    fn garbage_magic_rejected_and_sticky() {
        let mut d = StreamDecoder::new();
        let err = d.feed(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00], &mut |_, _| {});
        assert!(matches!(err, Err(PcapError::BadMagic(_))));
        // Poisoned: even a valid continuation is refused.
        assert!(d.feed(&[0u8; 8], &mut |_, _| {}).is_err());
    }

    #[test]
    fn buffer_stays_bounded_by_one_record() {
        let mut big = Capture::new();
        big.push(1, &vec![0xAA; 60_000]);
        big.push(2, &vec![0xBB; 60_000]);
        let bytes = format::to_bytes(&big);
        let mut d = StreamDecoder::new();
        let mut max_pending = 0usize;
        let mut frames = 0u64;
        for c in bytes.chunks(4096) {
            d.feed(c, &mut |_, _| frames += 1).unwrap();
            max_pending = max_pending.max(d.buf.len());
        }
        assert_eq!(d.finish().unwrap(), 2);
        assert_eq!(frames, 2);
        // Pending never exceeds one record (+ header) + one chunk.
        assert!(max_pending <= 60_000 + 16 + 4096, "peak {max_pending}");
    }
}
