//! Classic pcap file format (the `tcpdump` on-disk format).
//!
//! Written files use the little-endian, microsecond-resolution magic
//! `0xa1b2c3d4` with linktype 1 (Ethernet), which any tcpdump or wireshark
//! can open. Reading accepts both endiannesses and the nanosecond-magic
//! variant `0xa1b23c4d`.

use crate::{Capture, CapturedPacket};
use bytes::Bytes;
use std::io::{self, Read, Write};

const MAGIC_USEC: u32 = 0xa1b2_c3d4;
const MAGIC_NSEC: u32 = 0xa1b2_3c4d;
const LINKTYPE_ETHERNET: u32 = 1;
/// tcpdump's default snap length.
const SNAPLEN: u32 = 262_144;
/// Upper bound on a single record's captured length accepted on read —
/// far above any real snap length, low enough that a corrupt length
/// field cannot make a streaming reader buffer unbounded input.
pub(crate) const MAX_RECORD_BYTES: usize = 1 << 22;

/// Errors arising from pcap (de)serialization.
#[derive(Debug)]
pub enum PcapError {
    /// Io.
    Io(io::Error),
    /// Not a pcap file (unknown magic).
    BadMagic(u32),
    /// Linktype other than Ethernet.
    UnsupportedLinkType(u32),
    /// Structurally corrupt input: a record or block whose framing is
    /// internally inconsistent (misaligned lengths, overflowing payload
    /// bounds, mismatched trailing length).
    TruncatedRecord,
    /// The stream ended mid-record (or mid-block): everything before
    /// `offset` parsed cleanly, `pending` tail bytes do not form a
    /// complete record. Distinct from [`PcapError::TruncatedRecord`] so
    /// network-facing callers can tell a cut-short upload (retryable,
    /// prefix usable) from corruption.
    PartialTail {
        /// Byte offset of the last cleanly parsed record boundary.
        offset: u64,
        /// Unconsumed bytes after that boundary.
        pending: usize,
    },
    /// A record declares a captured length beyond any plausible snap
    /// length — refused before buffering it.
    OversizedRecord(usize),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "io error: {e}"),
            PcapError::BadMagic(m) => write!(f, "unknown pcap magic 0x{m:08x}"),
            PcapError::UnsupportedLinkType(l) => write!(f, "unsupported linktype {l}"),
            PcapError::TruncatedRecord => write!(f, "truncated pcap record"),
            PcapError::PartialTail { offset, pending } => write!(
                f,
                "stream ends mid-record: {pending} pending bytes after clean offset {offset}"
            ),
            PcapError::OversizedRecord(n) => {
                write!(f, "record declares {n} captured bytes (over the snap cap)")
            }
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> PcapError {
        PcapError::Io(e)
    }
}

/// Serialize a capture as a classic pcap stream.
pub fn write_pcap<W: Write>(capture: &Capture, mut w: W) -> Result<(), PcapError> {
    // Global header.
    w.write_all(&MAGIC_USEC.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&SNAPLEN.to_le_bytes())?;
    w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
    for p in capture.iter() {
        let sec = (p.timestamp_us / 1_000_000) as u32;
        let usec = (p.timestamp_us % 1_000_000) as u32;
        let len = p.data.len() as u32;
        w.write_all(&sec.to_le_bytes())?;
        w.write_all(&usec.to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?; // incl_len
        w.write_all(&len.to_le_bytes())?; // orig_len
        w.write_all(&p.data)?;
    }
    Ok(())
}

/// Serialize to an in-memory byte vector.
pub fn to_bytes(capture: &Capture) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + capture.len() * 80);
    write_pcap(capture, &mut out).expect("in-memory write cannot fail");
    out
}

/// Deserialize a classic pcap stream.
pub fn read_pcap<R: Read>(mut r: R) -> Result<Capture, PcapError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

/// Deserialize from an in-memory byte slice.
pub fn from_bytes(buf: &[u8]) -> Result<Capture, PcapError> {
    if buf.len() < 24 {
        return Err(PcapError::TruncatedRecord);
    }
    let magic_le = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    let magic_be = u32::from_be_bytes(buf[0..4].try_into().unwrap());
    let (big_endian, nsec) = match (magic_le, magic_be) {
        (MAGIC_USEC, _) => (false, false),
        (MAGIC_NSEC, _) => (false, true),
        (_, MAGIC_USEC) => (true, false),
        (_, MAGIC_NSEC) => (true, true),
        _ => return Err(PcapError::BadMagic(magic_le)),
    };
    let u32_at = |off: usize| -> u32 {
        let b: [u8; 4] = buf[off..off + 4].try_into().unwrap();
        if big_endian {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    };
    let linktype = u32_at(20);
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::UnsupportedLinkType(linktype));
    }
    // Pre-scan the record headers (O(records), no payload reads) so the
    // packet vector is allocated exactly once.
    let mut count = 0usize;
    let mut pos = 24;
    while pos + 16 <= buf.len() {
        let incl = u32_at(pos + 8) as usize;
        if incl > MAX_RECORD_BYTES || pos + 16 + incl > buf.len() {
            break; // the parse loop below reports the truncation
        }
        pos += 16 + incl;
        count += 1;
    }
    let mut packets = Vec::with_capacity(count);
    let mut pos = 24;
    while pos + 16 <= buf.len() {
        let record_start = pos;
        let sec = u64::from(u32_at(pos));
        let sub = u64::from(u32_at(pos + 4));
        let incl = u32_at(pos + 8) as usize;
        if incl > MAX_RECORD_BYTES {
            return Err(PcapError::OversizedRecord(incl));
        }
        pos += 16;
        if pos + incl > buf.len() {
            // The stream ends inside this record's payload: everything
            // before it parsed cleanly.
            return Err(PcapError::PartialTail {
                offset: record_start as u64,
                pending: buf.len() - record_start,
            });
        }
        let usec = if nsec { sub / 1000 } else { sub };
        packets.push(CapturedPacket {
            timestamp_us: sec * 1_000_000 + usec,
            data: Bytes::copy_from_slice(&buf[pos..pos + incl]),
        });
        pos += incl;
    }
    if pos != buf.len() {
        // 1..15 tail bytes: not even a complete record header.
        return Err(PcapError::PartialTail {
            offset: pos as u64,
            pending: buf.len() - pos,
        });
    }
    packets.sort_by_key(|p| p.timestamp_us);
    Ok(packets.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_capture() -> Capture {
        let mut c = Capture::new();
        c.push(1_500_000, &[0xAAu8; 20]);
        c.push(2_000_001, &[0xBBu8; 60]);
        c
    }

    #[test]
    fn roundtrip() {
        let c = sample_capture();
        let bytes = to_bytes(&c);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn header_is_tcpdump_compatible() {
        let bytes = to_bytes(&sample_capture());
        assert_eq!(&bytes[0..4], &MAGIC_USEC.to_le_bytes());
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), 1);
        // First record: ts 1.5s, 20 bytes.
        assert_eq!(u32::from_le_bytes(bytes[24..28].try_into().unwrap()), 1);
        assert_eq!(
            u32::from_le_bytes(bytes[28..32].try_into().unwrap()),
            500_000
        );
        assert_eq!(u32::from_le_bytes(bytes[32..36].try_into().unwrap()), 20);
    }

    #[test]
    fn reads_big_endian() {
        // Hand-build a big-endian file with one 4-byte record.
        let mut b = Vec::new();
        b.extend_from_slice(&MAGIC_USEC.to_be_bytes());
        b.extend_from_slice(&2u16.to_be_bytes());
        b.extend_from_slice(&4u16.to_be_bytes());
        b.extend_from_slice(&[0; 8]);
        b.extend_from_slice(&0u32.to_be_bytes());
        b.extend_from_slice(&1u32.to_be_bytes()); // linktype
        b.extend_from_slice(&3u32.to_be_bytes()); // sec
        b.extend_from_slice(&7u32.to_be_bytes()); // usec
        b.extend_from_slice(&4u32.to_be_bytes()); // incl
        b.extend_from_slice(&4u32.to_be_bytes()); // orig
        b.extend_from_slice(&[1, 2, 3, 4]);
        let c = from_bytes(&b).unwrap();
        assert_eq!(c.len(), 1);
        let p = c.iter().next().unwrap();
        assert_eq!(p.timestamp_us, 3_000_007);
        assert_eq!(&p.data[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn reads_nanosecond_magic() {
        let mut b = Vec::new();
        b.extend_from_slice(&MAGIC_NSEC.to_le_bytes());
        b.extend_from_slice(&2u16.to_le_bytes());
        b.extend_from_slice(&4u16.to_le_bytes());
        b.extend_from_slice(&[0; 8]);
        b.extend_from_slice(&0u32.to_le_bytes());
        b.extend_from_slice(&1u32.to_le_bytes());
        b.extend_from_slice(&1u32.to_le_bytes()); // sec
        b.extend_from_slice(&500_000_000u32.to_le_bytes()); // nsec
        b.extend_from_slice(&1u32.to_le_bytes());
        b.extend_from_slice(&1u32.to_le_bytes());
        b.push(0xCC);
        let c = from_bytes(&b).unwrap();
        assert_eq!(c.iter().next().unwrap().timestamp_us, 1_500_000);
    }

    #[test]
    fn rejects_bad_magic_and_linktype() {
        assert!(matches!(
            from_bytes(&[0u8; 24]),
            Err(PcapError::BadMagic(_))
        ));
        let mut bytes = to_bytes(&Capture::new());
        bytes[20] = 101; // LINKTYPE_RAW
        assert!(matches!(
            from_bytes(&bytes),
            Err(PcapError::UnsupportedLinkType(101))
        ));
    }

    #[test]
    fn truncated_record_reports_typed_partial_tail() {
        let bytes = to_bytes(&sample_capture());
        // Cut mid-payload of the second record: the first record (24..60)
        // parsed cleanly, the tail is pending.
        let cut = &bytes[..bytes.len() - 3];
        match from_bytes(cut) {
            Err(PcapError::PartialTail { offset, pending }) => {
                assert_eq!(offset, 60);
                assert_eq!(pending, cut.len() - 60);
            }
            other => panic!("expected PartialTail, got {other:?}"),
        }
        // Cut mid-record-header: same typed error.
        assert!(matches!(
            from_bytes(&bytes[..24 + 7]),
            Err(PcapError::PartialTail { offset: 24, .. })
        ));
    }

    #[test]
    fn oversized_record_length_rejected() {
        let mut bytes = to_bytes(&sample_capture());
        // Corrupt the first record's incl_len to an absurd value.
        bytes[32..36].copy_from_slice(&(u32::MAX / 2).to_le_bytes());
        assert!(matches!(
            from_bytes(&bytes),
            Err(PcapError::OversizedRecord(_))
        ));
    }
}
