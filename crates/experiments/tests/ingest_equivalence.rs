//! The server==fleet correctness spine, pinned.
//!
//! A `v6brickd` server fed a fleet campaign's per-home captures must
//! produce a `SNAPSHOT` **byte-identical** to the JSON of the offline
//! `fleet::run` for the same spec and seed — no matter how many
//! clients uploaded, in what order, at what chunking, or how many lock
//! stripes the server runs. This holds because the population report is
//! a commutative monoid over integer counters, the streaming decoder is
//! chunking-invariant, and the capture tap records exactly the frames
//! the offline analyzer consumed.

use v6brick_experiments::fleet::CampaignSpec;
use v6brick_experiments::serve::{campaign_bundles, offline_report_json};
use v6brick_ingest::{loadgen, spawn, Client, ServerConfig, ServerHandle};

fn small_spec() -> CampaignSpec {
    CampaignSpec {
        homes: 4,
        seed: 0x51de,
        workers: 2,
        device_range: (2, 3),
        duration_s: 45,
        ..Default::default()
    }
}

fn server_for(spec: &CampaignSpec, shards: usize) -> ServerHandle {
    spawn(ServerConfig {
        campaign_seed: spec.seed,
        shards,
        ..Default::default()
    })
    .expect("server binds an ephemeral port")
}

#[test]
fn any_upload_order_and_sharding_snapshots_byte_identically_to_fleet_run() {
    let spec = small_spec();
    let offline = offline_report_json(&spec);
    let bundles = campaign_bundles(&spec);
    assert_eq!(bundles.len(), spec.homes as usize);

    // Three permutations × three stripe counts, one client each.
    let orders: [Vec<usize>; 3] = [vec![0, 1, 2, 3], vec![3, 2, 1, 0], vec![2, 0, 3, 1]];
    for (shards, order) in [1, 3, 8].into_iter().zip(orders) {
        let handle = server_for(&spec, shards);
        let mut client = Client::connect(handle.addr()).unwrap();
        for j in order {
            let ack = client.upload_bundle(&bundles[j], 777).unwrap();
            assert_eq!(ack.home_index, bundles[j].header.home_index);
            assert!(ack.frames > 0);
        }
        // Identical over the wire and in-process.
        assert_eq!(client.snapshot().unwrap(), offline, "shards={shards}");
        assert_eq!(handle.state().snapshot_json(), offline);
        handle.shutdown();
        handle.join();
    }
}

#[test]
fn concurrent_clients_snapshot_byte_identically_to_fleet_run() {
    let spec = small_spec();
    let offline = offline_report_json(&spec);
    let bundles = campaign_bundles(&spec);

    // 3 clients over 4 bundles: uneven partition, concurrent absorption.
    let handle = server_for(&spec, 4);
    let addr = handle.addr().to_string();
    let load = loadgen::run(&addr, &bundles, 3, spec.seed).unwrap();
    assert_eq!(load.failures(), 0);
    assert_eq!(load.uploads(), spec.homes);
    assert_eq!(handle.state().snapshot_json(), offline);
    handle.shutdown();
    handle.join();
}

/// Chaos parity: a home the offline pool crash-isolates is the same
/// home the server's `catch_unwind` isolates — both reports exclude it,
/// so the byte identity survives injected failures too.
#[test]
fn chaos_panic_homes_are_excluded_identically_on_both_paths() {
    let spec = CampaignSpec {
        chaos_panic_homes: vec![1],
        ..small_spec()
    };
    let offline = offline_report_json(&spec);
    let bundles = campaign_bundles(&spec);
    assert!(bundles[1].header.chaos_panic);

    let handle = server_for(&spec, 2);
    let addr = handle.addr().to_string();
    let load = loadgen::run(&addr, &bundles, 2, spec.seed).unwrap();
    // Exactly the chaos home fails; every other home lands.
    assert_eq!(load.failures(), 1);
    assert_eq!(load.uploads(), spec.homes - 1);
    let stats = handle.state().stats_report();
    assert_eq!(stats.uploads_failed, 1);
    assert_eq!(stats.uploads_ok, spec.homes - 1);
    assert_eq!(handle.state().snapshot_json(), offline);
    handle.shutdown();
    handle.join();
}
