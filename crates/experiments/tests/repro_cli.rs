//! CLI-surface pins for the `repro` binary.
//!
//! These run the real executable with arguments that must fail fast —
//! no simulation is paid for — and pin the contract that a typo always
//! comes back with the complete subcommand listing. A subcommand that
//! exists but is missing from [`usage_hint`] is invisible to anyone
//! exploring the tool, so the listing itself is under test.

use std::process::Command;

fn repro(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("run repro");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn unknown_artifact_lists_every_subcommand() {
    let (code, stderr) = repro(&["no-such-artifact"]);
    assert_eq!(code, 2, "unknown artifact must exit 2 before any work");
    // Every dispatchable subcommand must appear in the hint. This list
    // is the test's copy of the CLI surface: extending `main` without
    // extending `usage_hint` fails here.
    for sub in [
        "all",
        "table2..table13",
        "figure2..figure5",
        "portscan",
        "dad",
        "variants",
        "tracking",
        "enterprise",
        "reachability",
        "json",
        "fleet",
        "mesh",
        "wanscan",
        "bench-json",
        "serve",
        "upload",
        "stats",
        "--scenario <preset>",
    ] {
        assert!(
            stderr.contains(sub),
            "usage hint is missing {sub:?}: {stderr}"
        );
    }
    assert!(
        stderr.contains("scenario presets:"),
        "hint must enumerate the fault presets: {stderr}"
    );
}

#[test]
fn mesh_rejects_unknown_flags_before_simulating() {
    let (code, stderr) = repro(&["mesh", "--no-such-flag"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown mesh flag"), "{stderr}");
}

#[test]
fn fleet_rejects_out_of_range_mesh_fraction() {
    let (code, stderr) = repro(&["fleet", "4", "--mesh-per-mille", "1001"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("--mesh-per-mille"), "{stderr}");
}
