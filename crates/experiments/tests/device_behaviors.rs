//! Per-device behavioural tests for the paper's named findings, measured
//! through the full simulate-capture-analyze path.

use v6brick_core::observe::DeviceObservation;
use v6brick_devices::profile::DeviceProfile;
use v6brick_devices::registry;
use v6brick_experiments::{scenario, NetworkConfig};
use v6brick_net::dns::Name;
use v6brick_net::ipv6::Ipv6AddrExt;

fn profiles(ids: &[&str]) -> Vec<DeviceProfile> {
    ids.iter().map(|id| registry::by_id(id)).collect()
}

fn observe(config: NetworkConfig, id: &str) -> DeviceObservation {
    let run = scenario::run_with_profiles(config, &profiles(&[id]));
    run.analysis.device(id).cloned().expect("device analyzed")
}

#[test]
fn addressless_devices_probe_from_unspecified() {
    // §5.1.2: eight devices multicast NDP from `::` without ever
    // configuring an address. Representative: the Miele dishwasher.
    let o = observe(NetworkConfig::Ipv6Only, "miele_dishwasher");
    assert!(o.ndp_traffic, "NDP present");
    assert!(!o.has_v6_addr(), "no address ever configured");
    assert!(o.active_v6.is_empty());
}

#[test]
fn aqara_hub_never_performs_dad() {
    // §5.2.1: the Aqara hubs assign EUI-64 addresses without any DAD.
    let o = observe(NetworkConfig::Ipv6Only, "aqara_hub");
    assert!(o.has_v6_addr());
    assert!(o.dad_probed.is_empty(), "no DAD probes at all");
    // And its addresses are EUI-64 (the paper's observation that the four
    // full DAD-skippers are all EUI-64 devices).
    assert!(o.all_addrs().iter().any(|a| a.is_eui64()));
}

#[test]
fn compliant_device_dads_every_address() {
    let o = observe(NetworkConfig::Ipv6Only, "google_home_mini");
    // Each assigned address was probed before use... except temporaries
    // announced mid-churn, which the paper also counts separately. The
    // boot addresses (LLA + first GUAs) must all be probed.
    assert!(!o.dad_probed.is_empty());
    for a in &o.dns_src_v6 {
        assert!(o.dad_probed.contains(a), "DNS source {a} was DAD'd");
    }
}

#[test]
fn echo_dot2_gets_gua_only_with_ipv4() {
    // Table 4's speaker "+2 GUA": the 2nd-gen Echo Dot only brings up a
    // global address when IPv4 is present.
    let v6 = observe(NetworkConfig::Ipv6Only, "echo_dot_2");
    assert!(v6.has_v6_addr(), "LLA exists");
    assert!(
        !v6.active_v6.iter().any(|a| a.is_global_unicast()),
        "no *active* GUA in IPv6-only (the latent EUI-64 assignment is
         announced but never used)"
    );
    assert!(!v6.v6_internet_data());
    let dual = observe(NetworkConfig::DualStack, "echo_dot_2");
    assert!(dual.active_v6.iter().any(|a| a.is_global_unicast()));
    assert!(dual.v6_internet_data(), "and it carries v6 data there");
}

#[test]
fn thermopro_needs_v4_for_any_addressing() {
    // Table 4's health "+1 address".
    let v6 = observe(NetworkConfig::Ipv6Only, "thermopro_sensor");
    assert!(v6.ndp_traffic && !v6.has_v6_addr());
    let dual = observe(NetworkConfig::DualStack, "thermopro_sensor");
    assert!(dual.has_v6_addr());
    assert!(dual.active_v6.iter().any(|a| a.is_global_unicast()));
}

#[test]
fn smartlife_hub_queries_tuya_domain_a_only() {
    // §5.1.3's irony: a2.tuyaus.com has AAAA records the hub never asks
    // for — it A-queries the name even over IPv6 transport.
    let o = observe(NetworkConfig::Ipv6Only, "smartlife_hub");
    let tuya = Name::new("a2.tuyaus.com").unwrap();
    assert!(o.a_q_v6.contains(&tuya), "A query over v6 transport");
    assert!(!o.aaaa_q_v6.contains(&tuya), "never an AAAA");
    assert!(o.a_only_v6_names().contains(&tuya));
    // Yet the hub still transmits v6 data — its hard-coded fallback.
    assert!(o.v6_internet_data());
}

#[test]
fn ikea_gateway_transmits_without_dns() {
    // Table 10: IKEA has global data but no DNS over IPv6 (hard-coded
    // endpoint).
    let o = observe(NetworkConfig::Ipv6Only, "ikea_gateway");
    assert!(o.aaaa_q_v6.is_empty() && o.a_q_v6.is_empty(), "no v6 DNS");
    assert!(o.v6_internet_data(), "but v6 data flows");
}

#[test]
fn echo_spot_resolves_but_never_connects_v6() {
    // Table 10: DNS over IPv6 yes, global data no.
    let o = observe(NetworkConfig::Ipv6Only, "echo_spot");
    assert!(!o.aaaa_q_v6.is_empty());
    assert!(!o.aaaa_pos_v6.is_empty(), "answers arrive");
    assert!(!o.v6_internet_data(), "but its TCP client is v4-bound");
}

#[test]
fn samsung_fridge_sources_traffic_from_stateful_address() {
    // §5.2.1: the Fridge is one of four devices actually using its
    // stateful DHCPv6 address.
    let run = scenario::run_with_profiles(
        NetworkConfig::Ipv6OnlyStateful,
        &profiles(&["samsung_fridge"]),
    );
    let o = run.analysis.device("samsung_fridge").unwrap();
    assert!(o.dhcpv6_stateful, "solicited an IA_NA");
    let stateful: Vec<_> = o.dhcpv6_addrs.iter().collect();
    assert!(!stateful.is_empty());
    assert!(
        stateful.iter().any(|a| o.dns_src_v6.contains(a)),
        "DNS rides the stateful address: {stateful:?} vs {:?}",
        o.dns_src_v6
    );
    // Its EUI-64 address still leaks via the echo probe.
    assert!(o
        .active_v6
        .iter()
        .any(|a| a.is_eui64() && a.is_global_unicast()));
}

#[test]
fn samsung_tv_hides_traffic_behind_privacy_gua() {
    // §5.4.1: the TV forms an EUI-64 GUA but sources DNS/data from a
    // privacy address; only connectivity probes use the stable one.
    let o = observe(NetworkConfig::Ipv6Only, "samsung_tv");
    let eui: Vec<_> = o
        .active_v6
        .iter()
        .filter(|a| a.is_global_unicast() && a.is_eui64())
        .collect();
    assert!(!eui.is_empty(), "the EUI-64 GUA is active (probe)");
    for a in &o.dns_src_v6 {
        assert!(!a.is_eui64(), "DNS never from the EUI-64 address");
    }
    for a in &o.data_src_v6 {
        assert!(!a.is_eui64(), "data never from the EUI-64 address");
    }
}

#[test]
fn apple_tv_uses_privacy_addresses_and_svcb() {
    let o = observe(NetworkConfig::Ipv6Only, "apple_tv");
    for a in o.active_v6.iter().filter(|a| a.is_global_unicast()) {
        assert!(!a.is_eui64(), "Apple uses RFC 8981 temporaries: {a}");
    }
    assert!(!o.svcb_q.is_empty(), "SVCB queries (HTTP/3 probing)");
    assert!(!o.https_q.is_empty());
}

#[test]
fn vizio_needs_dhcpv6_for_dns() {
    // §5.2.1: Vizio cannot use RDNSS; it resolves only when stateless
    // DHCPv6 exists.
    let baseline = observe(NetworkConfig::Ipv6Only, "vizio_tv");
    assert!(baseline.dns_over_v6());
    let rdnss_only = observe(NetworkConfig::Ipv6OnlyRdnssOnly, "vizio_tv");
    assert!(!rdnss_only.dns_over_v6(), "no DNS without DHCPv6");
    assert!(rdnss_only.has_v6_addr(), "SLAAC still works");
}

#[test]
fn matter_devices_speak_local_ipv6_without_internet() {
    // §5.2.3: home-automation Matter devices transmit locally (ULA
    // sources, multicast) but never to the Internet.
    for id in ["tuya_matter_plug", "leviton_matter_plug"] {
        let o = observe(NetworkConfig::Ipv6Only, id);
        assert!(o.v6_local_bytes > 0, "{id}: local Matter chatter");
        assert!(!o.v6_internet_data(), "{id}: no global traffic");
        assert!(
            o.all_addrs().iter().any(|a| a.is_unique_local()),
            "{id}: fabric ULA assigned"
        );
    }
}

#[test]
fn lla_rotators_accumulate_multiple_llas() {
    // §5.2.1: only four devices rotate their LLA. Across the six-run
    // union this shows as >1 link-local per rotator; here a single run
    // with the right seed demonstrates at least the mechanism.
    let runs = [
        NetworkConfig::Ipv6Only,
        NetworkConfig::Ipv6OnlyRdnssOnly,
        NetworkConfig::Ipv6OnlyStateful,
        NetworkConfig::DualStack,
        NetworkConfig::DualStackStateful,
    ];
    let mut llas = std::collections::BTreeSet::new();
    for c in runs {
        let o = observe(c, "homepod_mini");
        llas.extend(o.all_addrs().into_iter().filter(|a| a.is_link_local()));
    }
    assert!(llas.len() >= 2, "HomePod rotates its LLA: {llas:?}");
}

#[test]
fn no_rotation_for_stable_lla_devices() {
    let runs = [NetworkConfig::Ipv6Only, NetworkConfig::DualStack];
    let mut llas = std::collections::BTreeSet::new();
    for c in runs {
        let o = observe(c, "echo_plus");
        llas.extend(o.all_addrs().into_iter().filter(|a| a.is_link_local()));
    }
    assert_eq!(llas.len(), 1, "the Echo Plus keeps one EUI-64 LLA");
    assert!(llas.iter().next().unwrap().is_eui64());
}
