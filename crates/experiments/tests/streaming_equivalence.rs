//! The streaming analysis pipeline must be indistinguishable from the
//! buffered one, and the parallel suite from the serial one.
//!
//! 1. A `StreamingAnalyzer` fed frame-by-frame from the simulator's
//!    capture tap produces an `ExperimentAnalysis` byte-identical (via
//!    serde_json) to buffering the whole capture and running `analyze`.
//! 2. `ExperimentSuite` construction folds runs in `NetworkConfig::ALL`
//!    order for any worker count, so the Table 3 / Table 5 renderings
//!    compare equal between the serial and parallel paths.

use v6brick_core::observe::{self, StreamingAnalyzer};
use v6brick_devices::registry;
use v6brick_devices::stack::IotDevice;
use v6brick_experiments::suite::ExperimentSuite;
use v6brick_experiments::{scenario, tables, NetworkConfig};
use v6brick_net::Mac;
use v6brick_sim::{Internet, Router, SimTime, SimulationBuilder};

/// Run one household simulation with BOTH the buffered capture and a
/// streaming sink attached, so the two analysis paths observe exactly
/// the same tap.
fn both_paths(config: NetworkConfig, ids: &[&str]) -> (String, String) {
    let profiles: Vec<_> = ids.iter().map(|id| registry::by_id(id)).collect();
    let zones = scenario::build_zones(&profiles);
    let mut b = SimulationBuilder::new(Router::new(config.router_config()), Internet::new(zones));
    let macs: Vec<(Mac, String)> = profiles
        .iter()
        .map(|p| {
            b.add_host(Box::new(IotDevice::new(p.clone())));
            (p.mac, p.id.clone())
        })
        .collect();
    b.add_sink(Box::new(StreamingAnalyzer::new(
        &macs,
        scenario::lan_prefix(),
    )));
    let mut sim = b.seed(0x5eed ^ config as u64).build();
    sim.run_until(SimTime::from_secs(180));

    let capture = sim.take_capture();
    let streamed = sim
        .take_sinks()
        .pop()
        .unwrap()
        .into_any()
        .downcast::<StreamingAnalyzer>()
        .unwrap();
    assert_eq!(
        streamed.frames_fed(),
        capture.len() as u64,
        "the sink must see every tapped frame"
    );
    let buffered = observe::analyze(&capture, &macs, scenario::lan_prefix());
    (
        serde_json::to_string(&buffered).unwrap(),
        serde_json::to_string(&streamed.finish()).unwrap(),
    )
}

#[test]
fn streaming_equals_buffered_ipv6_only() {
    let (buffered, streamed) = both_paths(
        NetworkConfig::Ipv6Only,
        &["google_home_mini", "echo_show_5", "aqara_hub"],
    );
    assert_eq!(buffered, streamed);
}

#[test]
fn streaming_equals_buffered_dual_stack() {
    let (buffered, streamed) = both_paths(
        NetworkConfig::DualStack,
        &["echo_show_5", "nest_camera", "apple_tv", "wyze_cam"],
    );
    assert_eq!(buffered, streamed);
}

#[test]
fn parallel_suite_is_byte_deterministic() {
    let ids = [
        "google_home_mini",
        "echo_show_5",
        "nest_camera",
        "apple_tv",
        "wyze_cam",
        "aqara_hub",
    ];
    let profiles = || ids.iter().map(|id| registry::by_id(id)).collect();
    let serial = ExperimentSuite::run_configs_with_workers(profiles(), &NetworkConfig::ALL, 1);
    let parallel = ExperimentSuite::run_configs_with_workers(profiles(), &NetworkConfig::ALL, 4);

    // Runs fold in NetworkConfig::ALL order regardless of worker count...
    let order: Vec<NetworkConfig> = parallel.runs().iter().map(|r| r.config).collect();
    assert_eq!(order, NetworkConfig::ALL.to_vec());

    // ...and the rendered Table 3 / Table 5 artifacts are byte-identical.
    assert_eq!(
        tables::table3(&serial).to_string(),
        tables::table3(&parallel).to_string()
    );
    assert_eq!(
        tables::table5(&serial).to_string(),
        tables::table5(&parallel).to_string()
    );
}
