//! Crash-injection harness for the durable daemon.
//!
//! The acceptance spec of the durability layer: SIGKILL a real
//! `v6brickd` process (via `repro serve`) at randomized points of an
//! upload campaign, restart it on the same data directory, replay the
//! client's retries, and require the recovered `SNAPSHOT` to be
//! **byte-identical** to the offline `fleet::run` JSON oracle — as if
//! the crash never happened. SIGKILL gives no destructor a chance, so
//! everything the recovered daemon knows came through the write-ahead
//! log and snapshot files alone. A torn-tail variant scribbles a
//! partial record where the kill cut the WAL; a SIGTERM variant pins
//! the graceful-drain path end to end.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::OnceLock;
use std::time::Duration;
use v6brick_experiments::fleet::CampaignSpec;
use v6brick_experiments::serve::{campaign_bundles, offline_report_json};
use v6brick_fleet::home_seed;
use v6brick_ingest::{Client, UploadBundle};

const HOMES: u64 = 9;
const CHUNK: usize = 900;

fn spec() -> CampaignSpec {
    CampaignSpec {
        homes: HOMES,
        seed: 0xc4a5,
        workers: 2,
        device_range: (2, 3),
        duration_s: 45,
        ..Default::default()
    }
}

struct Oracle {
    bundles: Vec<UploadBundle>,
    offline: String,
}

/// The campaign is simulated once and shared across every test in this
/// binary — the oracle bytes never depend on who reads them.
fn oracle() -> &'static Oracle {
    static ORACLE: OnceLock<Oracle> = OnceLock::new();
    ORACLE.get_or_init(|| {
        let spec = spec();
        Oracle {
            bundles: campaign_bundles(&spec),
            offline: offline_report_json(&spec),
        }
    })
}

fn temp_dir(tag: &str, n: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("v6brick-crash-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A real daemon process on an ephemeral port. Keeps the stdout pipe
/// open for the process's whole life (the final STATS line must have
/// somewhere to go) and reads it lazily.
struct Daemon {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: String,
}

fn start_daemon(dir: &Path, snapshot_every: u64) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--seed",
            &spec().seed.to_string(),
            "--data-dir",
            dir.to_str().expect("utf-8 temp path"),
            "--snapshot-every",
            &snapshot_every.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            stdout.read_line(&mut line).expect("daemon stdout"),
            0,
            "daemon exited before announcing its address"
        );
        if let Some(rest) = line.strip_prefix("v6brickd listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .to_string();
        }
    };
    Daemon {
        child,
        stdout,
        addr,
    }
}

impl Daemon {
    fn client(&self) -> Client {
        Client::connect_retry(self.addr.as_str(), 100, Duration::from_millis(20))
            .expect("connect to daemon")
    }

    /// Read the rest of stdout (the final STATS JSON) after the process
    /// exits.
    fn drain_stdout(&mut self) -> String {
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut self.stdout, &mut rest).expect("daemon stdout");
        rest
    }
}

/// Upload bundles `[..k]`, one ack at a time, so "killed after K acks"
/// is a precise statement about what the WAL must already hold.
fn upload_prefix(client: &mut Client, k: usize) {
    for bundle in &oracle().bundles[..k] {
        let ack = client.upload_bundle(bundle, CHUNK).expect("upload acked");
        assert_eq!(ack.home_index, bundle.header.home_index);
    }
}

/// The tentpole acceptance: three randomized SIGKILL points, each
/// recovered to oracle-identical bytes with client retries deduped
/// exactly-once.
#[test]
fn sigkill_at_randomized_points_recovers_byte_identically() {
    let oracle = oracle();
    for trial in 0..3u64 {
        // 1..=HOMES-2 acked uploads before the kill: always something
        // to recover, never a complete campaign.
        let k = (1 + home_seed(0xdead, trial) % (HOMES - 2)) as usize;
        let dir = temp_dir("sigkill", trial);

        let mut daemon = start_daemon(&dir, 4);
        let mut client = daemon.client();
        upload_prefix(&mut client, k);
        // SIGKILL: no drain, no fsync, no destructors.
        daemon.child.kill().expect("kill daemon");
        daemon.child.wait().expect("reap daemon");
        drop(client);

        let mut daemon = start_daemon(&dir, 4);
        let mut client = daemon.client();
        let stats = client.stats().expect("stats");
        assert!(
            stats.contains("\"recovered_from\":\"wal\"")
                || stats.contains("\"recovered_from\":\"snapshot\"")
                || stats.contains("\"recovered_from\":\"snapshot+wal\""),
            "trial {trial} (k={k}): daemon did not recover state: {stats}"
        );
        // The client never saw which acks died with the server, so it
        // retries everything; the absorbed-set dedupe makes the retries
        // exactly-once.
        for bundle in &oracle.bundles {
            client.upload_bundle(bundle, CHUNK).expect("retry acked");
        }
        let stats = client.stats().expect("stats");
        assert!(
            stats.contains(&format!("\"uploads_duplicate\":{k}")),
            "trial {trial}: expected exactly {k} deduped retries: {stats}"
        );
        assert_eq!(
            client.snapshot().expect("snapshot"),
            oracle.offline,
            "trial {trial} (k={k}): recovered population diverged from the oracle"
        );
        client.shutdown_server().expect("drain");
        drop(client);
        let status = daemon.child.wait().expect("reap daemon");
        assert!(status.success(), "trial {trial}: unclean exit: {status}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A crash can also tear the WAL mid-record. Scribble a partial record
/// (valid head, missing payload) where the kill cut the file: recovery
/// must truncate the tear, keep every whole record, and still converge
/// to the oracle bytes.
#[test]
fn torn_wal_tail_is_truncated_and_recovery_converges() {
    let oracle = oracle();
    let dir = temp_dir("torn", 0);

    // Snapshot at 4 acks, one more WAL record after it, then die.
    let mut daemon = start_daemon(&dir, 4);
    let mut client = daemon.client();
    upload_prefix(&mut client, 5);
    daemon.child.kill().expect("kill daemon");
    daemon.child.wait().expect("reap daemon");
    drop(client);

    let wal = dir.join(v6brick_ingest::wal::WAL_FILE);
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal)
        .expect("open wal for appending");
    // len=64 declared, seq head complete, only 3 of 64 payload bytes.
    file.write_all(&[64, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3])
        .expect("scribble torn record");
    drop(file);
    // The tear is visible to a direct scan: one whole record (the
    // post-snapshot upload) plus a Torn tail at its end.
    let scan = v6brick_ingest::wal::scan(&wal, spec().seed)
        .expect("scan survives a torn tail")
        .expect("wal exists");
    assert_eq!(scan.records.len(), 1);
    assert!(
        matches!(scan.tail, v6brick_ingest::wal::WalTail::Torn { .. }),
        "expected a torn tail, got {:?}",
        scan.tail
    );

    let mut daemon = start_daemon(&dir, 4);
    let mut client = daemon.client();
    for bundle in &oracle.bundles {
        client.upload_bundle(bundle, CHUNK).expect("retry acked");
    }
    assert_eq!(
        client.snapshot().expect("snapshot"),
        oracle.offline,
        "recovery after a torn tail diverged from the oracle"
    );
    client.shutdown_server().expect("drain");
    drop(client);
    assert!(daemon.child.wait().expect("reap daemon").success());
    // Whatever the daemon left behind parses cleanly end to end: the
    // tear was truncated before the retries were appended.
    let scan = v6brick_ingest::wal::scan(&wal, spec().seed)
        .expect("final wal is intact")
        .expect("wal exists");
    assert_eq!(scan.tail, v6brick_ingest::wal::WalTail::Clean);
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM is the graceful path: the daemon drains, fsyncs + closes the
/// WAL, writes a final snapshot, and exits 0 with its STATS on stdout.
#[cfg(target_os = "linux")]
#[test]
fn sigterm_drains_persists_and_exits_cleanly() {
    let dir = temp_dir("sigterm", 0);
    let mut daemon = start_daemon(&dir, 0); // pure-WAL mode
    let mut client = daemon.client();
    upload_prefix(&mut client, 3);
    drop(client);

    let pid = daemon.child.id();
    let killed = Command::new("sh")
        .args(["-c", &format!("kill -TERM {pid}")])
        .status()
        .expect("send SIGTERM");
    assert!(killed.success());
    let status = daemon.child.wait().expect("reap daemon");
    assert!(status.success(), "SIGTERM exit was not clean: {status}");
    let stats = daemon.drain_stdout();
    assert!(
        stats.contains("\"wal_records\":3"),
        "final STATS should report the drained WAL: {stats}"
    );

    // The graceful exit left a clean, replayable WAL: all three acked
    // uploads recover, nothing else.
    let recovered = v6brick_ingest::recover(&dir, spec().seed).expect("recover after SIGTERM");
    assert_eq!(recovered.replayed, 3);
    assert_eq!(recovered.report.homes, 3);
    let _ = std::fs::remove_dir_all(&dir);
}
