//! Checkpoint/resume determinism, pinned at every boundary.
//!
//! A fleet campaign interrupted after *any* chunk and resumed — even
//! with a different worker count — must serialize byte-identically to
//! the uninterrupted run. This holds because every home is a pure
//! function of `(campaign_seed, index)` and the report merge is a
//! commutative monoid, so the checkpoint only ever stores a prefix sum
//! the resumed suffix completes. Mismatched specs are typed errors,
//! and chaos-injected failures ride through pause/resume unchanged.

use std::path::{Path, PathBuf};
use v6brick_experiments::fleet::{self, CampaignSpec};
use v6brick_fleet::CheckpointError;

const EVERY: u64 = 6;

fn spec(workers: usize) -> CampaignSpec {
    CampaignSpec {
        homes: 20,
        seed: 0xc4ec,
        workers,
        device_range: (2, 3),
        duration_s: 45,
        ..Default::default()
    }
}

fn temp_path(tag: &str, n: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "v6brick-ckresume-{tag}-{}-{n}.bin",
        std::process::id()
    ))
}

fn json(report: &v6brick_core::population::PopulationReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

/// Run the campaign as pause/resume legs, interrupting after every
/// chunk boundary, and return the completed report's JSON.
fn run_interrupted(spec: &CampaignSpec, path: &Path) -> String {
    let mut legs = 0u64;
    let report = loop {
        let leg = fleet::run_checkpointed(spec, path, EVERY, legs > 0, Some(1))
            .expect("checkpointed leg");
        legs += 1;
        assert!(legs <= spec.homes / EVERY + 2, "leg runaway");
        if let Some(report) = leg.report {
            break report;
        }
    };
    // 20 homes at 6 per chunk: 4 chunks, each its own leg.
    assert_eq!(legs, spec.homes.div_ceil(EVERY));
    json(&report)
}

/// The acceptance matrix: interrupted-at-every-boundary equals
/// uninterrupted, at 1, 2, and 8 workers — and across them.
#[test]
fn interrupted_runs_match_uninterrupted_at_every_worker_count() {
    let baseline = json(&fleet::run(&spec(1)));
    for (n, workers) in [1usize, 2, 8].into_iter().enumerate() {
        let spec = spec(workers);
        let uninterrupted = json(&fleet::run(&spec));
        assert_eq!(
            uninterrupted, baseline,
            "{workers} workers diverged before checkpointing was even involved"
        );
        let path = temp_path("matrix", n as u64);
        let resumed = run_interrupted(&spec, &path);
        assert_eq!(
            resumed, baseline,
            "pause/resume at {workers} workers changed the report bytes"
        );
        let _ = std::fs::remove_file(&path);
    }
}

/// A checkpoint written by a 1-worker leg finishes under 8 workers (and
/// vice versa) — worker count is execution detail, not campaign
/// identity, so it is deliberately outside the fingerprint.
#[test]
fn resume_across_worker_counts_is_byte_identical() {
    let baseline = json(&fleet::run(&spec(1)));
    let path = temp_path("xworkers", 0);
    let paused =
        fleet::run_checkpointed(&spec(1), &path, EVERY, false, Some(2)).expect("paused leg");
    assert!(paused.report.is_none());
    assert_eq!(paused.next_index, 2 * EVERY);
    let finished =
        fleet::run_checkpointed(&spec(8), &path, EVERY, true, None).expect("resumed leg");
    assert_eq!(finished.resumed_from, Some(2 * EVERY));
    assert_eq!(json(&finished.report.expect("complete")), baseline);
    let _ = std::fs::remove_file(&path);
}

/// Resuming under a different campaign is a typed `Mismatch`, never a
/// silently wrong merge.
#[test]
fn mismatched_spec_is_a_typed_error() {
    let path = temp_path("mismatch", 0);
    let paused =
        fleet::run_checkpointed(&spec(2), &path, EVERY, false, Some(1)).expect("paused leg");
    assert!(paused.report.is_none());
    for wrong in [
        CampaignSpec {
            seed: 0xbad,
            ..spec(2)
        },
        CampaignSpec {
            homes: 21,
            ..spec(2)
        },
        CampaignSpec {
            duration_s: 46,
            ..spec(2)
        },
    ] {
        assert!(
            matches!(
                fleet::run_checkpointed(&wrong, &path, EVERY, true, None),
                Err(CheckpointError::Mismatch { .. })
            ),
            "a different campaign resumed someone else's checkpoint"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Chaos-panicked homes survive the pause/resume boundary: the failure
/// recorded in one leg is still in the completed report, and the
/// serialized aggregates still match the uninterrupted chaos run.
#[test]
fn chaos_failures_ride_through_pause_and_resume() {
    let chaos_spec = CampaignSpec {
        chaos_panic_homes: vec![3],
        ..spec(2)
    };
    let uninterrupted = fleet::run(&chaos_spec);
    assert_eq!(uninterrupted.failures.len(), 1);
    let path = temp_path("chaos", 0);
    let resumed = run_interrupted(&chaos_spec, &path);
    assert_eq!(resumed, json(&uninterrupted));
    // And the failure metadata itself survives the checkpoint file.
    let complete = fleet::run_checkpointed(&chaos_spec, &path, EVERY, false, None)
        .expect("complete run")
        .report
        .expect("complete");
    assert_eq!(complete.failures.len(), 1);
    assert_eq!(complete.failures[0].index, 3);
    let _ = std::fs::remove_file(&path);
}
