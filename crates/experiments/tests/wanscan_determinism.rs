//! WAN-scan determinism regression: the serialized `ExposureReport` may
//! not depend on worker count, merge order, or shard boundaries, and the
//! firewall-policy lattice (open >= pinholed >= default-deny per cell)
//! must hold on every campaign. This pins the chain from home planning
//! through per-policy simulation, probe-wave classification, in-order
//! reduction, and the integer-only report serialization.

use v6brick_experiments::wanscan::{self, WanScanSpec};

/// Small homes and a short settle keep the test fast while still drawing
/// several network configs and firewall policies per campaign.
fn spec(workers: usize) -> WanScanSpec {
    WanScanSpec {
        homes: 4,
        seed: 0x5ca9,
        workers,
        device_range: (2, 3),
        settle_s: 45,
        ..Default::default()
    }
}

#[test]
fn worker_count_does_not_change_the_report() {
    let serial = serde_json::to_string(&wanscan::run(&spec(1))).unwrap();
    let parallel = serde_json::to_string(&wanscan::run(&spec(3))).unwrap();
    assert_eq!(serial, parallel, "report must not depend on worker count");
}

#[test]
fn merged_shards_equal_one_campaign() {
    // Streaming aggregation must compose: scanning half the homes into
    // each of two reports and merging matches the one-shot campaign.
    use v6brick_core::exposure::ExposureReport;
    use v6brick_fleet::{plan_homes, run_indexed};
    use v6brick_sim::SimTime;

    let s = spec(2);
    let (dev_min, dev_max) = s.device_range;
    let plans = plan_homes(s.seed, s.homes, &s.mix, dev_min..=dev_max);
    let settle = SimTime::from_secs(s.settle_s);

    let run_slice = |homes: Vec<_>| {
        run_indexed(
            homes,
            2,
            |home: v6brick_fleet::HomeSpec<_>| {
                wanscan::scan_home(&home, &s.policies, &s.plan, settle, false)
            },
            ExposureReport::new(s.seed),
            |report, _i, outcome| report.absorb_home(&outcome),
        )
    };

    let mut all = plans.clone();
    let tail = all.split_off(all.len() / 2);
    let mut merged = run_slice(all);
    merged.merge(&run_slice(tail));

    let whole = wanscan::run(&s);
    assert_eq!(
        serde_json::to_string(&merged).unwrap(),
        serde_json::to_string(&whole).unwrap(),
        "merge of shard reports must equal the one-shot campaign"
    );
}

#[test]
fn policy_lattice_holds_per_cell() {
    let report = wanscan::run(&spec(2));
    assert!(report.failures.is_empty(), "no home may crash");
    assert_eq!(
        report.monotonic_violations(),
        Vec::<String>::new(),
        "a stricter firewall policy may never expose more than a looser one"
    );
}

/// The mesh axis keeps every determinism and lattice guarantee: a
/// campaign where some homes sit behind 6LoWPAN border routers must
/// serialize byte-identically across worker counts and reruns, and the
/// firewall lattice must hold through the extra transit hop.
#[test]
fn mesh_campaign_is_deterministic_and_lattice_clean() {
    let mesh_spec = |workers: usize| WanScanSpec {
        mesh_per_mille: 500,
        ..spec(workers)
    };
    let serial = wanscan::run(&mesh_spec(1));
    let parallel = wanscan::run(&mesh_spec(3));
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "mesh report must not depend on worker count"
    );
    assert!(serial.failures.is_empty(), "no meshed home may crash");
    assert_eq!(serial.monotonic_violations(), Vec::<String>::new());

    // And the axis is real: an all-mesh campaign diverges from the
    // all-Ethernet one (the border router refuses v4 and re-times v6),
    // while per_mille=0 reproduces the pre-mesh bytes exactly.
    let ethernet = wanscan::run(&spec(2));
    let zero = wanscan::run(&WanScanSpec {
        mesh_per_mille: 0,
        ..spec(2)
    });
    assert_eq!(
        serde_json::to_string(&ethernet).unwrap(),
        serde_json::to_string(&zero).unwrap(),
        "mesh_per_mille=0 must be byte-identical to the pre-mesh campaign"
    );
}
