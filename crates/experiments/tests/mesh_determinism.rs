//! Mesh-campaign determinism regression: the second link-layer family
//! may not cost the fleet any of its guarantees. A campaign with homes
//! behind 6LoWPAN border routers must serialize byte-identically across
//! worker counts and reruns, its mesh draw must be stable per home, and
//! the population aggregates must credit *leaf devices* — traffic that
//! reaches the Ethernet tap wearing the border router's MAC is only
//! countable because the mesh-capture attribution rebinds it.

use v6brick_experiments::fleet::{self, home_is_mesh, CampaignSpec};
use v6brick_experiments::NetworkConfig;

fn mesh_spec(workers: usize) -> CampaignSpec {
    CampaignSpec {
        homes: 10,
        seed: 0x6e50,
        workers,
        device_range: (2, 3),
        duration_s: 60,
        mesh_per_mille: 500,
        ..Default::default()
    }
}

#[test]
fn worker_count_does_not_change_the_mesh_report() {
    let serial = serde_json::to_string(&fleet::run(&mesh_spec(1))).unwrap();
    for workers in [2, 8] {
        let parallel = serde_json::to_string(&fleet::run(&mesh_spec(workers))).unwrap();
        assert_eq!(
            serial, parallel,
            "mesh campaign diverged at {workers} workers"
        );
    }
    // Rerun determinism: the same spec twice is the same bytes.
    let again = serde_json::to_string(&fleet::run(&mesh_spec(1))).unwrap();
    assert_eq!(serial, again, "mesh campaign must be rerun-stable");
}

#[test]
fn campaign_mixes_both_link_layers_and_labels_them() {
    let report = fleet::run(&mesh_spec(2));
    assert!(report.failures.is_empty(), "no home may crash");
    let labels: Vec<&str> = report.homes_by_config.keys().map(String::as_str).collect();
    assert!(
        labels.iter().any(|l| l.ends_with("+ mesh")),
        "a 500 per-mille draw over 10 homes must select some mesh homes: {labels:?}"
    );
    assert!(
        labels.iter().any(|l| !l.ends_with("+ mesh")),
        "…and leave some homes on Ethernet: {labels:?}"
    );
    // The draw is a pure function of the home seed, so the campaign's
    // split is exactly what the helper predicts.
    let meshed: u64 = (0..10)
        .filter(|&i| home_is_mesh(v6brick_fleet::home_seed(0x6e50, i), 500))
        .count() as u64;
    let labeled: u64 = report
        .homes_by_config
        .iter()
        .filter(|(l, _)| l.ends_with("+ mesh"))
        .map(|(_, n)| n)
        .sum();
    assert_eq!(meshed, labeled, "label split must match the per-home draw");
}

/// The attribution pin, at population scale: in an all-mesh, v6-only
/// campaign every LAN frame wears the border router's MAC, so the
/// per-device funnel stages are only countable because the mesh-capture
/// bindings rebound traffic to the leaves. The strongest statement is
/// equality: the mesh campaign's v6 funnel must match its Ethernet twin
/// stage for stage — the link change loses no attribution. (Only
/// `ndp_traffic` may differ: leaf ND is proxied by the border router.)
#[test]
fn all_mesh_campaign_still_credits_leaf_devices() {
    let spec = |mesh_per_mille: u32| CampaignSpec {
        homes: 4,
        seed: 0x6e51,
        workers: 2,
        device_range: (2, 3),
        mix: vec![(NetworkConfig::Ipv6Only, 1)],
        duration_s: 90,
        mesh_per_mille,
        ..Default::default()
    };
    let mesh = fleet::run(&spec(1000));
    let ethernet = fleet::run(&spec(0));
    assert!(mesh.failures.is_empty());
    assert!(mesh.devices > 0);
    assert!(
        mesh.homes_by_config.keys().all(|l| l.ends_with("+ mesh")),
        "per_mille=1000 must mesh every home"
    );
    assert!(
        mesh.funnel.active_gua > 0,
        "leaves must be credited with sourcing from their GUAs"
    );
    assert!(
        mesh.funnel.aaaa_q_v6 > 0,
        "leaf DNS over v6 must attribute through the border router"
    );
    assert_eq!(mesh.funnel.v6_addr, ethernet.funnel.v6_addr);
    assert_eq!(mesh.funnel.active_gua, ethernet.funnel.active_gua);
    assert_eq!(mesh.funnel.aaaa_q_v6, ethernet.funnel.aaaa_q_v6);
    assert_eq!(mesh.funnel.aaaa_pos_v6, ethernet.funnel.aaaa_pos_v6);
    assert_eq!(
        mesh.funnel.v6_internet_data,
        ethernet.funnel.v6_internet_data
    );
}

/// `mesh_per_mille: 0` is not just "no mesh homes" — it must reproduce
/// the pre-mesh campaign byte for byte, fingerprint included, so
/// existing checkpoints and CI baselines survive the new axis.
#[test]
fn zero_mesh_campaign_is_byte_identical_to_default() {
    let base = CampaignSpec {
        homes: 6,
        seed: 0x6e52,
        workers: 2,
        device_range: (2, 3),
        duration_s: 45,
        ..Default::default()
    };
    let explicit_zero = CampaignSpec {
        mesh_per_mille: 0,
        ..base.clone()
    };
    assert_eq!(
        serde_json::to_string(&fleet::run(&base)).unwrap(),
        serde_json::to_string(&fleet::run(&explicit_zero)).unwrap(),
    );
}
