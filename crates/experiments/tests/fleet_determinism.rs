//! Campaign-level determinism regression (ISSUE satellite #2): the same
//! campaign spec must produce a byte-identical `PopulationReport` JSON
//! at every worker count. This pins the whole chain — seed derivation,
//! streaming home planning, per-home simulation, worker-local partial
//! reports, the hierarchical merge, and the integer-only serialization
//! of the report.

use v6brick_experiments::fleet::{self, CampaignSpec};

/// 32 homes, seed 7. Small homes and a short window keep the test fast
/// while still exercising every network config in the default mix.
fn spec(workers: usize) -> CampaignSpec {
    CampaignSpec {
        homes: 32,
        seed: 7,
        workers,
        device_range: (2, 5),
        duration_s: 60,
        ..Default::default()
    }
}

#[test]
fn worker_count_does_not_change_the_report() {
    let serial = serde_json::to_string(&fleet::run(&spec(1))).unwrap();
    for workers in [2usize, 8] {
        let parallel = serde_json::to_string(&fleet::run(&spec(workers))).unwrap();
        assert_eq!(
            serial, parallel,
            "report must not depend on worker count (diverged at {workers})"
        );
    }
}

#[test]
fn population_pass_subset_matches_full_pass_report() {
    // The default campaign runs only the passes whose fields the
    // population report reads. Running every pass must produce the
    // byte-identical report — the extra passes only populate fields the
    // report never looks at.
    use v6brick_core::analysis::PassId;
    let subset = spec(4);
    let full = CampaignSpec {
        passes: PassId::ALL.to_vec(),
        ..spec(4)
    };
    assert_eq!(
        serde_json::to_string(&fleet::run(&subset)).unwrap(),
        serde_json::to_string(&fleet::run(&full)).unwrap(),
        "disabling report-irrelevant passes must not change the report"
    );
}

#[test]
fn merged_shards_equal_one_campaign() {
    // Streaming aggregation must compose: absorbing homes one campaign
    // at a time via `merge` matches absorbing them all at once. We model
    // shards by re-running the same homes split across two half-size
    // reports (shard = distinct fold targets, same planned homes).
    use v6brick_core::population::PopulationReport;
    use v6brick_fleet::{plan_homes, run_indexed};
    use v6brick_sim::SimTime;

    let s = spec(2);
    let (dev_min, dev_max) = s.device_range;
    let plans = plan_homes(s.seed, s.homes, &s.mix, dev_min..=dev_max);
    let duration = SimTime::from_secs(s.duration_s);

    let run_slice = |homes: Vec<_>| {
        run_indexed(
            homes,
            2,
            |home: v6brick_fleet::HomeSpec<_>| {
                let run = v6brick_experiments::scenario::run_with_profiles_seeded_for(
                    home.config,
                    &home.profiles,
                    home.seed,
                    duration,
                );
                (
                    run.config.label().to_string(),
                    run.analysis.devices,
                    run.functional,
                    run.frames,
                )
            },
            PopulationReport::new(s.seed),
            |report, _i, (label, devices, functional, frames)| {
                report.absorb_home(&label, &devices, &functional, frames);
            },
        )
    };

    let mut all = plans.clone();
    let tail = all.split_off(all.len() / 2);
    let mut merged = run_slice(all);
    merged.merge(&run_slice(tail));

    let whole = fleet::run(&s);
    assert_eq!(
        serde_json::to_string(&merged).unwrap(),
        serde_json::to_string(&whole).unwrap(),
        "merge of shard reports must equal the one-shot campaign"
    );
}
