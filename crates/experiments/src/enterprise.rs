//! Extension experiment (§7 future work): the enterprise-style IPv6-only
//! network where DHCPv6 operates **without SLAAC** (RA prefix `A=0`).
//!
//! The paper's Table 2 never tests this; its §7 names it as the obvious
//! next configuration. v6brick runs it: only devices with stateful
//! DHCPv6 clients can obtain a global address at all, so enterprise
//! networks are *strictly harsher* than the consumer IPv6-only rows.

use crate::render::TextTable;
use crate::scenario::{self, ExperimentRun};
use crate::NetworkConfig;
use v6brick_devices::registry;

/// Run the enterprise experiment over the full registry.
pub fn run() -> ExperimentRun {
    scenario::run_with_profiles(NetworkConfig::Ipv6OnlyEnterprise, &registry::build())
}

/// Render the comparison: enterprise vs the consumer IPv6-only baseline.
pub fn report() -> TextTable {
    let enterprise = run();
    let baseline = scenario::run(NetworkConfig::Ipv6Only);

    let mut t = TextTable::new(
        "Extension (paper §7): enterprise IPv6-only (DHCPv6 without SLAAC) vs consumer baseline",
    )
    .headers(["Metric", "Consumer IPv6-only", "Enterprise (A=0)"]);
    let count = |run: &ExperimentRun, f: &dyn Fn(&v6brick_core::DeviceObservation) -> bool| {
        run.analysis.count(|o| f(o)).to_string()
    };
    use v6brick_net::ipv6::Ipv6AddrExt;
    t.row([
        "NDP traffic".to_string(),
        count(&baseline, &|o| o.ndp_traffic),
        count(&enterprise, &|o| o.ndp_traffic),
    ]);
    t.row([
        "Any IPv6 address".to_string(),
        count(&baseline, &|o| o.has_v6_addr()),
        count(&enterprise, &|o| o.has_v6_addr()),
    ]);
    t.row([
        "Global address (active)".to_string(),
        count(&baseline, &|o| {
            o.active_v6.iter().any(|a| a.is_global_unicast())
        }),
        count(&enterprise, &|o| {
            o.active_v6.iter().any(|a| a.is_global_unicast())
        }),
    ]);
    t.row([
        "Stateful DHCPv6 exchange".to_string(),
        count(&baseline, &|o| o.dhcpv6_stateful),
        count(&enterprise, &|o| o.dhcpv6_stateful),
    ]);
    t.row([
        "DNS over IPv6".to_string(),
        count(&baseline, &|o| o.dns_over_v6()),
        count(&enterprise, &|o| o.dns_over_v6()),
    ]);
    t.row([
        "Internet IPv6 data".to_string(),
        count(&baseline, &|o| o.v6_internet_data()),
        count(&enterprise, &|o| o.v6_internet_data()),
    ]);
    t.row([
        "Functional".to_string(),
        baseline
            .functional
            .values()
            .filter(|f| **f)
            .count()
            .to_string(),
        enterprise
            .functional
            .values()
            .filter(|f| **f)
            .count()
            .to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6brick_devices::profile::DeviceProfile;
    use v6brick_net::ipv6::Ipv6AddrExt;

    fn profiles(ids: &[&str]) -> Vec<DeviceProfile> {
        ids.iter().map(|id| registry::by_id(id)).collect()
    }

    #[test]
    fn slaac_only_device_gets_no_global_address() {
        // The Echo Plus relies on SLAAC; with A=0 it never forms a GUA.
        let run = scenario::run_with_profiles(
            NetworkConfig::Ipv6OnlyEnterprise,
            &profiles(&["echo_plus"]),
        );
        let o = run.analysis.device("echo_plus").unwrap();
        assert!(o.ndp_traffic, "it still solicits routers");
        assert!(
            !o.active_v6.iter().any(|a| a.is_global_unicast()),
            "no SLAAC => no active GUA: {:?}",
            o.active_v6
        );
        assert!(!o.v6_internet_data());
        assert_eq!(run.functional.get("echo_plus"), Some(&false));
    }

    #[test]
    fn stateful_capable_device_still_gets_an_address() {
        // The HomePod speaks stateful DHCPv6, so it obtains a global
        // address even without SLAAC.
        let run = scenario::run_with_profiles(
            NetworkConfig::Ipv6OnlyEnterprise,
            &profiles(&["homepod_mini"]),
        );
        let o = run.analysis.device("homepod_mini").unwrap();
        assert!(o.dhcpv6_stateful, "solicited DHCPv6");
        assert!(!o.dhcpv6_addrs.is_empty(), "received an IA_NA address");
        assert!(
            o.active_v6.iter().any(|a| a.is_global_unicast()),
            "uses the DHCPv6 address: {:?}",
            o.active_v6
        );
    }

    #[test]
    fn enterprise_is_harsher_than_consumer_baseline() {
        // Across a representative mixed set, the enterprise config can
        // never have MORE devices with global addresses than the
        // SLAAC-enabled baseline.
        let ids = [
            "echo_plus",
            "homepod_mini",
            "apple_tv",
            "google_home_mini",
            "samsung_fridge",
            "smartthings_hub",
        ];
        let base = scenario::run_with_profiles(NetworkConfig::Ipv6Only, &profiles(&ids));
        let ent = scenario::run_with_profiles(NetworkConfig::Ipv6OnlyEnterprise, &profiles(&ids));
        let gua = |run: &ExperimentRun| {
            run.analysis
                .count(|o| o.active_v6.iter().any(|a| a.is_global_unicast()))
        };
        assert!(gua(&ent) <= gua(&base));
        // And the Google devices — functional in consumer IPv6-only but
        // without DHCPv6 support — brick entirely.
        assert_eq!(base.functional.get("google_home_mini"), Some(&true));
        assert_eq!(ent.functional.get("google_home_mini"), Some(&false));
    }
}
