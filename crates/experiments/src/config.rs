//! The six network configurations of Table 2.

use serde::Serialize;
use v6brick_sim::{FirewallPolicy, RouterConfig};

/// Which of the six connectivity experiments to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum NetworkConfig {
    /// Table 2 row 1: IPv4 enabled, IPv6 disabled.
    Ipv4Only,
    /// Table 2 row 2: SLAAC + RDNSS + stateless DHCPv6, no IPv4.
    Ipv6Only,
    /// Table 2 row 3: RDNSS is the only DNS-configuration channel.
    Ipv6OnlyRdnssOnly,
    /// Table 2 row 4: stateful DHCPv6 added to the baseline.
    Ipv6OnlyStateful,
    /// Table 2 row 5: IPv4 alongside the IPv6 baseline.
    DualStack,
    /// Table 2 row 6: dual-stack plus stateful DHCPv6.
    DualStackStateful,
    /// Extension beyond Table 2 (the paper's §7 future work): an
    /// enterprise-style IPv6-only network where the RA prefix carries
    /// `A=0`, making stateful DHCPv6 the only path to a global address.
    /// Not part of [`NetworkConfig::ALL`]; run via `repro enterprise`.
    Ipv6OnlyEnterprise,
}

impl NetworkConfig {
    /// All six, in Table 2 order.
    pub const ALL: [NetworkConfig; 6] = [
        NetworkConfig::Ipv4Only,
        NetworkConfig::Ipv6Only,
        NetworkConfig::Ipv6OnlyRdnssOnly,
        NetworkConfig::Ipv6OnlyStateful,
        NetworkConfig::DualStack,
        NetworkConfig::DualStackStateful,
    ];

    /// The three IPv6-only variants (Table 3's scope).
    pub const IPV6_ONLY: [NetworkConfig; 3] = [
        NetworkConfig::Ipv6Only,
        NetworkConfig::Ipv6OnlyRdnssOnly,
        NetworkConfig::Ipv6OnlyStateful,
    ];

    /// The two dual-stack variants (Table 4's scope).
    pub const DUAL_STACK: [NetworkConfig; 2] =
        [NetworkConfig::DualStack, NetworkConfig::DualStackStateful];

    /// The router service set for this experiment.
    pub fn router_config(self) -> RouterConfig {
        match self {
            NetworkConfig::Ipv4Only => RouterConfig::ipv4_only(),
            NetworkConfig::Ipv6Only => RouterConfig::ipv6_only(),
            NetworkConfig::Ipv6OnlyRdnssOnly => RouterConfig::ipv6_only_rdnss_only(),
            NetworkConfig::Ipv6OnlyStateful => RouterConfig::ipv6_only_stateful(),
            NetworkConfig::DualStack => RouterConfig::dual_stack(),
            NetworkConfig::DualStackStateful => RouterConfig::dual_stack_stateful(),
            NetworkConfig::Ipv6OnlyEnterprise => RouterConfig::ipv6_only_enterprise(),
        }
    }

    /// The same service set behind an explicit WAN-side IPv6 firewall
    /// policy — the exposure-scan axis. Every Table 2 configuration
    /// defaults to [`FirewallPolicy::Open`] (the routed-/64 posture the
    /// paper's testbed ran); the WAN scanner sweeps all three.
    pub fn router_config_with(self, firewall: FirewallPolicy) -> RouterConfig {
        self.router_config().with_firewall(firewall)
    }

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            NetworkConfig::Ipv4Only => "IPv4-only",
            NetworkConfig::Ipv6Only => "IPv6-only",
            NetworkConfig::Ipv6OnlyRdnssOnly => "IPv6-only (RDNSS-only)",
            NetworkConfig::Ipv6OnlyStateful => "IPv6-only (stateful)",
            NetworkConfig::DualStack => "Dual-stack",
            NetworkConfig::DualStackStateful => "Dual-stack (stateful)",
            NetworkConfig::Ipv6OnlyEnterprise => "IPv6-only (enterprise, no SLAAC)",
        }
    }

    /// The row label for a home running this configuration with its IoT
    /// devices behind a 6LoWPAN border router. Static so population
    /// reports can key mesh homes separately from Ethernet homes without
    /// allocating per home.
    pub fn mesh_label(self) -> &'static str {
        match self {
            NetworkConfig::Ipv4Only => "IPv4-only + mesh",
            NetworkConfig::Ipv6Only => "IPv6-only + mesh",
            NetworkConfig::Ipv6OnlyRdnssOnly => "IPv6-only (RDNSS-only) + mesh",
            NetworkConfig::Ipv6OnlyStateful => "IPv6-only (stateful) + mesh",
            NetworkConfig::DualStack => "Dual-stack + mesh",
            NetworkConfig::DualStackStateful => "Dual-stack (stateful) + mesh",
            NetworkConfig::Ipv6OnlyEnterprise => "IPv6-only (enterprise, no SLAAC) + mesh",
        }
    }

    /// A convenient alias used throughout the examples.
    pub fn ipv6_only() -> NetworkConfig {
        NetworkConfig::Ipv6Only
    }
}

/// Render Table 2 (the configuration matrix) as text.
pub fn table2() -> String {
    let mut out = String::from(
        "Table 2: Connectivity experiments configuration\n\
         Experiment              | IPv4 | SLAAC+RDNSS | Stateless DHCPv6 | Stateful DHCPv6\n",
    );
    for c in NetworkConfig::ALL {
        let r = c.router_config();
        let check = |b: bool| if b { "yes" } else { " - " };
        out.push_str(&format!(
            "{:<24}|  {}  |     {}     |       {}        |       {}\n",
            c.label(),
            check(r.ipv4),
            check(r.ipv6 && r.rdnss),
            check(r.stateless_dhcpv6),
            check(r.stateful_dhcpv6),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_configurations_match_table2() {
        assert_eq!(NetworkConfig::ALL.len(), 6);
        let r = NetworkConfig::Ipv4Only.router_config();
        assert!(r.ipv4 && !r.ipv6);
        let r = NetworkConfig::Ipv6Only.router_config();
        assert!(!r.ipv4 && r.ipv6 && r.rdnss && r.stateless_dhcpv6 && !r.stateful_dhcpv6);
        let r = NetworkConfig::Ipv6OnlyRdnssOnly.router_config();
        assert!(r.rdnss && !r.stateless_dhcpv6);
        let r = NetworkConfig::Ipv6OnlyStateful.router_config();
        assert!(r.stateful_dhcpv6 && r.stateless_dhcpv6);
        let r = NetworkConfig::DualStack.router_config();
        assert!(r.ipv4 && r.ipv6 && !r.stateful_dhcpv6);
        let r = NetworkConfig::DualStackStateful.router_config();
        assert!(r.ipv4 && r.stateful_dhcpv6);
    }

    #[test]
    fn table2_renders_all_rows() {
        let t = table2();
        for c in NetworkConfig::ALL {
            assert!(t.contains(c.label()), "missing {}", c.label());
        }
    }
}
