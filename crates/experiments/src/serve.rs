//! Bridging fleet campaigns onto the `v6brickd` ingestion daemon.
//!
//! The offline path (`fleet::run`) simulates every home and folds the
//! observations directly. This module produces the *service-shaped*
//! equivalent of the same campaign: one [`UploadBundle`] per home — the
//! serialized capture plus the metadata header — which the load
//! generator replays at a running server. Because the simulation is
//! seeded identically and the capture tap records exactly the frames
//! the offline analyzer consumed, a server fed these bundles snapshots
//! byte-identically to `fleet::run` for the same spec
//! (`tests/ingest_equivalence.rs` pins this; `repro upload --verify`
//! checks it from the CLI).

use crate::fleet::CampaignSpec;
use crate::scenario;
use v6brick_fleet::{plan_homes, run_indexed};
use v6brick_ingest::{DeviceEntry, UploadBundle, UploadHeader};
use v6brick_pcap::{format, pcapng};
use v6brick_sim::SimTime;

/// Simulate every home of `spec` and package each as an upload bundle,
/// in home-index order. Even-indexed homes serialize as classic pcap
/// and odd-indexed ones as pcapng, so any replay of a multi-home
/// campaign exercises both of the server's decode paths.
///
/// Homes listed in `spec.chaos_panic_homes` get `chaos_panic` set in
/// their header: the server will deliberately panic on them, mirroring
/// the offline pool's crash-isolation semantics (the home is counted
/// as failed and absorbed nowhere).
pub fn campaign_bundles(spec: &CampaignSpec) -> Vec<UploadBundle> {
    let (dev_min, dev_max) = spec.device_range;
    let plans = plan_homes(spec.seed, spec.homes, &spec.mix, dev_min..=dev_max);
    let duration = SimTime::from_secs(spec.duration_s);
    let campaign_seed = spec.seed;
    let chaos = spec.chaos_panic_homes.clone();
    run_indexed(
        plans,
        spec.workers,
        move |home| {
            let run = scenario::run_captured(home.config, &home.profiles, home.seed, duration);
            let devices = home
                .profiles
                .iter()
                .map(|p| DeviceEntry {
                    id: p.id.clone(),
                    mac: p.mac,
                    functional: run.functional.get(&p.id).copied().unwrap_or(false),
                })
                .collect();
            let pcap = if home.index % 2 == 0 {
                format::to_bytes(&run.capture)
            } else {
                pcapng::to_bytes(&run.capture)
            };
            UploadBundle {
                header: UploadHeader {
                    campaign_seed,
                    home_index: home.index,
                    config_label: run.config.label().to_string(),
                    lan_prefix: v6brick_sim::addrs::LAN_PREFIX,
                    lan_prefix_len: 64,
                    devices,
                    chaos_panic: chaos.contains(&home.index),
                },
                pcap,
            }
        },
        Vec::with_capacity(spec.homes as usize),
        |bundles, _index, bundle| bundles.push(bundle),
    )
}

/// The canonical offline JSON for `spec` — the byte string a server fed
/// this campaign's bundles must snapshot to.
pub fn offline_report_json(spec: &CampaignSpec) -> String {
    serde_json::to_string(&crate::fleet::run(spec)).expect("population report serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundles_cover_every_home_in_both_formats() {
        let spec = CampaignSpec {
            homes: 4,
            seed: 11,
            workers: 2,
            device_range: (2, 2),
            duration_s: 45,
            ..Default::default()
        };
        let bundles = campaign_bundles(&spec);
        assert_eq!(bundles.len(), 4);
        for (i, b) in bundles.iter().enumerate() {
            assert_eq!(b.header.home_index, i as u64);
            assert_eq!(b.header.campaign_seed, 11);
            assert_eq!(b.header.devices.len(), 2);
            assert!(!b.pcap.is_empty());
            let frames = if i % 2 == 0 {
                format::from_bytes(&b.pcap).unwrap().len()
            } else {
                pcapng::from_bytes(&b.pcap).unwrap().len()
            };
            assert!(frames > 0, "home {i} captured no frames");
        }
        // Deterministic: regeneration is identical.
        assert_eq!(campaign_bundles(&spec), bundles);
    }
}
