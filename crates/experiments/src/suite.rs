//! The six-experiment suite with union/delta helpers.
//!
//! The six Table 2 configurations are independent simulations, so
//! [`ExperimentSuite::run_all`] fans them out over the fleet worker pool
//! ([`v6brick_fleet::run_indexed`]) and folds the finished runs back in
//! `NetworkConfig::ALL` order — suite construction is byte-deterministic
//! for any worker count, the same guarantee the fleet campaigns prove at
//! population scale.

use crate::config::NetworkConfig;
use crate::scenario::{self, ExperimentRun, EXPERIMENT_DURATION};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use v6brick_core::analysis::PassId;
use v6brick_core::observe::DeviceObservation;
use v6brick_devices::profile::DeviceProfile;
use v6brick_devices::registry;
use v6brick_fleet::run_indexed;

/// One more than the highest `NetworkConfig` discriminant — the size of
/// the config-indexed run lookup table.
const CONFIG_SLOTS: usize = NetworkConfig::Ipv6OnlyEnterprise as usize + 1;

/// All experiment runs plus the device registry they ran over.
pub struct ExperimentSuite {
    /// The device profiles the runs were built from.
    pub profiles: Vec<DeviceProfile>,
    /// One run per configuration. Private so the memoized unions below
    /// can never go stale; read through [`ExperimentSuite::runs`].
    runs: Vec<ExperimentRun>,
    /// Config-discriminant → position in `runs` (the table generators
    /// look runs up by config thousands of times).
    by_config: [Option<usize>; CONFIG_SLOTS],
    /// Memoized scope-union observations (the table generators hit the
    /// same unions hundreds of times), keyed scope → device id.
    union_cache: Mutex<HashMap<u8, HashMap<String, DeviceObservation>>>,
}

impl ExperimentSuite {
    /// Run all six configurations over the full 93-device registry, in
    /// parallel across the available cores (capped at one worker per
    /// configuration).
    pub fn run_all() -> ExperimentSuite {
        Self::run_all_with_workers(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Like [`ExperimentSuite::run_all`] with an explicit worker count —
    /// `workers <= 1` is the serial reference path the parallel suite
    /// must match byte-for-byte.
    pub fn run_all_with_workers(workers: usize) -> ExperimentSuite {
        Self::run_configs_with_workers(registry::build(), &NetworkConfig::ALL, workers)
    }

    /// Like [`ExperimentSuite::run_all`] but analyzing with only the
    /// named passes (plus their dependencies). The `repro` binary uses
    /// this to run exactly the passes the requested artifact reads —
    /// composed as the union of each generator's declared `PASSES`.
    pub fn run_all_scoped(passes: &[PassId]) -> ExperimentSuite {
        Self::run_configs_scoped(
            registry::build(),
            &NetworkConfig::ALL,
            std::thread::available_parallelism().map_or(1, |n| n.get()),
            passes,
        )
    }

    /// Run an arbitrary set of configurations over an arbitrary profile
    /// subset on `workers` threads. Runs fold back in `configs` order no
    /// matter which worker finishes first, so the suite is
    /// byte-deterministic for any worker count.
    pub fn run_configs_with_workers(
        profiles: Vec<DeviceProfile>,
        configs: &[NetworkConfig],
        workers: usize,
    ) -> ExperimentSuite {
        Self::run_configs_scoped(profiles, configs, workers, &PassId::ALL)
    }

    /// The fully general constructor: arbitrary configurations, profile
    /// subset, worker count, and analyzer pass selection.
    pub fn run_configs_scoped(
        profiles: Vec<DeviceProfile>,
        configs: &[NetworkConfig],
        workers: usize,
        passes: &[PassId],
    ) -> ExperimentSuite {
        let passes = passes.to_vec();
        let runs = run_indexed(
            configs.to_vec(),
            workers.min(configs.len()),
            |c| scenario::run_scoped(c, &profiles, 0x6b1c_0000, EXPERIMENT_DURATION, &passes),
            Vec::with_capacity(configs.len()),
            |acc, _index, run| acc.push(run),
        );
        Self::from_runs(profiles, runs)
    }

    /// Run a single configuration (examples use this).
    pub fn run_config(config: NetworkConfig) -> ExperimentSuite {
        let profiles = registry::build();
        let runs = vec![scenario::run_with_profiles(config, &profiles)];
        Self::from_runs(profiles, runs)
    }

    fn from_runs(profiles: Vec<DeviceProfile>, runs: Vec<ExperimentRun>) -> ExperimentSuite {
        let mut by_config = [None; CONFIG_SLOTS];
        for (i, run) in runs.iter().enumerate() {
            by_config[run.config as usize] = Some(i);
        }
        ExperimentSuite {
            profiles,
            runs,
            by_config,
            union_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Every run, in the order they were executed.
    pub fn runs(&self) -> &[ExperimentRun] {
        &self.runs
    }

    /// The run for one configuration, if the suite contains it.
    fn run_opt(&self, config: NetworkConfig) -> Option<&ExperimentRun> {
        self.by_config[config as usize].map(|i| &self.runs[i])
    }

    /// The run for one configuration.
    pub fn run(&self, config: NetworkConfig) -> &ExperimentRun {
        self.run_opt(config)
            .unwrap_or_else(|| panic!("suite does not contain {config:?}"))
    }

    /// Device ids in registry order.
    pub fn device_ids(&self) -> impl Iterator<Item = &str> {
        self.profiles.iter().map(|p| p.id.as_str())
    }

    /// The profile for a device id.
    pub fn profile(&self, id: &str) -> &DeviceProfile {
        self.profiles
            .iter()
            .find(|p| p.id == id)
            .unwrap_or_else(|| panic!("unknown device {id}"))
    }

    /// Merge a device's observations across a set of configurations
    /// (set-union semantics; byte counters summed).
    pub fn union_observation(&self, id: &str, configs: &[NetworkConfig]) -> DeviceObservation {
        let mut merged = DeviceObservation::default();
        for c in configs {
            let Some(run) = self.run_opt(*c) else {
                continue;
            };
            let Some(o) = run.analysis.device(id) else {
                continue;
            };
            merge_into(&mut merged, o);
        }
        merged
    }

    fn cached_union(&self, scope: u8, id: &str, configs: &[NetworkConfig]) -> DeviceObservation {
        // Borrow-keyed lookup: cache hits (the overwhelming majority —
        // the table generators re-request the same unions hundreds of
        // times) allocate nothing; the id is cloned only on a miss.
        if let Some(hit) = self
            .union_cache
            .lock()
            .get(&scope)
            .and_then(|per_id| per_id.get(id))
        {
            return hit.clone();
        }
        let merged = self.union_observation(id, configs);
        self.union_cache
            .lock()
            .entry(scope)
            .or_default()
            .insert(id.to_string(), merged.clone());
        merged
    }

    /// Union across the three IPv6-only configurations (Table 3 scope).
    pub fn v6only_observation(&self, id: &str) -> DeviceObservation {
        self.cached_union(0, id, &NetworkConfig::IPV6_ONLY)
    }

    /// Union across the two dual-stack configurations (Table 4 scope).
    pub fn dual_observation(&self, id: &str) -> DeviceObservation {
        self.cached_union(1, id, &NetworkConfig::DUAL_STACK)
    }

    /// Union across all IPv6-capable configurations (Table 5 scope:
    /// "IPv6-only and dual-stack experiments").
    pub fn v6_and_dual_observation(&self, id: &str) -> DeviceObservation {
        let mut configs: Vec<NetworkConfig> = NetworkConfig::IPV6_ONLY.to_vec();
        configs.extend(NetworkConfig::DUAL_STACK);
        self.cached_union(2, id, &configs)
    }

    /// Functional in the given configuration?
    pub fn functional_in(&self, id: &str, config: NetworkConfig) -> bool {
        self.run_opt(config)
            .and_then(|r| r.functional.get(id))
            .copied()
            .unwrap_or(false)
    }

    /// Functional in *any* IPv6-only configuration (the paper's Table 3
    /// criterion).
    pub fn functional_v6only(&self, id: &str) -> bool {
        NetworkConfig::IPV6_ONLY
            .iter()
            .any(|c| self.run_opt(*c).is_some() && self.functional_in(id, *c))
    }

    /// The functional device ids under the first configuration in the
    /// suite (convenience for single-config suites).
    pub fn functional_devices(&self) -> Vec<&str> {
        let run = &self.runs[0];
        self.profiles
            .iter()
            .filter(|p| run.functional.get(&p.id).copied().unwrap_or(false))
            .map(|p| p.id.as_str())
            .collect()
    }

    /// Every destination domain observed (DNS + SNI) across all runs,
    /// excluding local names — the input to the active DNS experiment.
    pub fn observed_domains(&self) -> BTreeSet<v6brick_net::dns::Name> {
        let mut out = BTreeSet::new();
        for run in &self.runs {
            for o in run.analysis.devices.values() {
                for n in o
                    .a_q_v4
                    .iter()
                    .chain(&o.a_q_v6)
                    .chain(&o.aaaa_q_v4)
                    .chain(&o.aaaa_q_v6)
                    .chain(&o.sni_domains)
                {
                    if !n.as_str().ends_with(".local") {
                        out.insert(n.clone());
                    }
                }
            }
        }
        out
    }
}

/// Set-union merge of one observation into another.
pub fn merge_into(dst: &mut DeviceObservation, src: &DeviceObservation) {
    dst.ndp_traffic |= src.ndp_traffic;
    dst.announced_v6.extend(src.announced_v6.iter().copied());
    dst.active_v6.extend(src.active_v6.iter().copied());
    dst.dad_probed.extend(src.dad_probed.iter().copied());
    dst.dhcpv4_used |= src.dhcpv4_used;
    dst.dhcpv6_stateless |= src.dhcpv6_stateless;
    dst.dhcpv6_stateful |= src.dhcpv6_stateful;
    dst.dhcpv6_addrs.extend(src.dhcpv6_addrs.iter().copied());
    dst.aaaa_q_v6.extend(src.aaaa_q_v6.iter().cloned());
    dst.aaaa_q_v4.extend(src.aaaa_q_v4.iter().cloned());
    dst.a_q_v6.extend(src.a_q_v6.iter().cloned());
    dst.a_q_v4.extend(src.a_q_v4.iter().cloned());
    dst.https_q.extend(src.https_q.iter().cloned());
    dst.svcb_q.extend(src.svcb_q.iter().cloned());
    dst.aaaa_pos_v6.extend(src.aaaa_pos_v6.iter().cloned());
    dst.aaaa_pos_v4.extend(src.aaaa_pos_v4.iter().cloned());
    dst.aaaa_neg.extend(src.aaaa_neg.iter().cloned());
    dst.dns_src_v6.extend(src.dns_src_v6.iter().copied());
    dst.v6_internet_bytes += src.v6_internet_bytes;
    dst.v4_internet_bytes += src.v4_internet_bytes;
    dst.v6_local_bytes += src.v6_local_bytes;
    dst.v6_internet_peers
        .extend(src.v6_internet_peers.iter().copied());
    dst.data_src_v6.extend(src.data_src_v6.iter().copied());
    dst.ntp_src_v6.extend(src.ntp_src_v6.iter().copied());
    dst.domains_v6.extend(src.domains_v6.iter().cloned());
    dst.domains_v4.extend(src.domains_v4.iter().cloned());
    dst.sni_domains.extend(src.sni_domains.iter().cloned());
    dst.domains_from_eui64
        .extend(src.domains_from_eui64.iter().cloned());
    dst.dns_names_from_eui64
        .extend(src.dns_names_from_eui64.iter().cloned());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_unions_sets_and_sums_bytes() {
        let mut a = DeviceObservation {
            v6_internet_bytes: 10,
            ..DeviceObservation::default()
        };
        a.aaaa_q_v6.insert("x.example".parse().unwrap());
        let mut b = DeviceObservation {
            v6_internet_bytes: 5,
            ndp_traffic: true,
            ..DeviceObservation::default()
        };
        b.aaaa_q_v6.insert("y.example".parse().unwrap());
        merge_into(&mut a, &b);
        assert_eq!(a.v6_internet_bytes, 15);
        assert!(a.ndp_traffic);
        assert_eq!(a.aaaa_q_v6.len(), 2);
    }
}
