#![warn(missing_docs)]
//! # v6brick-experiments — experiment orchestration
//!
//! Drives the six connectivity experiments of Table 2 over the full
//! 93-device testbed, runs the functionality tests and the two active
//! experiments (DNS AAAA probing and port scans), and regenerates every
//! table and figure of the paper's evaluation.
//!
//! ```no_run
//! use v6brick_experiments::suite::ExperimentSuite;
//!
//! let suite = ExperimentSuite::run_all();
//! println!("{}", v6brick_experiments::tables::table3(&suite));
//! ```

pub mod active_dns;
pub mod broken;
pub mod config;
pub mod enterprise;
pub mod figures;
pub mod fleet;
pub mod mesh;
pub mod portscan;
pub mod reachability;
pub mod render;
pub mod scenario;
pub mod serve;
pub mod suite;
pub mod tables;
pub mod tracking;
pub mod wanscan;

pub use config::NetworkConfig;
pub use scenario::ExperimentRun;
pub use suite::ExperimentSuite;
