//! Scenario construction and single-experiment execution.
//!
//! Builds the full testbed — router per Table 2 row, the Internet's zone
//! database derived from every device's destination list, all 93 device
//! models, the two verification phones — runs the experiment window,
//! performs the functionality test, and analyzes the traffic.
//!
//! Analysis is streaming by default: a [`StreamingAnalyzer`] rides the
//! simulator's capture tap and folds every frame into `O(state)` as it
//! crosses the LAN, so the experiment never materializes an `O(frames)`
//! capture buffer and never parses a frame twice. Buffered captures
//! (pcap export, debugging) remain available via
//! `SimulationBuilder::capture(true)` on a hand-built simulation.

use crate::config::NetworkConfig;
use std::borrow::Borrow;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use v6brick_core::analysis::PassId;
use v6brick_core::observe::{ExperimentAnalysis, StreamingAnalyzer};
use v6brick_core::outage::SwitchRecord;
use v6brick_devices::phone::Phone;
use v6brick_devices::profile::DeviceProfile;
use v6brick_devices::registry;
use v6brick_devices::stack::{ntp_anycast, IotDevice};
use v6brick_net::dns::Name;
use v6brick_net::ipv6::Cidr;
use v6brick_net::Mac;
use v6brick_sim::event::SimTime;
use v6brick_sim::internet::{DomainProfile, Internet, ZoneDb};
use v6brick_sim::{addrs, BorderRouter, FaultPlan, Host, Router, SimulationBuilder};

/// How long each connectivity experiment runs (virtual time). Long enough
/// for boot, addressing, resolution, rendezvous, and several telemetry
/// rounds.
pub const EXPERIMENT_DURATION: SimTime = SimTime::from_secs(420);

/// The domain registrations one profile contributes to a zone database,
/// in destination order — the unit [`ZoneCache`] memoizes.
fn zone_fragment(p: &DeviceProfile) -> Vec<DomainProfile> {
    let mut out = Vec::with_capacity(p.app.destinations.len() + 1);
    for d in &p.app.destinations {
        out.push(if d.aaaa_ready {
            DomainProfile::dual_stack(d.domain.clone())
        } else {
            DomainProfile::v4_only(d.domain.clone())
        });
    }
    if let Some(h) = &p.app.hardcoded_v6_endpoint {
        out.push(DomainProfile::dual_stack(h.clone()));
    }
    out
}

/// Replay per-profile fragments into one zone database. First
/// registration wins (deterministic because profiles and their
/// destinations are ordered); the NTP anycast and the phones' canary
/// domain are registered last, unconditionally — exactly the order the
/// uncached builder always used.
fn assemble_zones<'a>(fragments: impl Iterator<Item = &'a [DomainProfile]>) -> ZoneDb {
    let mut zones = ZoneDb::new();
    for fragment in fragments {
        for dp in fragment {
            // Don't overwrite: shared domains keep their first profile.
            if zones.get(&dp.name).is_none() {
                zones.insert(dp.clone());
            }
        }
    }
    zones.insert(DomainProfile::dual_stack(ntp_anycast()));
    zones.insert(DomainProfile::dual_stack(Phone::canary_domain()));
    zones
}

/// Build the authoritative zone database for a set of device profiles:
/// every destination with its AAAA readiness, the hard-coded endpoints,
/// the NTP anycast, and the phones' canary domain.
pub fn build_zones<P: Borrow<DeviceProfile>>(profiles: &[P]) -> ZoneDb {
    let fragments: Vec<Vec<DomainProfile>> =
        profiles.iter().map(|p| zone_fragment(p.borrow())).collect();
    assemble_zones(fragments.iter().map(|f| f.as_slice()))
}

/// Per-worker scratch for fleet-scale zone building: memoizes each
/// profile's [`DomainProfile`] fragment so a worker that simulates
/// thousands of homes derives every destination's zone entry once per
/// registry profile instead of once per home. Produces a database
/// byte-equivalent to [`build_zones`] for any profile list — the cache
/// only skips re-deriving per-profile fragments; the first-wins
/// assembly order is identical.
#[derive(Default)]
pub struct ZoneCache {
    fragments: HashMap<String, Vec<DomainProfile>>,
}

impl ZoneCache {
    /// An empty cache; it warms up as homes are simulated.
    pub fn new() -> ZoneCache {
        ZoneCache::default()
    }

    /// [`build_zones`], memoized per profile id.
    pub fn zones_for<P: Borrow<DeviceProfile>>(&mut self, profiles: &[P]) -> ZoneDb {
        for p in profiles {
            let p = p.borrow();
            self.fragments
                .entry(p.id.clone())
                .or_insert_with(|| zone_fragment(p));
        }
        assemble_zones(
            profiles
                .iter()
                .map(|p| self.fragments[&p.borrow().id].as_slice()),
        )
    }
}

/// The AAAA-ready destination set (ground truth for the zone db; the
/// *measured* equivalent comes from [`crate::active_dns`]).
pub fn aaaa_ready_domains<P: Borrow<DeviceProfile>>(profiles: &[P]) -> BTreeSet<Name> {
    profiles
        .iter()
        .flat_map(|p| p.borrow().app.destinations.iter())
        .filter(|d| d.aaaa_ready)
        .map(|d| d.domain.clone())
        .collect()
}

/// The outcome of one connectivity experiment.
pub struct ExperimentRun {
    /// Config.
    pub config: NetworkConfig,
    /// Pipeline output, streamed off the LAN capture tap.
    pub analysis: ExperimentAnalysis,
    /// Functionality-test outcome per device id (§4.1).
    pub functional: BTreeMap<String, bool>,
    /// Did the verification phones confirm the network works?
    pub phones_ok: bool,
    /// The router's IPv6 neighbor table at the end of the run.
    pub neighbors_v6: Vec<(std::net::Ipv6Addr, Mac)>,
    /// Frames captured.
    pub frames: u64,
}

/// The LAN /64 used to split local from Internet IPv6 traffic.
pub fn lan_prefix() -> Cidr {
    Cidr::new(addrs::LAN_PREFIX, 64)
}

/// Run one experiment over the full registry.
pub fn run(config: NetworkConfig) -> ExperimentRun {
    run_with_profiles(config, registry::shared())
}

/// Run one experiment over an arbitrary profile subset (tests use this
/// with a handful of devices).
pub fn run_with_profiles<P: Borrow<DeviceProfile>>(
    config: NetworkConfig,
    profiles: &[P],
) -> ExperimentRun {
    run_with_profiles_seeded(config, profiles, 0x6b1c_0000)
}

/// Like [`run_with_profiles`] but with an explicit base seed — device
/// *behaviours* must be seed-invariant (only boot jitter and temporary
/// addresses vary), which `tests/paper_reproduction.rs` checks.
pub fn run_with_profiles_seeded<P: Borrow<DeviceProfile>>(
    config: NetworkConfig,
    profiles: &[P],
    base_seed: u64,
) -> ExperimentRun {
    run_with_profiles_seeded_for(config, profiles, base_seed, EXPERIMENT_DURATION)
}

/// Like [`run_with_profiles_seeded`] but with an explicit duration —
/// fleet campaigns and tests trade capture length for wall-clock time.
pub fn run_with_profiles_seeded_for<P: Borrow<DeviceProfile>>(
    config: NetworkConfig,
    profiles: &[P],
    base_seed: u64,
    duration: SimTime,
) -> ExperimentRun {
    run_scoped(config, profiles, base_seed, duration, &PassId::ALL)
}

/// Like [`run_with_profiles_seeded_for`] but analyzing with only the
/// named passes (plus their dependencies). Callers that read a known
/// subset of [`v6brick_core::observe::DeviceObservation`] — the fleet
/// population report, a single table generator — skip the work of the
/// passes whose fields they never look at; the fields a disabled pass
/// owns stay at their defaults.
pub fn run_scoped<P: Borrow<DeviceProfile>>(
    config: NetworkConfig,
    profiles: &[P],
    base_seed: u64,
    duration: SimTime,
    passes: &[PassId],
) -> ExperimentRun {
    run_faulted(
        config,
        profiles,
        base_seed,
        duration,
        passes,
        FaultPlan::new(),
    )
    .run
}

/// [`run_scoped`] with a per-worker [`ZoneCache`]: the fleet pool's
/// home runner, where one worker simulates thousands of homes and the
/// zone fragments amortize. Byte-identical output to [`run_scoped`].
pub fn run_home<P: Borrow<DeviceProfile>>(
    cache: &mut ZoneCache,
    config: NetworkConfig,
    profiles: &[P],
    base_seed: u64,
    duration: SimTime,
    passes: &[PassId],
) -> ExperimentRun {
    execute(
        config,
        profiles,
        base_seed,
        duration,
        passes,
        FaultPlan::new(),
        false,
        Some(cache),
    )
    .0
    .run
}

/// The outcome of one fault-injected experiment: the ordinary
/// [`ExperimentRun`] plus the fault-specific observations the healthy
/// path never produces.
pub struct FaultedRun {
    /// The ordinary experiment outcome.
    pub run: ExperimentRun,
    /// Every device's v6↔v4 switch log, keyed by device id.
    pub switches: BTreeMap<String, Vec<SwitchRecord>>,
    /// 6in4 tunnel packets the injected outage swallowed.
    pub tunnel_drops: u64,
}

/// One home's experiment with the raw capture retained: the input the
/// ingestion path replays at a `v6brickd` server. The simulation is
/// bit-identical to [`run_scoped`]'s (same seed, same build order —
/// enabling the buffered capture consumes no randomness), so the
/// capture holds exactly the frames the streaming analyzer would see.
pub struct CapturedRun {
    /// Config the home ran under.
    pub config: NetworkConfig,
    /// Every LAN frame, in tap order.
    pub capture: v6brick_pcap::Capture,
    /// Functionality-test outcome per device id (§4.1) — the
    /// out-of-band result an upload header carries alongside the pcap.
    pub functional: BTreeMap<String, bool>,
}

/// Run one home and keep its capture instead of (not in addition to)
/// an analysis: the bundle-generation path for `repro upload`, the
/// load generator, and the server equivalence tests. No analyzer pass
/// runs — the server is the one doing the analysis.
pub fn run_captured<P: Borrow<DeviceProfile>>(
    config: NetworkConfig,
    profiles: &[P],
    base_seed: u64,
    duration: SimTime,
) -> CapturedRun {
    let (faulted, capture) = execute(
        config,
        profiles,
        base_seed,
        duration,
        &[],
        FaultPlan::new(),
        true,
        None,
    );
    CapturedRun {
        config,
        capture: capture.expect("capture was enabled"),
        functional: faulted.run.functional,
    }
}

/// The outcome of one mesh-home experiment: the ordinary run (attributed
/// to leaf devices via the mesh capture) plus the border-router
/// accounting the Ethernet topology never produces.
pub struct MeshRun {
    /// The ordinary experiment outcome.
    pub run: ExperimentRun,
    /// 802.15.4 frames the border router put on the air.
    pub mesh_frames: u64,
    /// Leaf IPv4/ARP frames refused transit by the v6-only mesh.
    pub dropped_v4_frames: u64,
    /// IPv6 packets forwarded mesh → Ethernet.
    pub forwarded_up: u64,
    /// IPv6 packets forwarded Ethernet → mesh.
    pub forwarded_down: u64,
    /// Ethernet→mesh unicasts with no learned leaf route.
    pub no_route_drops: u64,
    /// IPv6 → leaf-MAC bindings recovered from the mesh capture.
    pub mesh_bindings: u64,
    /// Mesh frames/datagrams any decode stage dropped.
    pub mesh_decode_errors: u64,
    /// The mesh-side 802.15.4 capture, when the caller kept it.
    pub mesh_capture: Option<v6brick_pcap::Capture>,
}

/// Run one experiment with every IoT device behind a 6LoWPAN border
/// router instead of directly on the Ethernet LAN — the second
/// link-layer scenario family. Full duration, all passes, mesh capture
/// retained (for pcap export and interop tests).
pub fn run_mesh<P: Borrow<DeviceProfile>>(
    config: NetworkConfig,
    profiles: &[P],
    base_seed: u64,
) -> MeshRun {
    execute_mesh(
        config,
        profiles,
        base_seed,
        EXPERIMENT_DURATION,
        &PassId::ALL,
        true,
        None,
    )
}

/// The fleet pool's mesh-home runner: like [`run_home`] but with the
/// devices behind a border router. The mesh capture is walked for
/// attribution bindings and then dropped — nothing `O(frames)` outlives
/// the home.
pub fn run_mesh_home<P: Borrow<DeviceProfile>>(
    cache: &mut ZoneCache,
    config: NetworkConfig,
    profiles: &[P],
    base_seed: u64,
    duration: SimTime,
    passes: &[PassId],
) -> MeshRun {
    execute_mesh(
        config,
        profiles,
        base_seed,
        duration,
        passes,
        false,
        Some(cache),
    )
}

/// The mesh twin of [`execute`]. Unlike the Ethernet path this one runs
/// in two phases — simulate with a buffered LAN capture, then analyze —
/// because the attribution bindings come from *decoding the mesh
/// capture* (802.15.4 framing → RFC 4944 reassembly → IPHC), and the
/// analyzer needs them installed before it sees the first frame. The
/// Ethernet path keeps its streaming analyzer and is byte-identical to
/// before the mesh family existed.
fn execute_mesh<P: Borrow<DeviceProfile>>(
    config: NetworkConfig,
    profiles: &[P],
    base_seed: u64,
    duration: SimTime,
    passes: &[PassId],
    keep_mesh_capture: bool,
    zone_cache: Option<&mut ZoneCache>,
) -> MeshRun {
    let zones = match zone_cache {
        Some(cache) => cache.zones_for(profiles),
        None => build_zones(profiles),
    };
    let internet = Internet::new(zones);
    let router = Router::new(config.router_config());
    let mut b = SimulationBuilder::new(router, internet);

    let sim_seed = base_seed ^ config as u64;
    let mut leaves: Vec<Box<dyn Host>> = Vec::with_capacity(profiles.len());
    let mut device_ids = Vec::with_capacity(profiles.len());
    for p in profiles {
        let p = p.borrow();
        leaves.push(Box::new(IotDevice::new(p.clone())));
        device_ids.push((p.id.clone(), p.mac));
    }
    let br_id = b.add_host(Box::new(BorderRouter::new(sim_seed, leaves)));
    let pixel = b.add_host(Box::new(Phone::pixel7()));
    let iphone = b.add_host(Box::new(Phone::iphone_x()));

    let mut sim = b.seed(sim_seed).capture(true).build();
    sim.run_until(duration);
    let lan_capture = sim.take_capture();

    // Phase 2: recover leaf identity from the mesh air, then walk the
    // LAN capture with the bindings installed.
    let br = sim
        .host_mut(br_id)
        .as_any_mut()
        .downcast_mut::<BorderRouter>()
        .expect("host is the border router");
    let mesh_capture = br.take_mesh_capture();
    let (mesh_frames, dropped_v4, fwd_up, fwd_down, no_route) = (
        br.mesh_frames,
        br.dropped_v4_frames,
        br.forwarded_up,
        br.forwarded_down,
        br.no_route_drops,
    );
    let mut functional = BTreeMap::new();
    for (idx, (id, _)) in device_ids.iter().enumerate() {
        let dev = br
            .leaf(idx)
            .as_any()
            .downcast_ref::<IotDevice>()
            .expect("leaf is a device");
        functional.insert(id.clone(), dev.is_functional());
    }

    let bindings = v6brick_core::bindings_from_mesh_capture(&mesh_capture, &lan_prefix());
    let macs: Vec<(Mac, String)> = device_ids
        .iter()
        .map(|(id, mac)| (*mac, id.clone()))
        .collect();
    let mut analyzer = StreamingAnalyzer::with_passes(&macs, lan_prefix(), passes);
    for (addr, mac) in &bindings.by_addr {
        // The border router's own mesh-local address resolves to no
        // device and binds nothing — exactly what we want.
        analyzer.add_mesh_binding(*addr, *mac);
    }
    for pkt in lan_capture.iter() {
        analyzer.feed(pkt.timestamp_us, &pkt.data);
    }
    let frames = analyzer.frames_fed();
    let analysis = analyzer.finish();

    let phones_ok = [pixel, iphone].iter().all(|h| {
        sim.host(*h)
            .as_any()
            .downcast_ref::<Phone>()
            .map(|p| p.network_ok())
            .unwrap_or(false)
    });
    let neighbors_v6 = sim.router().neighbor_table_v6();

    MeshRun {
        run: ExperimentRun {
            config,
            analysis,
            functional,
            phones_ok,
            neighbors_v6,
            frames,
        },
        mesh_frames,
        dropped_v4_frames: dropped_v4,
        forwarded_up: fwd_up,
        forwarded_down: fwd_down,
        no_route_drops: no_route,
        mesh_bindings: analyzer_bindings(&bindings),
        mesh_decode_errors: bindings.decode_errors,
        mesh_capture: keep_mesh_capture.then_some(mesh_capture),
    }
}

/// How many of the recovered bindings name an actual leaf (the border
/// router's own addresses are excluded by the analyzer, so count them
/// the same way here).
fn analyzer_bindings(b: &v6brick_core::MeshBindings) -> u64 {
    b.by_addr
        .values()
        .filter(|m| **m != addrs::BORDER_ROUTER_MAC)
        .count() as u64
}

/// [`run_scoped`] under an injected [`FaultPlan`]: the same build and
/// measurement path, plus the devices' family-switch logs and the
/// engine's fault counters for Table 9-style outage reporting.
pub fn run_faulted<P: Borrow<DeviceProfile>>(
    config: NetworkConfig,
    profiles: &[P],
    base_seed: u64,
    duration: SimTime,
    passes: &[PassId],
    faults: FaultPlan,
) -> FaultedRun {
    execute(
        config, profiles, base_seed, duration, passes, faults, false, None,
    )
    .0
}

#[allow(clippy::too_many_arguments)]
fn execute<P: Borrow<DeviceProfile>>(
    config: NetworkConfig,
    profiles: &[P],
    base_seed: u64,
    duration: SimTime,
    passes: &[PassId],
    faults: FaultPlan,
    keep_capture: bool,
    zone_cache: Option<&mut ZoneCache>,
) -> (FaultedRun, Option<v6brick_pcap::Capture>) {
    let zones = match zone_cache {
        Some(cache) => cache.zones_for(profiles),
        None => build_zones(profiles),
    };
    let internet = Internet::new(zones);
    let router = Router::new(config.router_config());
    let mut b = SimulationBuilder::new(router, internet);

    let mut device_ids = Vec::with_capacity(profiles.len());
    for p in profiles {
        let p = p.borrow();
        let id = b.add_host(Box::new(IotDevice::new(p.clone())));
        device_ids.push((id, p.id.clone(), p.mac));
    }
    let pixel = b.add_host(Box::new(Phone::pixel7()));
    let iphone = b.add_host(Box::new(Phone::iphone_x()));

    // Stream the analysis off the capture tap instead of buffering the
    // whole capture: peak memory is the analyzer state, not the frames.
    let macs: Vec<(Mac, String)> = device_ids
        .iter()
        .map(|(_, id, mac)| (*mac, id.clone()))
        .collect();
    b.add_sink(Box::new(StreamingAnalyzer::with_passes(
        &macs,
        lan_prefix(),
        passes,
    )));

    let mut sim = b
        .seed(base_seed ^ config as u64)
        .capture(keep_capture)
        .faults(faults)
        .build();
    sim.run_until(duration);
    let capture = keep_capture.then(|| sim.take_capture());

    // Functionality test: ask each device model whether its primary
    // function (cloud rendezvous with every required destination)
    // completed — the §4.1 companion-app check. The switch log comes off
    // the same downcast.
    let mut functional = BTreeMap::new();
    let mut switches = BTreeMap::new();
    for (hid, id, _) in &device_ids {
        let dev = sim
            .host(*hid)
            .as_any()
            .downcast_ref::<IotDevice>()
            .expect("host is a device");
        functional.insert(id.clone(), dev.is_functional());
        switches.insert(
            id.clone(),
            dev.switch_events()
                .iter()
                .map(|e| SwitchRecord {
                    at_us: e.at_us,
                    domain: e.domain.as_str().to_string(),
                    to_v6: e.to_v6,
                })
                .collect::<Vec<_>>(),
        );
    }
    let phones_ok = [pixel, iphone].iter().all(|h| {
        sim.host(*h)
            .as_any()
            .downcast_ref::<Phone>()
            .map(|p| p.network_ok())
            .unwrap_or(false)
    });

    let neighbors_v6 = sim.router().neighbor_table_v6();
    let tunnel_drops = sim.tunnel_drops;
    let analyzer = sim
        .take_sinks()
        .pop()
        .expect("the streaming analyzer was attached above")
        .into_any()
        .downcast::<StreamingAnalyzer>()
        .expect("the only sink is the streaming analyzer");
    let frames = analyzer.frames_fed();
    let analysis = analyzer.finish();

    (
        FaultedRun {
            run: ExperimentRun {
                config,
                analysis,
                functional,
                phones_ok,
                neighbors_v6,
                frames,
            },
            switches,
            tunnel_drops,
        },
        capture,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles(ids: &[&str]) -> Vec<DeviceProfile> {
        ids.iter().map(|id| registry::by_id(id)).collect()
    }

    #[test]
    fn zone_db_covers_all_destinations() {
        let profiles = registry::build();
        let zones = build_zones(&profiles);
        assert!(zones.len() > 1000, "zones: {}", zones.len());
        for p in &profiles {
            for d in &p.app.destinations {
                let prof = zones.get(&d.domain).expect("domain registered");
                // AAAA readiness is consistent for non-shared domains;
                // shared ones keep their first registration.
                if d.domain.as_str().contains(".example") || d.aaaa_ready {
                    let _ = prof;
                }
            }
        }
        assert!(zones.get(&ntp_anycast()).is_some());
        assert!(zones.get(&Phone::canary_domain()).is_some());
    }

    #[test]
    fn functional_device_works_in_ipv6_only() {
        let run = run_with_profiles(NetworkConfig::Ipv6Only, &profiles(&["google_home_mini"]));
        assert!(run.phones_ok, "phones must verify the v6-only network");
        assert_eq!(run.functional.get("google_home_mini"), Some(&true));
        let o = run.analysis.device("google_home_mini").unwrap();
        assert!(o.ndp_traffic);
        assert!(o.dns_over_v6());
        assert!(!o.aaaa_q_v6.is_empty());
        assert!(o.v6_internet_data());
    }

    #[test]
    fn amazon_echo_bricks_in_ipv6_only_but_works_dual() {
        let run6 = run_with_profiles(NetworkConfig::Ipv6Only, &profiles(&["echo_show_5"]));
        assert_eq!(run6.functional.get("echo_show_5"), Some(&false));
        let o = run6.analysis.device("echo_show_5").unwrap();
        // Full IPv6 feature support...
        assert!(o.ndp_traffic && o.has_v6_addr());
        assert!(!o.aaaa_q_v6.is_empty());
        // ...but its required api.amazon.com never resolves AAAA.
        assert!(o.aaaa_neg.contains(&Name::new("api.amazon.com").unwrap()));

        let run_dual = run_with_profiles(NetworkConfig::DualStack, &profiles(&["echo_show_5"]));
        assert_eq!(run_dual.functional.get("echo_show_5"), Some(&true));
        let o = run_dual.analysis.device("echo_show_5").unwrap();
        assert!(o.v6_internet_data(), "transmits v6 data in dual-stack");
        assert!(o.v4_internet_bytes > 0, "but still relies on IPv4");
    }

    #[test]
    fn no_ipv6_device_stays_silent_on_v6() {
        let run = run_with_profiles(NetworkConfig::Ipv6Only, &profiles(&["wyze_cam"]));
        let o = run.analysis.device("wyze_cam").unwrap();
        assert!(!o.ndp_traffic);
        assert!(!o.has_v6_addr());
        assert_eq!(run.functional.get("wyze_cam"), Some(&false));
        // But in IPv4-only it works.
        let run4 = run_with_profiles(NetworkConfig::Ipv4Only, &profiles(&["wyze_cam"]));
        assert_eq!(run4.functional.get("wyze_cam"), Some(&true));
    }

    #[test]
    fn mesh_home_attributes_leaves_and_v6_device_works() {
        let mesh = run_mesh(
            NetworkConfig::Ipv6Only,
            &profiles(&["google_home_mini"]),
            0x6b1c_0000,
        );
        assert!(mesh.run.phones_ok, "phones live on Ethernet, unaffected");
        assert_eq!(mesh.run.functional.get("google_home_mini"), Some(&true));
        assert!(mesh.mesh_frames > 0, "traffic crossed the mesh air");
        assert!(mesh.mesh_bindings >= 1, "leaf addresses recovered");
        assert_eq!(mesh.mesh_decode_errors, 0);
        assert!(mesh.forwarded_up > 0 && mesh.forwarded_down > 0);
        let o = mesh.run.analysis.device("google_home_mini").unwrap();
        assert!(o.dns_over_v6(), "DNS attributed to the leaf, not the BR");
        assert!(o.v6_internet_data(), "data attributed to the leaf");
        let cap = mesh.mesh_capture.expect("run_mesh keeps the mesh capture");
        assert!(!cap.is_empty());
    }

    #[test]
    fn v4_dependent_device_bricks_behind_the_mesh() {
        // On Ethernet this device works over IPv4; the v6-only mesh
        // refuses its DHCPv4/ARP frames at the border, so it bricks even
        // with IPv4 service on the router — the readiness delta the mesh
        // family measures.
        let mesh = run_mesh(
            NetworkConfig::Ipv4Only,
            &profiles(&["wyze_cam"]),
            0x6b1c_0000,
        );
        assert_eq!(mesh.run.functional.get("wyze_cam"), Some(&false));
        assert!(mesh.dropped_v4_frames > 0);
    }

    #[test]
    fn everything_functional_in_ipv4_only() {
        // Spot-check a diverse subset (the full-matrix assertion lives in
        // the integration tests).
        let ids = [
            "samsung_fridge",
            "nest_camera",
            "apple_tv",
            "ikea_gateway",
            "echo_plus",
            "aqara_hub",
            "behmor_brewer",
            "homepod_mini",
        ];
        let run = run_with_profiles(NetworkConfig::Ipv4Only, &profiles(&ids));
        for id in ids {
            assert_eq!(run.functional.get(id), Some(&true), "{id} must work on v4");
        }
    }
}
