//! Table-3-style readiness comparison across link layers: the same
//! devices once on the Ethernet LAN and once behind a 6LoWPAN border
//! router.
//!
//! The paper's Table 3 asks which devices stay functional as IPv4 is
//! withdrawn. This module asks the same question along a second axis:
//! does moving a device from the Ethernet testbed onto a compressed
//! 802.15.4 mesh change the answer? The border router forwards IPv6
//! only, so the expected picture is sharp — v6-capable devices keep
//! working (their traffic now IPHC-compressed and re-attributed from
//! the mesh capture), while v4-dependent devices brick even under
//! configurations that would have carried them on Ethernet.
//!
//! `repro mesh [--seed S] [--duration SECS] [--json]` renders the
//! comparison; the JSON serialization is byte-deterministic for a given
//! `(seed, duration)` and CI reruns and diffs it.

use std::collections::BTreeMap;

use serde::Serialize;
use v6brick_core::analysis::PassId;
use v6brick_devices::registry;
use v6brick_sim::SimTime;

use crate::config::NetworkConfig;
use crate::render::TextTable;
use crate::scenario::{self, ZoneCache};

/// The fixed device slice the comparison runs: two v6-ready hubs, two
/// cloud-chatty media devices, one Matter-style bridge, and one
/// v4-dependent camera — enough spread to show both outcomes without
/// paying for the full 93-device registry twice per configuration.
pub const DEVICE_IDS: [&str; 6] = [
    "aqara_hub",
    "echo_show_5",
    "google_home_mini",
    "homepod_mini",
    "nest_camera",
    "wyze_cam",
];

/// The configurations compared: the IPv4 baseline, the IPv6-only
/// readiness probe, and the dual-stack middle ground.
pub const CONFIGS: [NetworkConfig; 3] = [
    NetworkConfig::Ipv4Only,
    NetworkConfig::Ipv6Only,
    NetworkConfig::DualStack,
];

/// Campaign parameters for one comparison run.
#[derive(Debug, Clone)]
pub struct MeshSpec {
    /// Base seed; each configuration derives its simulation seed from it
    /// exactly as the Ethernet suite does.
    pub seed: u64,
    /// Simulated window per (configuration, link) cell, in seconds.
    pub duration_s: u64,
}

impl Default for MeshSpec {
    fn default() -> MeshSpec {
        MeshSpec {
            seed: 1,
            duration_s: scenario::EXPERIMENT_DURATION.0 / 1_000_000,
        }
    }
}

/// One device's outcome in one configuration, on both link layers.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceReadiness {
    /// Functionality test passed on the Ethernet LAN.
    pub functional_ethernet: bool,
    /// Functionality test passed behind the border router.
    pub functional_mesh: bool,
    /// Sent DNS queries over IPv6 transport while meshed — proves the
    /// mesh-capture attribution credited the leaf, not the BR.
    pub dns_over_v6_mesh: bool,
    /// Moved Internet data over IPv6 while meshed.
    pub v6_internet_data_mesh: bool,
}

/// One configuration's Ethernet-vs-mesh comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ConfigReadiness {
    /// The Table 2 row label of the Ethernet run.
    pub config: String,
    /// The mesh twin's population label.
    pub mesh_config: String,
    /// Per-device outcomes, keyed by device id.
    pub devices: BTreeMap<String, DeviceReadiness>,
    /// Devices functional on Ethernet.
    pub functional_ethernet: u64,
    /// Devices functional behind the mesh.
    pub functional_mesh: u64,
    /// 802.15.4 frames the border router put on the air.
    pub mesh_frames: u64,
    /// Leaf IPv4/ARP frames the v6-only mesh refused to carry.
    pub dropped_v4_frames: u64,
    /// IPv6 packets forwarded mesh → Ethernet.
    pub forwarded_up: u64,
    /// IPv6 packets forwarded Ethernet → mesh.
    pub forwarded_down: u64,
    /// Ethernet→mesh unicasts with no learned leaf route.
    pub no_route_drops: u64,
    /// Leaf address bindings recovered from the mesh capture.
    pub mesh_bindings: u64,
    /// Mesh frames/datagrams any decode stage dropped.
    pub mesh_decode_errors: u64,
}

/// The full comparison: every configuration in [`CONFIGS`] run twice.
///
/// Serialization is byte-deterministic for a given spec: the device map
/// is a `BTreeMap`, configurations keep [`CONFIGS`] order, and both
/// simulations are seeded.
#[derive(Debug, Clone, Serialize)]
pub struct MeshReadinessReport {
    /// Base seed the campaign ran under.
    pub seed: u64,
    /// Simulated seconds per cell.
    pub duration_s: u64,
    /// Device ids compared, sorted.
    pub devices: Vec<String>,
    /// One comparison per configuration, in [`CONFIGS`] order.
    pub configs: Vec<ConfigReadiness>,
}

/// Run the comparison: `CONFIGS × {Ethernet, mesh}` over [`DEVICE_IDS`].
pub fn run(spec: &MeshSpec) -> MeshReadinessReport {
    let profiles: Vec<_> = DEVICE_IDS.iter().map(|id| registry::by_id(id)).collect();
    let duration = SimTime::from_secs(spec.duration_s);
    let mut cache = ZoneCache::new();
    let configs = CONFIGS
        .iter()
        .map(|&config| {
            let eth = scenario::run_scoped(config, &profiles, spec.seed, duration, &PassId::ALL);
            let mesh = scenario::run_mesh_home(
                &mut cache,
                config,
                &profiles,
                spec.seed,
                duration,
                &PassId::ALL,
            );
            let devices: BTreeMap<String, DeviceReadiness> = profiles
                .iter()
                .map(|p| {
                    let o = mesh.run.analysis.device(&p.id);
                    (
                        p.id.clone(),
                        DeviceReadiness {
                            functional_ethernet: eth.functional.get(&p.id).copied() == Some(true),
                            functional_mesh: mesh.run.functional.get(&p.id).copied() == Some(true),
                            dns_over_v6_mesh: o.is_some_and(|o| o.dns_over_v6()),
                            v6_internet_data_mesh: o.is_some_and(|o| o.v6_internet_data()),
                        },
                    )
                })
                .collect();
            ConfigReadiness {
                config: config.label().to_string(),
                mesh_config: config.mesh_label().to_string(),
                functional_ethernet: devices.values().filter(|d| d.functional_ethernet).count()
                    as u64,
                functional_mesh: devices.values().filter(|d| d.functional_mesh).count() as u64,
                devices,
                mesh_frames: mesh.mesh_frames,
                dropped_v4_frames: mesh.dropped_v4_frames,
                forwarded_up: mesh.forwarded_up,
                forwarded_down: mesh.forwarded_down,
                no_route_drops: mesh.no_route_drops,
                mesh_bindings: mesh.mesh_bindings,
                mesh_decode_errors: mesh.mesh_decode_errors,
            }
        })
        .collect();
    let mut devices: Vec<String> = DEVICE_IDS.iter().map(|s| s.to_string()).collect();
    devices.sort();
    MeshReadinessReport {
        seed: spec.seed,
        duration_s: spec.duration_s,
        devices,
        configs,
    }
}

/// Render the comparison as two text tables: per-device readiness and
/// the border-router transit counters.
pub fn render(report: &MeshReadinessReport) -> String {
    let mark = |b: bool| if b { "yes" } else { " - " };
    let t = TextTable::new(format!(
        "Mesh readiness (Table 3 across link layers, seed {:#x}, {} s windows)",
        report.seed, report.duration_s
    ))
    .percent_base(report.devices.len());
    let mut headers = vec!["Device".to_string()];
    for c in &report.configs {
        headers.push(format!("{} eth", c.config));
        headers.push("mesh".to_string());
    }
    let mut t2 = TextTable::new("Border-router transit per configuration").headers([
        "Mesh config",
        "802.15.4 frames",
        "v4 dropped",
        "up",
        "down",
        "no-route",
        "bindings",
        "decode errs",
    ]);
    let t = {
        let mut t = t.headers(headers);
        for id in &report.devices {
            let mut row = vec![id.clone()];
            for c in &report.configs {
                let d = &c.devices[id];
                row.push(mark(d.functional_ethernet).to_string());
                row.push(mark(d.functional_mesh).to_string());
            }
            t.row(row);
        }
        let mut totals = vec!["functional".to_string()];
        for c in &report.configs {
            totals.push(format!(
                "{}/{}",
                c.functional_ethernet,
                report.devices.len()
            ));
            totals.push(format!("{}/{}", c.functional_mesh, report.devices.len()));
        }
        t.row(totals);
        t
    };
    for c in &report.configs {
        t2.row([
            c.mesh_config.clone(),
            c.mesh_frames.to_string(),
            c.dropped_v4_frames.to_string(),
            c.forwarded_up.to_string(),
            c.forwarded_down.to_string(),
            c.no_route_drops.to_string(),
            c.mesh_bindings.to_string(),
            c.mesh_decode_errors.to_string(),
        ]);
    }
    format!("{t}\n{t2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> MeshSpec {
        MeshSpec {
            seed: 0x6e57,
            duration_s: 90,
        }
    }

    #[test]
    fn readiness_shows_the_link_layer_delta() {
        let report = run(&quick_spec());
        assert_eq!(report.configs.len(), CONFIGS.len());

        // IPv4-only: the v6-only mesh bricks everything the Ethernet
        // LAN carried.
        let v4 = &report.configs[0];
        assert!(v4.functional_ethernet > 0, "Ethernet carries v4 devices");
        assert_eq!(v4.functional_mesh, 0, "no IPv4 crosses the mesh");
        assert!(v4.dropped_v4_frames > 0, "the BR counts refused v4 frames");

        // IPv6-only: v6-capable devices work on BOTH links, and the
        // mesh-capture attribution proves they were credited as leaves.
        let v6 = &report.configs[1];
        assert!(v6.functional_mesh > 0, "v6 devices survive the mesh");
        assert!(v6.mesh_bindings > 0, "leaf addresses were recovered");
        assert_eq!(v6.mesh_decode_errors, 0, "own mesh decodes losslessly");
        let mini = &v6.devices["google_home_mini"];
        assert!(mini.functional_ethernet && mini.functional_mesh);
        assert!(mini.dns_over_v6_mesh && mini.v6_internet_data_mesh);
        // Partially-ready devices keep their Table 3 shape across the
        // link change: not functional v6-only on either link, but their
        // meshed DNS and data still land on the right leaf.
        let show = &v6.devices["echo_show_5"];
        assert!(!show.functional_ethernet && !show.functional_mesh);
        assert!(show.dns_over_v6_mesh && show.v6_internet_data_mesh);
        let wyze = &v6.devices["wyze_cam"];
        assert!(!wyze.functional_mesh, "v4-dependent camera bricks");

        // Dual-stack: Ethernet carries everything, while the v6-only
        // transit mesh keeps only the truly v6-functional devices alive
        // — the headline link-layer delta.
        let ds = &report.configs[2];
        assert_eq!(ds.functional_ethernet, report.devices.len() as u64);
        assert!(ds.functional_mesh < ds.functional_ethernet);
        assert!(ds.functional_mesh > 0);
    }

    #[test]
    fn report_is_seed_deterministic() {
        let a = serde_json::to_string(&run(&quick_spec())).expect("serializable");
        let b = serde_json::to_string(&run(&quick_spec())).expect("serializable");
        assert_eq!(a, b, "same spec must serialize byte-identically");
    }
}
