//! §5.4.3 — tracking domains: which domains (and second-level domains)
//! do the eight IPv6-only-functional devices contact in the IPv4-only
//! network that never appear in the IPv6-only network?

use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use crate::NetworkConfig;
use std::collections::BTreeSet;
use v6brick_core::analysis::PassId;
use v6brick_core::party;
use v6brick_net::dns::Name;

/// Analyzer passes this report reads (DNS query names plus SNI, which
/// the traffic pass extracts).
pub const PASSES: &[PassId] = &[PassId::Dns, PassId::Traffic];

/// The measured §5.4.3 comparison.
#[derive(Debug, Default)]
pub struct TrackingReport {
    /// Domains used by the functional devices in IPv4-only but not in
    /// IPv6-only.
    pub v4_only_domains: BTreeSet<Name>,
    /// Their second-level domains.
    pub v4_only_slds: BTreeSet<Name>,
    /// The third-party (tracking/analytics) subset of those SLDs.
    pub third_party_slds: BTreeSet<Name>,
}

/// Domains a device used in one configuration (DNS + SNI).
fn domains_in(suite: &ExperimentSuite, id: &str, config: NetworkConfig) -> BTreeSet<Name> {
    let run = suite.run(config);
    let mut out = BTreeSet::new();
    if let Some(o) = run.analysis.device(id) {
        for n in o
            .a_q_v4
            .iter()
            .chain(&o.a_q_v6)
            .chain(&o.aaaa_q_v4)
            .chain(&o.aaaa_q_v6)
            .chain(&o.sni_domains)
        {
            if !n.as_str().ends_with(".local") {
                out.insert(n.clone());
            }
        }
    }
    out
}

/// Compute the report over the functional devices.
pub fn tracking_report(suite: &ExperimentSuite) -> TrackingReport {
    let mut report = TrackingReport::default();
    let functional: Vec<String> = suite
        .profiles
        .iter()
        .filter(|p| suite.functional_v6only(&p.id))
        .map(|p| p.id.clone())
        .collect();
    for id in &functional {
        let v4 = domains_in(suite, id, NetworkConfig::Ipv4Only);
        let mut v6 = BTreeSet::new();
        for c in NetworkConfig::IPV6_ONLY {
            v6.extend(domains_in(suite, id, c));
        }
        for d in v4.difference(&v6) {
            report.v4_only_domains.insert(d.clone());
            report.v4_only_slds.insert(d.second_level());
        }
    }
    for sld in &report.v4_only_slds {
        if party::is_tracking_sld(sld) {
            report.third_party_slds.insert(sld.clone());
        }
    }
    report
}

/// Render the report.
pub fn tracking_table(suite: &ExperimentSuite) -> TextTable {
    let r = tracking_report(suite);
    let mut t = TextTable::new(
        "Tracking domains (§5.4.3): functional devices' IPv4-only destinations absent from IPv6-only",
    )
    .headers(["Metric", "Count"]);
    t.row([
        "Domains used only in IPv4".to_string(),
        r.v4_only_domains.len().to_string(),
    ]);
    t.row([
        "Second-level domains (SLDs)".to_string(),
        r.v4_only_slds.len().to_string(),
    ]);
    t.row([
        "Third-party / tracking SLDs".to_string(),
        r.third_party_slds.len().to_string(),
    ]);
    for sld in &r.third_party_slds {
        t.row([format!("  tracker: {sld}"), String::new()]);
    }
    t
}
