//! Table 3: IPv6-only experiments, the feature funnel per category.

use super::{active_gua, count_by_category, FUNNEL_PASSES};
use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use v6brick_core::analysis::PassId;

/// Analyzer passes this generator reads.
pub const PASSES: &[PassId] = FUNNEL_PASSES;

/// Table 3: IPv6-only experiments, the feature funnel per category.
pub fn table3(suite: &ExperimentSuite) -> TextTable {
    let o = |id: &str| suite.v6only_observation(id);
    let mut t =
        TextTable::new("Table 3: IPv6-only experiments — IPv6 feature support per category")
            .percent_base(suite.profiles.len())
            .headers([
                "Feature",
                "Appliance",
                "Camera",
                "TV/Ent.",
                "Gateway",
                "Health",
                "Home Auto",
                "Speaker",
                "Total",
                "%",
            ]);
    t.count_row("Total # of Device", &count_by_category(suite, |_| true));
    t.count_row(
        "- No IPv6",
        &count_by_category(suite, |id| !o(id).ndp_traffic),
    );
    t.count_row(
        "IPv6 NDP Traffic",
        &count_by_category(suite, |id| o(id).ndp_traffic),
    );
    t.count_row(
        "- NDP Traffic No Addr",
        &count_by_category(suite, |id| o(id).ndp_traffic && !o(id).has_v6_addr()),
    );
    t.count_row(
        "IPv6 Address",
        &count_by_category(suite, |id| o(id).has_v6_addr()),
    );
    t.count_row(
        "^ Global Unique Address",
        &count_by_category(suite, |id| active_gua(&o(id))),
    );
    t.count_row(
        "- IPv6 Address but No IPv6 DNS",
        &count_by_category(suite, |id| o(id).has_v6_addr() && !o(id).dns_over_v6()),
    );
    t.count_row(
        "IPv6 DNS (AAAA Req)",
        &count_by_category(suite, |id| !o(id).aaaa_q_v6.is_empty()),
    );
    t.count_row(
        "^ AAAA DNS Response",
        &count_by_category(suite, |id| !o(id).aaaa_pos_v6.is_empty()),
    );
    t.count_row(
        "- IPv6 DNS but No Data",
        &count_by_category(suite, |id| {
            !o(id).aaaa_q_v6.is_empty() && !o(id).v6_internet_data()
        }),
    );
    t.count_row(
        "Internet TCP/UDP Data Comm.",
        &count_by_category(suite, |id| o(id).v6_internet_data()),
    );
    t.count_row(
        "- IPv6 Data but Not Func",
        &count_by_category(suite, |id| {
            o(id).v6_internet_data() && !suite.functional_v6only(id)
        }),
    );
    t.count_row(
        "Functional over IPv6-only",
        &count_by_category(suite, |id| suite.functional_v6only(id)),
    );
    t
}
