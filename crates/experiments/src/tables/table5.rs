//! Table 5: feature support, IPv6-only and dual-stack experiments united.

use super::{aaaa_v4_only, active_gua, count_by_category, has_eui64_addr, has_lla, has_ula};
use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use v6brick_core::analysis::PassId;

/// Analyzer passes this generator reads.
pub const PASSES: &[PassId] = super::FEATURE_PASSES;

/// Table 5: feature support, IPv6-only and dual-stack experiments united.
pub fn table5(suite: &ExperimentSuite) -> TextTable {
    let o = |id: &str| suite.v6_and_dual_observation(id);
    let mut t =
        TextTable::new("Table 5: IPv6-only and dual-stack experiments — IPv6 feature support")
            .percent_base(suite.profiles.len())
            .headers([
                "Feature",
                "Appliance",
                "Camera",
                "TV/Ent.",
                "Gateway",
                "Health",
                "Home Auto",
                "Speaker",
                "Total",
                "%",
            ]);
    t.count_row(
        "IPv6 Addr",
        &count_by_category(suite, |id| o(id).has_v6_addr()),
    );
    t.count_row(
        "Stateful DHCPv6",
        &count_by_category(suite, |id| o(id).dhcpv6_stateful),
    );
    t.count_row("GUA", &count_by_category(suite, |id| active_gua(&o(id))));
    t.count_row("ULA", &count_by_category(suite, |id| has_ula(&o(id))));
    t.count_row("LLA", &count_by_category(suite, |id| has_lla(&o(id))));
    t.count_row(
        "EUI-64 Addr",
        &count_by_category(suite, |id| has_eui64_addr(&o(id))),
    );
    t.count_row(
        "DNS Over IPv6",
        &count_by_category(suite, |id| o(id).dns_over_v6()),
    );
    t.count_row(
        "A-only Request in IPv6",
        &count_by_category(suite, |id| !o(id).a_only_v6_names().is_empty()),
    );
    t.count_row(
        "AAAA Request (v4 or v6)",
        &count_by_category(suite, |id| !o(id).aaaa_q_any().is_empty()),
    );
    t.count_row(
        "IPv4-only AAAA Request",
        &count_by_category(suite, |id| aaaa_v4_only(&o(id))),
    );
    t.count_row(
        "AAAA Response",
        &count_by_category(suite, |id| !o(id).aaaa_pos_any().is_empty()),
    );
    t.count_row(
        "AAAA Req No AAAA Res",
        &count_by_category(suite, |id| !o(id).aaaa_neg.is_empty()),
    );
    t.count_row(
        "Stateless DHCPv6",
        &count_by_category(suite, |id| o(id).dhcpv6_stateless),
    );
    t.count_row(
        "IPv6 TCP/UDP Trans",
        &count_by_category(suite, |id| {
            o(id).v6_internet_bytes + o(id).v6_local_bytes > 0
        }),
    );
    t.count_row(
        "Internet Trans",
        &count_by_category(suite, |id| o(id).v6_internet_data()),
    );
    t.count_row(
        "Local Trans",
        &count_by_category(suite, |id| o(id).v6_local_bytes > 0),
    );
    t
}
