//! DAD compliance (§5.2.1): devices that skipped duplicate address
//! detection for at least one used address, and devices that never DAD.

use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use std::collections::BTreeSet;
use v6brick_core::analysis::PassId;

/// Analyzer passes this report reads (addresses from `addressing`, DAD
/// probes from `ndp_dad`).
pub const PASSES: &[PassId] = &[PassId::Addressing, PassId::NdpDad];

/// The DAD compliance report: devices that skipped DAD for at least one
/// used address, and devices that never DAD at all.
pub fn dad_report(suite: &ExperimentSuite) -> TextTable {
    let mut t = TextTable::new(
        "DAD compliance (RFC 4862 §5.4): devices skipping duplicate address detection",
    )
    .headers(["Device", "Addresses used", "DAD-probed", "Never DAD"]);
    let mut skip_some = 0usize;
    let mut never = 0usize;
    for p in &suite.profiles {
        let o = suite.v6_and_dual_observation(&p.id);
        // Unicast addresses that sourced traffic or were announced.
        let used: BTreeSet<_> = o
            .all_addrs()
            .into_iter()
            .filter(|a| !a.is_multicast() && !a.is_unspecified())
            .collect();
        if used.is_empty() {
            continue;
        }
        let probed = &o.dad_probed;
        let missing = used.iter().filter(|a| !probed.contains(*a)).count();
        if missing == 0 {
            continue;
        }
        let never_dad = probed.is_empty();
        skip_some += 1;
        if never_dad {
            never += 1;
        }
        t.row([
            p.name.clone(),
            used.len().to_string(),
            probed.len().to_string(),
            if never_dad {
                "yes".into()
            } else {
                "-".to_string()
            },
        ]);
    }
    t.row([
        format!("TOTAL: {skip_some} devices skip DAD for >=1 address"),
        String::new(),
        String::new(),
        format!("{never} never perform DAD"),
    ]);
    t
}

/// Measured (skip-some, never) DAD counts, for tests.
pub fn dad_counts(suite: &ExperimentSuite) -> (usize, usize) {
    let mut skip_some = 0usize;
    let mut never = 0usize;
    for p in &suite.profiles {
        let o = suite.v6_and_dual_observation(&p.id);
        let used: BTreeSet<_> = o
            .all_addrs()
            .into_iter()
            .filter(|a| !a.is_multicast() && !a.is_unspecified())
            .collect();
        if used.is_empty() {
            continue;
        }
        let missing = used.iter().filter(|a| !o.dad_probed.contains(*a)).count();
        if missing > 0 {
            skip_some += 1;
            if o.dad_probed.is_empty() {
                never += 1;
            }
        }
    }
    (skip_some, never)
}
