//! Table 4: per-category deltas, dual-stack minus IPv6-only.

use super::{active_gua, count_by_category, FUNNEL_PASSES};
use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use v6brick_core::analysis::PassId;
use v6brick_core::observe::DeviceObservation;

/// Analyzer passes this generator reads.
pub const PASSES: &[PassId] = FUNNEL_PASSES;

/// Table 4: per-category deltas, dual-stack minus IPv6-only.
pub fn table4(suite: &ExperimentSuite) -> TextTable {
    let mut t =
        TextTable::new("Table 4: Dual-stack experiments — feature-support deltas vs IPv6-only")
            .percent_base(suite.profiles.len())
            .headers([
                "Feature",
                "Appliance",
                "Camera",
                "TV/Ent.",
                "Gateway",
                "Health",
                "Home Auto",
                "Speaker",
                "Total",
                "%",
            ]);
    let mut delta = |label: &str, f: &dyn Fn(&DeviceObservation) -> bool| {
        let dual = count_by_category(suite, |id| f(&suite.dual_observation(id)));
        let v6 = count_by_category(suite, |id| f(&suite.v6only_observation(id)));
        let d: Vec<i64> = dual
            .iter()
            .zip(&v6)
            .map(|(a, b)| *a as i64 - *b as i64)
            .collect();
        t.delta_row(label, &d);
    };
    delta("IPv6 NDP Traffic", &|o| o.ndp_traffic);
    delta("IPv6 Address", &|o| o.has_v6_addr());
    delta("^ Global Unique Address", &active_gua);
    delta("AAAA DNS Request", &|o| !o.aaaa_q_any().is_empty());
    delta("^ AAAA DNS Response", &|o| !o.aaaa_pos_any().is_empty());
    delta("Internet TCP/UDP Data Comm.", &|o| o.v6_internet_data());
    t
}
