//! The compact map of measured headline numbers used by the integration
//! tests and EXPERIMENTS.md.

use super::{aaaa_v4_only, active_gua, dad_counts, has_eui64_addr, has_lla, has_ula};
use crate::suite::ExperimentSuite;
use std::collections::BTreeMap;
use v6brick_core::analysis::PassId;

/// Analyzer passes the headline numbers read (the funnel plus DAD).
pub const PASSES: &[PassId] = super::FUNNEL_PASSES;

/// A compact map of measured headline numbers used by the integration
/// tests and EXPERIMENTS.md.
pub fn headline_numbers(suite: &ExperimentSuite) -> BTreeMap<&'static str, i64> {
    let v6 = |id: &str| suite.v6only_observation(id);
    let u = |id: &str| suite.v6_and_dual_observation(id);
    let ids: Vec<&str> = suite.device_ids().collect();
    let count = |f: &dyn Fn(&str) -> bool| ids.iter().filter(|id| f(id)).count() as i64;
    let mut m = BTreeMap::new();
    m.insert("t3_ndp", count(&|id| v6(id).ndp_traffic));
    m.insert("t3_addr", count(&|id| v6(id).has_v6_addr()));
    m.insert("t3_gua", count(&|id| active_gua(&v6(id))));
    m.insert("t3_aaaa_v6", count(&|id| !v6(id).aaaa_q_v6.is_empty()));
    m.insert("t3_aaaa_pos", count(&|id| !v6(id).aaaa_pos_v6.is_empty()));
    m.insert("t3_data", count(&|id| v6(id).v6_internet_data()));
    m.insert("t3_functional", count(&|id| suite.functional_v6only(id)));
    m.insert("t5_addr", count(&|id| u(id).has_v6_addr()));
    m.insert("t5_stateful", count(&|id| u(id).dhcpv6_stateful));
    m.insert("t5_gua", count(&|id| active_gua(&u(id))));
    m.insert("t5_ula", count(&|id| has_ula(&u(id))));
    m.insert("t5_lla", count(&|id| has_lla(&u(id))));
    m.insert("t5_eui64", count(&|id| has_eui64_addr(&u(id))));
    m.insert("t5_dns6", count(&|id| u(id).dns_over_v6()));
    m.insert(
        "t5_a_only",
        count(&|id| !u(id).a_only_v6_names().is_empty()),
    );
    m.insert("t5_aaaa_any", count(&|id| !u(id).aaaa_q_any().is_empty()));
    m.insert("t5_aaaa_v4only", count(&|id| aaaa_v4_only(&u(id))));
    m.insert("t5_aaaa_pos", count(&|id| !u(id).aaaa_pos_any().is_empty()));
    m.insert("t5_stateless", count(&|id| u(id).dhcpv6_stateless));
    m.insert(
        "t5_trans",
        count(&|id| u(id).v6_internet_bytes + u(id).v6_local_bytes > 0),
    );
    m.insert("t5_internet", count(&|id| u(id).v6_internet_data()));
    m.insert("t5_local", count(&|id| u(id).v6_local_bytes > 0));
    let (dad_some, dad_never) = dad_counts(suite);
    m.insert("dad_skip_some", dad_some as i64);
    m.insert("dad_never", dad_never as i64);
    m
}
