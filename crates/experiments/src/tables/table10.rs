//! Table 10: the measured per-device feature flags (the paper's
//! appendix inventory), from the captures.

use super::{active_gua, FUNNEL_PASSES};
use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use v6brick_core::analysis::PassId;

/// Analyzer passes this generator reads.
pub const PASSES: &[PassId] = FUNNEL_PASSES;

/// Table 10: the measured per-device feature flags (the paper's
/// appendix inventory), from the captures.
pub fn table10(suite: &ExperimentSuite) -> TextTable {
    let mut t = TextTable::new("Table 10: devices, categories, and measured IPv6 features")
        .headers([
            "Device",
            "Category",
            "Func v6-only",
            "NDP",
            "IPv6 Addr",
            "GUA",
            "DNS/IPv6",
            "Global Data",
        ]);
    for p in &suite.profiles {
        let o = suite.v6_and_dual_observation(&p.id);
        let y = |b: bool| if b { "yes" } else { "-" };
        t.row([
            p.name.clone(),
            p.category.label().to_string(),
            y(suite.functional_v6only(&p.id)).to_string(),
            y(o.ndp_traffic).to_string(),
            y(o.has_v6_addr()).to_string(),
            y(active_gua(&o)).to_string(),
            y(o.dns_over_v6()).to_string(),
            y(o.v6_internet_data()).to_string(),
        ]);
    }
    t
}
