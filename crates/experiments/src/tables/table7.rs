//! Table 7: destination AAAA readiness, measured by the active DNS
//! experiment, split functional / non-functional and grouped by category
//! and by manufacturer.

use crate::active_dns::ActiveDnsReport;
use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use std::collections::BTreeSet;
use v6brick_core::analysis::PassId;
use v6brick_devices::profile::Category;
use v6brick_net::dns::Name;

/// Analyzer passes this generator reads (query names from `dns`, SNI
/// from `traffic`).
pub const PASSES: &[PassId] = &[PassId::Dns, PassId::Traffic];

/// Table 7: destination AAAA readiness, measured by the active DNS
/// experiment, split functional / non-functional and grouped by category
/// and by manufacturer.
pub fn table7(suite: &ExperimentSuite, active: &ActiveDnsReport) -> TextTable {
    let ready = active.aaaa_ready();
    let mut t = TextTable::new("Table 7: DNS AAAA readiness across destinations (active queries)")
        .headers([
            "Group",
            "Device #",
            "Domain #",
            "AAAA Res. #",
            "AAAA Res. %",
        ]);

    // Per-device observed domains (DNS + SNI, all runs).
    let device_domains = |id: &str| -> BTreeSet<Name> {
        let mut out = BTreeSet::new();
        for run in suite.runs() {
            if let Some(o) = run.analysis.device(id) {
                for n in o
                    .a_q_v4
                    .iter()
                    .chain(&o.a_q_v6)
                    .chain(&o.aaaa_q_v4)
                    .chain(&o.aaaa_q_v6)
                    .chain(&o.sni_domains)
                {
                    if !n.as_str().ends_with(".local") {
                        out.insert(n.clone());
                    }
                }
            }
        }
        out
    };

    let group_row = |t: &mut TextTable, label: String, ids: Vec<&str>| {
        let mut domains = BTreeSet::new();
        for id in &ids {
            domains.extend(device_domains(id));
        }
        let ready_count = domains.iter().filter(|d| ready.contains(*d)).count();
        let pct = if domains.is_empty() {
            0.0
        } else {
            100.0 * ready_count as f64 / domains.len() as f64
        };
        t.row([
            label,
            ids.len().to_string(),
            domains.len().to_string(),
            ready_count.to_string(),
            format!("{pct:.1}%"),
        ]);
    };

    t.row([
        "— Functional devices in IPv6-only network —",
        "",
        "",
        "",
        "",
    ]);
    for c in Category::ALL {
        let ids: Vec<&str> = suite
            .profiles
            .iter()
            .filter(|p| p.category == c && suite.functional_v6only(&p.id))
            .map(|p| p.id.as_str())
            .collect();
        if !ids.is_empty() {
            group_row(&mut t, c.label().to_string(), ids);
        }
    }
    let func: Vec<&str> = suite
        .profiles
        .iter()
        .filter(|p| suite.functional_v6only(&p.id))
        .map(|p| p.id.as_str())
        .collect();
    group_row(&mut t, "Total (functional)".into(), func);

    t.row([
        "— Non-functional devices in IPv6-only network —",
        "",
        "",
        "",
        "",
    ]);
    for c in Category::ALL {
        let ids: Vec<&str> = suite
            .profiles
            .iter()
            .filter(|p| p.category == c && !suite.functional_v6only(&p.id))
            .map(|p| p.id.as_str())
            .collect();
        if !ids.is_empty() {
            group_row(&mut t, c.label().to_string(), ids);
        }
    }
    let nonfunc: Vec<&str> = suite
        .profiles
        .iter()
        .filter(|p| !suite.functional_v6only(&p.id))
        .map(|p| p.id.as_str())
        .collect();
    group_row(&mut t, "Total (non-functional)".into(), nonfunc);

    // By manufacturer (>= 3 devices), non-functional side like the paper.
    t.row([
        "— Non-functional, by manufacturer (>= 3 devices) —",
        "",
        "",
        "",
        "",
    ]);
    let mut mans: Vec<&String> = suite.profiles.iter().map(|p| &p.manufacturer).collect();
    mans.sort();
    mans.dedup();
    for man in mans {
        let ids: Vec<&str> = suite
            .profiles
            .iter()
            .filter(|p| &p.manufacturer == man && !suite.functional_v6only(&p.id))
            .map(|p| p.id.as_str())
            .collect();
        if ids.len() >= 3 {
            group_row(&mut t, man.clone(), ids);
        }
    }
    t
}
