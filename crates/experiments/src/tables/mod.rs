//! One generator per paper table, one module per generator. Every number
//! here is *measured* from the captures (or the device models for the
//! functionality column); the registry's ground truth is never consulted.
//!
//! Each module declares the analyzer passes its generator reads
//! (`PASSES`, e.g. [`table3::PASSES`]) so callers — the `repro` binary in
//! particular — can compose the union of exactly the passes an artifact
//! needs via [`v6brick_core::analysis::PassSet`] instead of paying for
//! the full pipeline. The generator functions are re-exported here, so
//! `tables::table3(&suite)` keeps compiling unchanged alongside
//! `tables::table3::PASSES`.

pub mod dad;
pub mod headline;
pub mod table10;
pub mod table11;
pub mod table12;
pub mod table13;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod table9;
pub mod variants;

pub use dad::{dad_counts, dad_report};
pub use headline::headline_numbers;
pub use table10::table10;
pub use table11::table11;
pub use table12::table12;
pub use table13::table13;
pub use table3::table3;
pub use table4::table4;
pub use table5::table5;
pub use table6::table6;
pub use table7::table7;
pub use table8::table8;
pub use table9::table9;
pub use variants::variants;

use crate::suite::ExperimentSuite;
use v6brick_core::analysis::PassId;
use v6brick_core::observe::DeviceObservation;
use v6brick_devices::profile::Category;
use v6brick_net::ipv6::Ipv6AddrExt;

/// The full adoption funnel: addressing, NDP, DNS, and traffic — what
/// the Table 3/4-style feature tables read.
pub const FUNNEL_PASSES: &[PassId] = &[
    PassId::Addressing,
    PassId::NdpDad,
    PassId::Dns,
    PassId::Traffic,
];

/// Addressing + DNS + traffic (no NDP row).
pub const FEATURE_PASSES: &[PassId] = &[PassId::Addressing, PassId::Dns, PassId::Traffic];

/// Union of the passes every table generator declares — the suite scope
/// that can serve any table.
pub fn all_table_passes() -> Vec<PassId> {
    let mut out: Vec<PassId> = Vec::new();
    for passes in [
        table3::PASSES,
        table4::PASSES,
        table5::PASSES,
        table6::PASSES,
        table7::PASSES,
        table8::PASSES,
        table9::PASSES,
        table10::PASSES,
        table11::PASSES,
        table12::PASSES,
        table13::PASSES,
        variants::PASSES,
        dad::PASSES,
        headline::PASSES,
    ] {
        for p in passes {
            if !out.contains(p) {
                out.push(*p);
            }
        }
    }
    out
}

/// Count devices per category satisfying `pred`.
pub fn count_by_category(
    suite: &ExperimentSuite,
    mut pred: impl FnMut(&str) -> bool,
) -> Vec<usize> {
    Category::ALL
        .iter()
        .map(|c| {
            suite
                .profiles
                .iter()
                .filter(|p| p.category == *c && pred(&p.id))
                .count()
        })
        .collect()
}

// --- shared measurement predicates -----------------------------------------

/// Active GUA (sourced traffic from a global address)?
pub fn active_gua(o: &DeviceObservation) -> bool {
    o.active_v6.iter().any(|a| a.is_global_unicast())
}

/// Holds an active EUI-64 address: an (inherently link-used) EUI-64 LLA,
/// or an EUI-64 global that sourced traffic.
pub fn has_eui64_addr(o: &DeviceObservation) -> bool {
    o.all_addrs()
        .iter()
        .any(|a| a.is_link_local() && a.is_eui64())
        || o.active_v6
            .iter()
            .any(|a| !a.is_link_local() && a.is_eui64())
}

/// Assigned any ULA?
pub fn has_ula(o: &DeviceObservation) -> bool {
    o.all_addrs().iter().any(|a| a.is_unique_local())
}

/// Assigned any LLA?
pub fn has_lla(o: &DeviceObservation) -> bool {
    o.all_addrs().iter().any(|a| a.is_link_local())
}

/// Any v4-only AAAA query name?
pub fn aaaa_v4_only(o: &DeviceObservation) -> bool {
    o.aaaa_q_v4.difference(&o.aaaa_q_v6).next().is_some()
}
