//! Table 12: feature support by purchase year.

use super::{active_gua, FUNNEL_PASSES};
use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use v6brick_core::analysis::PassId;

/// Analyzer passes this generator reads.
pub const PASSES: &[PassId] = FUNNEL_PASSES;

/// Table 12: feature support by purchase year.
pub fn table12(suite: &ExperimentSuite) -> TextTable {
    let years: Vec<u16> = {
        let mut y: Vec<u16> = suite.profiles.iter().map(|p| p.purchase_year).collect();
        y.sort();
        y.dedup();
        y
    };
    let mut headers = vec!["Feature".to_string()];
    headers.extend(years.iter().map(|y| y.to_string()));
    let mut t = TextTable::new("Table 12: IPv6 feature support by purchase year");
    t.headers = headers;

    let o = |id: &str| suite.v6_and_dual_observation(id);
    let row = |t: &mut TextTable, label: &str, f: &dyn Fn(&str) -> bool| {
        let mut r = vec![label.to_string()];
        for y in &years {
            let n = suite
                .profiles
                .iter()
                .filter(|p| p.purchase_year == *y && f(&p.id))
                .count();
            r.push(n.to_string());
        }
        t.rows.push(r);
    };
    row(&mut t, "# of Devices", &|_| true);
    row(&mut t, "IPv6 NDP Traffic", &|id| o(id).ndp_traffic);
    row(&mut t, "IPv6 Address", &|id| o(id).has_v6_addr());
    row(&mut t, "GUA", &|id| active_gua(&o(id)));
    row(&mut t, "AAAA DNS Request", &|id| {
        !o(id).aaaa_q_any().is_empty()
    });
    row(&mut t, "AAAA Response", &|id| {
        !o(id).aaaa_pos_any().is_empty()
    });
    row(&mut t, "Internet TCP/UDP IPv6 Data", &|id| {
        o(id).v6_internet_data()
    });
    row(&mut t, "Functional over IPv6-only", &|id| {
        suite.functional_v6only(id)
    });
    t
}
