//! Table 8: feature support by manufacturer/platform (≥3 devices) and OS
//! (≥2 devices).

use super::{aaaa_v4_only, active_gua, has_lla, has_ula};
use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use v6brick_core::analysis::PassId;
use v6brick_devices::profile::Os;
use v6brick_net::ipv6::Ipv6AddrExt;

/// Analyzer passes this generator reads.
pub const PASSES: &[PassId] = super::FEATURE_PASSES;

/// Table 8: feature support by manufacturer/platform (≥3 devices) and OS
/// (≥2 devices).
pub fn table8(suite: &ExperimentSuite) -> TextTable {
    let o = |id: &str| suite.v6_and_dual_observation(id);
    // Column groups.
    let mut mans: Vec<String> = suite
        .profiles
        .iter()
        .map(|p| p.manufacturer.clone())
        .collect();
    mans.sort();
    mans.dedup();
    let mans: Vec<String> = mans
        .into_iter()
        .filter(|m| {
            suite
                .profiles
                .iter()
                .filter(|p| &p.manufacturer == m)
                .count()
                >= 3
        })
        .collect();
    let oses: Vec<Os> = [
        Os::Tizen,
        Os::FireOs,
        Os::AndroidBased,
        Os::Fuchsia,
        Os::IosTvos,
    ]
    .into_iter()
    .filter(|os| suite.profiles.iter().filter(|p| p.os == *os).count() >= 2)
    .collect();

    let mut headers = vec!["Feature".to_string(), "Total".to_string()];
    headers.extend(mans.iter().cloned());
    headers.extend(oses.iter().map(|os| os.label().to_string()));
    let mut t = TextTable::new(
        "Table 8: IPv6 feature support per manufacturer/platform (>=3 devices) and OS (>=2 devices)",
    );
    t.headers = headers;

    let feature_row = |t: &mut TextTable, label: &str, f: &dyn Fn(&str) -> bool| {
        let mut r = vec![label.to_string()];
        let total = suite.profiles.iter().filter(|p| f(&p.id)).count();
        r.push(total.to_string());
        for m in &mans {
            let n = suite
                .profiles
                .iter()
                .filter(|p| &p.manufacturer == m && f(&p.id))
                .count();
            r.push(n.to_string());
        }
        for os in &oses {
            let n = suite
                .profiles
                .iter()
                .filter(|p| p.os == *os && f(&p.id))
                .count();
            r.push(n.to_string());
        }
        t.rows.push(r);
    };

    feature_row(&mut t, "Device #", &|_| true);
    feature_row(&mut t, "Functional over IPv6-only", &|id| {
        suite.functional_v6only(id)
    });
    feature_row(&mut t, "IPv6 Address", &|id| o(id).has_v6_addr());
    feature_row(&mut t, "Stateful DHCPv6", &|id| o(id).dhcpv6_stateful);
    feature_row(&mut t, "GUA", &|id| active_gua(&o(id)));
    feature_row(&mut t, "ULA", &|id| has_ula(&o(id)));
    feature_row(&mut t, "LLA", &|id| has_lla(&o(id)));
    feature_row(&mut t, "GUA EUI-64 Address", &|id| {
        o(id)
            .active_v6
            .iter()
            .any(|a| a.is_global_unicast() && a.is_eui64())
    });
    feature_row(&mut t, "DNS over IPv6", &|id| o(id).dns_over_v6());
    feature_row(&mut t, "A-only Req in IPv6", &|id| {
        !o(id).a_only_v6_names().is_empty()
    });
    feature_row(&mut t, "AAAA Req (v4 or v6)", &|id| {
        !o(id).aaaa_q_any().is_empty()
    });
    feature_row(&mut t, "IPv4-only AAAA Req", &|id| aaaa_v4_only(&o(id)));
    feature_row(&mut t, "EUI-64 Addr DNS Req", &|id| {
        o(id)
            .dns_src_v6
            .iter()
            .any(|a| a.is_global_unicast() && a.is_eui64())
    });
    feature_row(&mut t, "AAAA Response", &|id| {
        !o(id).aaaa_pos_any().is_empty()
    });
    feature_row(&mut t, "Stateless DHCPv6", &|id| o(id).dhcpv6_stateless);
    feature_row(&mut t, "IPv6 TCP/UDP Trans", &|id| {
        o(id).v6_internet_bytes + o(id).v6_local_bytes > 0
    });
    feature_row(&mut t, "Internet Trans", &|id| o(id).v6_internet_data());
    feature_row(&mut t, "Local Data Trans", &|id| o(id).v6_local_bytes > 0);
    feature_row(&mut t, "EUI-64 Internet Trans", &|id| {
        o(id)
            .data_src_v6
            .iter()
            .any(|a| a.is_global_unicast() && a.is_eui64())
    });
    t
}
