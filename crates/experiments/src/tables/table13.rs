//! Table 13: address and distinct-query counts by manufacturer and OS.

use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use v6brick_core::analysis::PassId;
use v6brick_core::observe::DeviceObservation;
use v6brick_devices::profile::Os;
use v6brick_net::ipv6::{AddressKind, Ipv6AddrExt};

/// Analyzer passes this generator reads (address sets and query names —
/// no traffic accounting).
pub const PASSES: &[PassId] = &[PassId::Addressing, PassId::Dns];

/// Table 13: address and distinct-query counts by manufacturer and OS.
pub fn table13(suite: &ExperimentSuite) -> TextTable {
    let o = |id: &str| suite.v6_and_dual_observation(id);
    let mut mans: Vec<String> = suite
        .profiles
        .iter()
        .map(|p| p.manufacturer.clone())
        .collect();
    mans.sort();
    mans.dedup();
    let mans: Vec<String> = mans
        .into_iter()
        .filter(|m| {
            suite
                .profiles
                .iter()
                .filter(|p| &p.manufacturer == m)
                .count()
                >= 3
        })
        .collect();
    let oses = [
        Os::Tizen,
        Os::FireOs,
        Os::AndroidBased,
        Os::Fuchsia,
        Os::IosTvos,
    ];

    let mut headers = vec!["Metric".to_string(), "Total".to_string()];
    headers.extend(mans.iter().cloned());
    headers.extend(oses.iter().map(|os| os.label().to_string()));
    let mut t =
        TextTable::new("Table 13: IPv6 addresses and distinct DNS queries per manufacturer and OS");
    t.headers = headers;

    let row = |t: &mut TextTable, label: &str, f: &dyn Fn(&DeviceObservation) -> usize| {
        let mut r = vec![label.to_string()];
        let total: usize = suite.profiles.iter().map(|p| f(&o(&p.id))).sum();
        r.push(total.to_string());
        for m in &mans {
            let n: usize = suite
                .profiles
                .iter()
                .filter(|p| &p.manufacturer == m)
                .map(|p| f(&o(&p.id)))
                .sum();
            r.push(n.to_string());
        }
        for os in oses {
            let n: usize = suite
                .profiles
                .iter()
                .filter(|p| p.os == os)
                .map(|p| f(&o(&p.id)))
                .sum();
            r.push(n.to_string());
        }
        t.rows.push(r);
    };
    row(&mut t, "IPv6 Address", &|ob| ob.all_addrs().len());
    row(&mut t, "GUA", &|ob| {
        ob.all_addrs()
            .iter()
            .filter(|a| a.kind() == AddressKind::Global)
            .count()
    });
    row(&mut t, "ULA", &|ob| {
        ob.all_addrs()
            .iter()
            .filter(|a| a.kind() == AddressKind::UniqueLocal)
            .count()
    });
    row(&mut t, "LLA", &|ob| {
        ob.all_addrs()
            .iter()
            .filter(|a| a.kind() == AddressKind::LinkLocal)
            .count()
    });
    row(&mut t, "AAAA Req", &|ob| ob.aaaa_q_any().len());
    row(&mut t, "A only Req in IPv6", &|ob| {
        ob.a_only_v6_names().len()
    });
    row(&mut t, "IPv4-only AAAA Req", &|ob| {
        ob.aaaa_q_v4.difference(&ob.aaaa_q_v6).count()
    });
    row(&mut t, "AAAA Res", &|ob| ob.aaaa_pos_any().len());
    t
}
