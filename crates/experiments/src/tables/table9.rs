//! Table 9: destination domains switching between IPv4 and IPv6.

use crate::active_dns::ActiveDnsReport;
use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use crate::NetworkConfig;
use std::collections::BTreeSet;
use v6brick_core::analysis::PassId;
use v6brick_core::transitions;
use v6brick_net::dns::Name;

/// Analyzer passes this generator reads (destination domains from
/// `traffic`, which pulls in `dns`).
pub const PASSES: &[PassId] = &[PassId::Dns, PassId::Traffic];

/// Table 9: destination domains switching between IPv4 and IPv6.
pub fn table9(suite: &ExperimentSuite, active: &ActiveDnsReport) -> TextTable {
    let mut t =
        TextTable::new("Table 9: destination domains switching between IPv4 and IPv6 (dual-stack)")
            .headers(["Metric", "Value", "% of common"]);

    // Per-family domain footprints across the whole testbed.
    let union_of = |configs: &[NetworkConfig]| {
        let (mut v4, mut v6) = (BTreeSet::new(), BTreeSet::new());
        for c in configs {
            let run = suite.run(*c);
            let (a, b) = transitions::domains_by_family(&run.analysis);
            v4.extend(a);
            v6.extend(b);
        }
        (v4, v6)
    };
    let (all_v4, all_v6) = union_of(&NetworkConfig::ALL);
    let all: BTreeSet<Name> = all_v4.union(&all_v6).cloned().collect();
    t.row([
        "# of Dest. Domain".to_string(),
        all.len().to_string(),
        String::new(),
    ]);
    t.row([
        "# IPv6 Dest. Domain".to_string(),
        all_v6.len().to_string(),
        format!(
            "{:.1}%",
            100.0 * all_v6.len() as f64 / all.len().max(1) as f64
        ),
    ]);
    t.row([
        "# IPv4 Dest. Domain".to_string(),
        all_v4.len().to_string(),
        format!(
            "{:.1}%",
            100.0 * all_v4.len() as f64 / all.len().max(1) as f64
        ),
    ]);

    let v4_run = suite.run(NetworkConfig::Ipv4Only);
    let v6_run = suite.run(NetworkConfig::Ipv6Only);
    let dual_run = suite.run(NetworkConfig::DualStack);

    let r = transitions::v4_to_v6(&v4_run.analysis, &dual_run.analysis);
    let pct = |n: usize| format!("{:.1}%", 100.0 * n as f64 / r.common.max(1) as f64);
    t.row([
        "# IPv4 dest. partially extending to IPv6".to_string(),
        r.partial_extension.to_string(),
        pct(r.partial_extension),
    ]);
    t.row([
        "# IPv4 dest. fully switching to IPv6".to_string(),
        r.full_switch.to_string(),
        pct(r.full_switch),
    ]);

    let r6 = transitions::v6_to_v4(&v6_run.analysis, &dual_run.analysis);
    let pct6 = |n: usize| format!("{:.1}%", 100.0 * n as f64 / r6.common.max(1) as f64);
    t.row([
        "# IPv6 dest. partially extending to IPv4".to_string(),
        r6.partial_extension.to_string(),
        pct6(r6.partial_extension),
    ]);
    t.row([
        "# IPv6 dest. fully switching to IPv4".to_string(),
        r6.full_switch.to_string(),
        pct6(r6.full_switch),
    ]);

    let ready = active.aaaa_ready();
    let unswitched = transitions::v4_only_with_aaaa(&dual_run.analysis, &ready);
    let (dual_v4, dual_v6) = transitions::domains_by_family(&dual_run.analysis);
    let v4_only_in_dual = dual_v4.difference(&dual_v6).count();
    t.row([
        "# IPv4-only Dest. w/ AAAA".to_string(),
        unswitched.len().to_string(),
        format!(
            "{:.1}%",
            100.0 * unswitched.len() as f64 / v4_only_in_dual.max(1) as f64
        ),
    ]);
    t
}
