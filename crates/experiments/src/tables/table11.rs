//! Table 11: firmware versions of select devices (appendix C).

use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use v6brick_core::analysis::PassId;

/// Analyzer passes this generator reads: none — firmware versions come
/// from the registry, not the captures.
pub const PASSES: &[PassId] = &[];

/// Table 11: firmware versions of select devices (appendix C).
pub fn table11(suite: &ExperimentSuite) -> TextTable {
    let mut t = TextTable::new("Table 11: firmware versions of select devices")
        .headers(["Device", "Version"]);
    for p in &suite.profiles {
        if let Some(v) = v6brick_devices::registry::firmware(&p.id) {
            t.row([p.name.clone(), v.to_string()]);
        }
    }
    t
}
