//! Side-by-side comparison of the three IPv6-only variants (the paper
//! discusses these differences in §5.2.1 but never tabulates them).

use super::FUNNEL_PASSES;
use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use crate::NetworkConfig;
use v6brick_core::analysis::PassId;
use v6brick_core::observe::DeviceObservation;

/// Analyzer passes this generator reads.
pub const PASSES: &[PassId] = FUNNEL_PASSES;

/// Side-by-side comparison of the three IPv6-only variants (the paper
/// discusses these differences in §5.2.1 but never tabulates them).
pub fn variants(suite: &ExperimentSuite) -> TextTable {
    let mut t = TextTable::new("IPv6-only variants: baseline vs RDNSS-only vs stateful (devices)")
        .headers(["Feature", "Baseline", "RDNSS-only", "Stateful"]);
    let configs = [
        NetworkConfig::Ipv6Only,
        NetworkConfig::Ipv6OnlyRdnssOnly,
        NetworkConfig::Ipv6OnlyStateful,
    ];
    let row = |t: &mut TextTable, label: &str, f: &dyn Fn(&DeviceObservation) -> bool| {
        let mut r = vec![label.to_string()];
        for c in configs {
            let run = suite.run(c);
            r.push(run.analysis.count(|o| f(o)).to_string());
        }
        t.rows.push(r);
    };
    row(&mut t, "NDP traffic", &|o| o.ndp_traffic);
    row(&mut t, "IPv6 address", &|o| o.has_v6_addr());
    row(&mut t, "DNS over IPv6", &|o| o.dns_over_v6());
    row(&mut t, "Stateless DHCPv6 exchange", &|o| o.dhcpv6_stateless);
    row(&mut t, "Stateful DHCPv6 exchange", &|o| o.dhcpv6_stateful);
    row(&mut t, "Got a DHCPv6 address", &|o| {
        !o.dhcpv6_addrs.is_empty()
    });
    row(&mut t, "Internet IPv6 data", &|o| o.v6_internet_data());
    // Functionality per variant.
    let mut r = vec!["Functional".to_string()];
    for c in configs {
        let run = suite.run(c);
        r.push(run.functional.values().filter(|x| **x).count().to_string());
    }
    t.rows.push(r);
    t
}
