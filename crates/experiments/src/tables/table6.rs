//! Table 6: address counts, distinct query names, dual-stack volume
//! fractions — per category.

use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use v6brick_core::analysis::PassId;
use v6brick_core::observe::DeviceObservation;
use v6brick_devices::profile::Category;
use v6brick_net::ipv6::{AddressKind, Ipv6AddrExt};

/// Analyzer passes this generator reads.
pub const PASSES: &[PassId] = super::FEATURE_PASSES;

/// Table 6: address counts, distinct query names, dual-stack volume
/// fractions — per category.
pub fn table6(suite: &ExperimentSuite) -> TextTable {
    let o = |id: &str| suite.v6_and_dual_observation(id);
    let mut t = TextTable::new(
        "Table 6: number of IPv6 addresses, DNS query names, and the dual-stack IPv6 volume fraction",
    )
    .headers([
        "Metric", "Appliance", "Camera", "TV/Ent.", "Gateway", "Health", "Home Auto",
        "Speaker", "Total",
    ]);
    let sum_by_cat = |f: &dyn Fn(&DeviceObservation) -> usize| -> Vec<usize> {
        Category::ALL
            .iter()
            .map(|c| {
                suite
                    .profiles
                    .iter()
                    .filter(|p| p.category == *c)
                    .map(|p| f(&o(&p.id)))
                    .sum()
            })
            .collect()
    };
    let sum_row = |t: &mut TextTable, label: &str, f: &dyn Fn(&DeviceObservation) -> usize| {
        let counts = sum_by_cat(f);
        let mut r = vec![label.to_string()];
        r.extend(counts.iter().map(|c| c.to_string()));
        r.push(counts.iter().sum::<usize>().to_string());
        t.rows.push(r);
    };
    sum_row(&mut t, "# of IPv6 Addr", &|ob| ob.all_addrs().len());
    sum_row(&mut t, "# of GUA Addr", &|ob| {
        ob.all_addrs()
            .iter()
            .filter(|a| a.kind() == AddressKind::Global)
            .count()
    });
    sum_row(&mut t, "# of ULA Addr", &|ob| {
        ob.all_addrs()
            .iter()
            .filter(|a| a.kind() == AddressKind::UniqueLocal)
            .count()
    });
    sum_row(&mut t, "# of LLA Addr", &|ob| {
        ob.all_addrs()
            .iter()
            .filter(|a| a.kind() == AddressKind::LinkLocal)
            .count()
    });
    sum_row(&mut t, "# of AAAA DNS Req", &|ob| ob.aaaa_q_any().len());
    sum_row(&mut t, "# of A-only Req in IPv6", &|ob| {
        ob.a_only_v6_names().len()
    });
    sum_row(&mut t, "# of IPv4-only AAAA Req", &|ob| {
        ob.aaaa_q_v4.difference(&ob.aaaa_q_v6).count()
    });
    sum_row(&mut t, "# of AAAA DNS Res", &|ob| ob.aaaa_pos_any().len());

    // Volume fraction per category, dual-stack only.
    let mut r = vec!["IPv6 Fraction of Total Volume (%)".to_string()];
    let (mut tot6, mut tot) = (0u64, 0u64);
    for c in Category::ALL {
        let (mut v6, mut all) = (0u64, 0u64);
        for p in suite.profiles.iter().filter(|p| p.category == c) {
            let ob = suite.dual_observation(&p.id);
            v6 += ob.v6_internet_bytes;
            all += ob.v6_internet_bytes + ob.v4_internet_bytes;
        }
        tot6 += v6;
        tot += all;
        r.push(if all == 0 {
            "0.0%".into()
        } else {
            format!("{:.1}%", 100.0 * v6 as f64 / all as f64)
        });
    }
    r.push(format!("{:.1}%", 100.0 * tot6 as f64 / tot.max(1) as f64));
    t.rows.push(r);
    t
}
