//! Extension experiment (§7 future work): IPv6 destination reachability.
//!
//! "Having an IPv6 address does not guarantee the destination is
//! reachable, which explains why some devices still use IPv4 despite
//! having AAAA records." This module makes a configurable fraction of
//! AAAA-ready destinations unreachable over IPv6 and measures the
//! consequences: in dual-stack the devices' happy-eyeballs fallback
//! recovers over IPv4; in an IPv6-only network the same destinations
//! brick their devices outright.

use crate::config::NetworkConfig;
use crate::render::TextTable;
use crate::scenario::{self, ExperimentRun};
use std::collections::BTreeMap;
use v6brick_core::observe::StreamingAnalyzer;
use v6brick_devices::phone::Phone;
use v6brick_devices::profile::DeviceProfile;
use v6brick_devices::registry;
use v6brick_devices::stack::IotDevice;
use v6brick_net::Mac;
use v6brick_sim::internet::{Internet, ZoneDb};
use v6brick_sim::{Router, SimulationBuilder};

/// Build zones where every `k`-th AAAA-ready destination is unreachable
/// over IPv6 (deterministic by name hash).
pub fn zones_with_dead_v6(profiles: &[DeviceProfile], every_kth: u64) -> ZoneDb {
    let base = scenario::build_zones(profiles);
    let mut out = ZoneDb::new();
    for p in base.iter() {
        let mut p = p.clone();
        if p.aaaa.is_some() && every_kth > 0 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in p.name.as_str().bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            if h.is_multiple_of(every_kth) {
                p = p.with_v6_unreachable();
            }
        }
        out.insert(p);
    }
    out
}

/// Run one configuration with degraded v6 reachability.
pub fn run_with_dead_v6(
    config: NetworkConfig,
    profiles: &[DeviceProfile],
    every_kth: u64,
) -> ExperimentRun {
    let zones = zones_with_dead_v6(profiles, every_kth);
    let internet = Internet::new(zones);
    let router = Router::new(config.router_config());
    let mut b = SimulationBuilder::new(router, internet);
    let mut device_ids = Vec::new();
    for p in profiles {
        let id = b.add_host(Box::new(IotDevice::new(p.clone())));
        device_ids.push((id, p.id.clone(), p.mac));
    }
    let pixel = b.add_host(Box::new(Phone::pixel7()));
    let iphone = b.add_host(Box::new(Phone::iphone_x()));
    let macs: Vec<(Mac, String)> = device_ids
        .iter()
        .map(|(_, id, mac)| (*mac, id.clone()))
        .collect();
    b.add_sink(Box::new(StreamingAnalyzer::new(
        &macs,
        scenario::lan_prefix(),
    )));
    let mut sim = b.seed(0x7ea1 ^ config as u64).capture(false).build();
    sim.run_until(scenario::EXPERIMENT_DURATION);

    let mut functional = BTreeMap::new();
    for (hid, id, _) in &device_ids {
        let dev = sim.host(*hid).as_any().downcast_ref::<IotDevice>().unwrap();
        functional.insert(id.clone(), dev.is_functional());
    }
    let phones_ok = [pixel, iphone].iter().all(|h| {
        sim.host(*h)
            .as_any()
            .downcast_ref::<Phone>()
            .map(|p| p.network_ok())
            .unwrap_or(false)
    });
    let neighbors_v6 = sim.router().neighbor_table_v6();
    let analyzer = sim
        .take_sinks()
        .pop()
        .expect("the streaming analyzer was attached above")
        .into_any()
        .downcast::<StreamingAnalyzer>()
        .expect("the only sink is the streaming analyzer");
    let frames = analyzer.frames_fed();
    let analysis = analyzer.finish();
    ExperimentRun {
        config,
        analysis,
        functional,
        phones_ok,
        neighbors_v6,
        frames,
    }
}

/// The reachability report: healthy vs degraded v6, in both dual-stack
/// and IPv6-only networks, over the functional-capable device set.
pub fn report() -> TextTable {
    let ids = [
        "apple_tv",
        "google_tv",
        "tivo_stream",
        "meta_portal_mini",
        "google_home_mini",
        "google_nest_mini",
        "nest_hub",
        "nest_hub_max",
    ];
    let profiles: Vec<DeviceProfile> = ids.iter().map(|id| registry::by_id(id)).collect();

    let healthy_v6 = scenario::run_with_profiles(NetworkConfig::Ipv6Only, &profiles);
    let degraded_v6 = run_with_dead_v6(NetworkConfig::Ipv6Only, &profiles, 2);
    let degraded_dual = run_with_dead_v6(NetworkConfig::DualStack, &profiles, 2);

    let functional = |r: &ExperimentRun| r.functional.values().filter(|f| **f).count();
    let mut t = TextTable::new(
        "Extension (paper §7): IPv6 destination reachability — half the AAAA-ready servers dead over v6",
    )
    .headers(["Scenario", "Functional (of 8)", "Devices with v6 data"]);
    t.row([
        "IPv6-only, all servers reachable".to_string(),
        functional(&healthy_v6).to_string(),
        healthy_v6
            .analysis
            .count(|o| o.v6_internet_data())
            .to_string(),
    ]);
    t.row([
        "IPv6-only, 1/2 of v6 servers dead".to_string(),
        functional(&degraded_v6).to_string(),
        degraded_v6
            .analysis
            .count(|o| o.v6_internet_data())
            .to_string(),
    ]);
    t.row([
        "Dual-stack, 1/2 of v6 servers dead (v4 fallback)".to_string(),
        functional(&degraded_dual).to_string(),
        degraded_dual
            .analysis
            .count(|o| o.v6_internet_data())
            .to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles(ids: &[&str]) -> Vec<DeviceProfile> {
        ids.iter().map(|id| registry::by_id(id)).collect()
    }

    #[test]
    fn dead_v6_required_brick_in_v6only_but_fall_back_in_dual() {
        // Make EVERY v6 server dead: even a fully v6-capable, normally
        // functional device bricks in IPv6-only...
        let p = profiles(&["google_home_mini"]);
        let v6 = run_with_dead_v6(NetworkConfig::Ipv6Only, &p, 1);
        assert_eq!(v6.functional.get("google_home_mini"), Some(&false));
        let o = v6.analysis.device("google_home_mini").unwrap();
        assert!(
            !o.aaaa_pos_v6.is_empty(),
            "AAAA records still resolve — only the data path is dead"
        );
        assert_eq!(o.v6_internet_bytes, 0, "no v6 exchange completes");

        // ...but in dual-stack the happy-eyeballs fallback saves it.
        let dual = run_with_dead_v6(NetworkConfig::DualStack, &p, 1);
        assert_eq!(dual.functional.get("google_home_mini"), Some(&true));
        let o = dual.analysis.device("google_home_mini").unwrap();
        assert!(o.v4_internet_bytes > 0, "recovered over IPv4");
    }

    #[test]
    fn healthy_zones_unaffected_by_zero_fraction() {
        let p = profiles(&["google_home_mini"]);
        let run = run_with_dead_v6(NetworkConfig::Ipv6Only, &p, 0);
        assert_eq!(run.functional.get("google_home_mini"), Some(&true));
    }
}
