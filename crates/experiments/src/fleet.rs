//! Fleet campaigns: many synthetic homes, one population report.
//!
//! Wires the generic `v6brick-fleet` machinery to this crate's
//! experiment harness: a [`CampaignSpec`] describes the population
//! (home count, seed, worker pool, device-count range, Table 2 config
//! mix, experiment duration); [`run`] streams lazily-planned homes
//! through the worker pool, simulates each via [`scenario::run_home`],
//! and folds the per-device observations into per-worker
//! [`PopulationReport`] partials that merge at the end. Each home
//! analyzes **streaming off the capture tap** — no per-home byte buffer
//! ever exists — and its flow table drops as soon as the observations
//! are folded in. Campaign memory is `O(workers)`, never `O(homes)`:
//! specs are derived on demand from `(campaign_seed, index)`, profiles
//! are `&'static` registry handles, failure metadata is re-derived from
//! the failed index, and only one report partial per worker crosses a
//! thread boundary.
//!
//! The report is byte-identical across worker counts for a fixed spec —
//! the per-home absorb order differs under the hierarchical merge, but
//! every aggregate is a sum of per-home integer contributions, so any
//! partition of the homes merges to the same bytes
//! (`tests/fleet_determinism.rs` pins this end to end).

use crate::config::NetworkConfig;
use crate::scenario::{self, ZoneCache};
use std::collections::BTreeMap;
use std::path::Path;
use v6brick_core::analysis::PassId;
use v6brick_core::observe::DeviceObservation;
use v6brick_core::population::{HomeFailure, PopulationReport};
use v6brick_fleet::seed::fold_bytes;
use v6brick_fleet::{plan_home, run_partials, Checkpoint, CheckpointError, Fingerprint, HomeSpec};
use v6brick_sim::SimTime;

/// Re-export of [`v6brick_core::population::POPULATION_PASSES`] (which
/// moved to core so the `v6brickd` ingestion daemon shares the exact
/// pass subset): the passes whose fields the [`PopulationReport`]
/// reads. `bench_ablation_passes` measures the saving over the full set
/// and `tests/fleet_determinism.rs` pins that the report stays
/// byte-identical to a full-pass run.
pub use v6brick_core::population::POPULATION_PASSES;

/// Description of a whole campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Number of homes to synthesize.
    pub homes: u64,
    /// Campaign seed; every home seed derives from it.
    pub seed: u64,
    /// Worker threads (1 = inline reference path).
    pub workers: usize,
    /// Inclusive range for devices per home.
    pub device_range: (usize, usize),
    /// Weighted network-config mix each home draws from.
    pub mix: Vec<(NetworkConfig, u32)>,
    /// Simulated duration per home, seconds.
    pub duration_s: u64,
    /// Analyzer passes each home runs (dependencies are added
    /// automatically). Defaults to [`POPULATION_PASSES`].
    pub passes: Vec<PassId>,
    /// Per-mille of homes whose IoT devices sit behind a 6LoWPAN border
    /// router instead of directly on Ethernet (0 = the pre-mesh,
    /// Ethernet-only population; 1000 = every home meshed). The draw
    /// uses each home's own seed, so home `i`'s topology is independent
    /// of campaign size and worker count.
    pub mesh_per_mille: u32,
    /// Chaos injection: home indices whose runner deliberately panics
    /// before simulating, exercising the pool's crash isolation. Empty
    /// in every real campaign; populated by `--chaos-home` and the
    /// crash-isolation regression tests.
    pub chaos_panic_homes: Vec<u64>,
}

impl Default for CampaignSpec {
    /// 64 homes of 3–12 devices, equal draw over the six Table 2
    /// configs, full 420 s experiment windows, single-threaded,
    /// population-relevant passes only.
    fn default() -> Self {
        CampaignSpec {
            homes: 64,
            seed: 0x6b1c,
            workers: 1,
            device_range: (3, 12),
            mix: NetworkConfig::ALL.iter().map(|c| (*c, 1)).collect(),
            duration_s: 420,
            passes: POPULATION_PASSES.to_vec(),
            mesh_per_mille: 0,
            chaos_panic_homes: Vec::new(),
        }
    }
}

/// Does home `home_seed` of a campaign run the mesh topology? The draw
/// step (4) is disjoint from the planner's config/count/subsample draws
/// (1–3), so adding the mesh axis moves no existing draw.
pub fn home_is_mesh(home_seed: u64, mesh_per_mille: u32) -> bool {
    v6brick_fleet::seed::home_seed(home_seed, 4) % 1000 < u64::from(mesh_per_mille)
}

/// What survives of a home once its simulation ends: the per-device
/// observations and outcomes. (The simulation itself never buffers a
/// capture — analysis streams off the tap.)
struct HomeResult {
    config_label: &'static str,
    devices: BTreeMap<String, DeviceObservation>,
    functional: BTreeMap<String, bool>,
    frames: u64,
}

fn simulate_home(
    scratch: &mut ZoneCache,
    home: HomeSpec<NetworkConfig>,
    duration: SimTime,
    passes: &[PassId],
    mesh_per_mille: u32,
) -> HomeResult {
    if home_is_mesh(home.seed, mesh_per_mille) {
        let mesh = scenario::run_mesh_home(
            scratch,
            home.config,
            &home.profiles,
            home.seed,
            duration,
            passes,
        );
        return HomeResult {
            config_label: mesh.run.config.mesh_label(),
            devices: mesh.run.analysis.devices,
            functional: mesh.run.functional,
            frames: mesh.run.frames,
        };
    }
    let run = scenario::run_home(
        scratch,
        home.config,
        &home.profiles,
        home.seed,
        duration,
        passes,
    );
    HomeResult {
        config_label: run.config.label(),
        devices: run.analysis.devices,
        functional: run.functional,
        frames: run.frames,
    }
    // `run.analysis.flows` and everything else drops here, on the
    // worker thread — peak memory is one analyzer's state per worker,
    // independent of how many frames the home generated.
}

/// Execute a campaign and aggregate the population report.
///
/// Homes stream from the lazy planner into [`run_partials`]: each
/// worker reuses its [`ZoneCache`] scratch across homes and folds
/// results into its own partial report; the partials merge afterwards
/// ([`PopulationReport::merge`] is associative and commutative, so the
/// merged bytes equal the serial in-order fold's).
///
/// Homes that panic are isolated and recorded in
/// [`PopulationReport::failures`](PopulationReport) — they never abort
/// the pool, and (because failures are `#[serde(skip)]`) never perturb
/// the serialized aggregates over the surviving homes. Their seed and
/// config label are re-derived from the failed index alone.
pub fn run(spec: &CampaignSpec) -> PopulationReport {
    let (mut report, failures) = run_range(spec, 0, spec.homes);
    for f in failures {
        report.absorb_failure(f);
    }
    report
}

/// Simulate homes `start..end` of the campaign and return the merged
/// partial report over that range plus the failures inside it.
///
/// This is the shared engine under [`run`] (one range covering the
/// whole campaign) and [`run_checkpointed`] (one range per checkpoint
/// chunk). Failure indices are globalized (the pool enumerates items
/// from zero within each range) and their metadata re-derived from the
/// index alone — no `O(homes)` map, same as before the refactor.
fn run_range(spec: &CampaignSpec, start: u64, end: u64) -> (PopulationReport, Vec<HomeFailure>) {
    let (dev_min, dev_max) = spec.device_range;
    let duration = SimTime::from_secs(spec.duration_s);
    let chaos = &spec.chaos_panic_homes;
    let (partials, panics) = run_partials(
        (start..end).map(|i| plan_home(spec.seed, i, &spec.mix, dev_min..=dev_max)),
        spec.workers,
        ZoneCache::new,
        move |scratch, home: HomeSpec<NetworkConfig>| {
            assert!(
                !chaos.contains(&home.index),
                "chaos: poisoned home {} (seed {:#x})",
                home.index,
                home.seed
            );
            simulate_home(scratch, home, duration, &spec.passes, spec.mesh_per_mille)
        },
        || PopulationReport::new(spec.seed),
        |partial, _index, home| {
            partial.absorb_home(
                home.config_label,
                &home.devices,
                &home.functional,
                home.frames,
            );
        },
    );
    let mut report = PopulationReport::new(spec.seed);
    for partial in &partials {
        report.merge(partial);
    }
    let failures = panics
        .into_iter()
        .map(|p| {
            // The pool enumerates the range's items from zero; globalize
            // before re-deriving the failed home's spec from its index
            // exactly as the planner derived it the first time.
            let index = start + p.index;
            let home = plan_home(spec.seed, index, &spec.mix, dev_min..=dev_max);
            HomeFailure {
                index,
                seed: home.seed,
                config_label: home.config.label().to_string(),
                panic_msg: p.message,
            }
        })
        .collect();
    (report, failures)
}

/// Campaign identity for checkpoint validation: seed and home count
/// directly, everything else that shapes the result bytes folded into
/// `spec_hash`. Worker count is deliberately excluded — the report is
/// byte-identical across worker counts, so resuming a 1-worker run
/// with 8 workers is sound (and pinned by `tests/checkpoint_resume.rs`).
pub fn fingerprint(spec: &CampaignSpec) -> Fingerprint {
    use std::fmt::Write;
    let mut desc = String::new();
    let _ = write!(
        desc,
        "dev={}..={};dur={};",
        spec.device_range.0, spec.device_range.1, spec.duration_s
    );
    for (config, weight) in &spec.mix {
        let _ = write!(desc, "mix={}*{weight};", config.label());
    }
    for pass in &spec.passes {
        let _ = write!(desc, "pass={pass:?};");
    }
    // Appended only when set, so pre-mesh checkpoints stay resumable:
    // an Ethernet-only spec hashes exactly as it did before the axis.
    if spec.mesh_per_mille > 0 {
        let _ = write!(desc, "mesh={};", spec.mesh_per_mille);
    }
    for home in &spec.chaos_panic_homes {
        let _ = write!(desc, "chaos={home};");
    }
    Fingerprint {
        campaign_seed: spec.seed,
        homes: spec.homes,
        spec_hash: fold_bytes(0xf1e7_c4a9, desc.as_bytes()),
    }
}

/// Outcome of one [`run_checkpointed`] leg.
pub struct CheckpointedRun {
    /// The complete campaign report — `None` when the leg paused at
    /// `stop_after` chunks with homes still remaining.
    pub report: Option<PopulationReport>,
    /// First home index not yet simulated (`spec.homes` when complete).
    pub next_index: u64,
    /// Home index the leg resumed from, when a checkpoint was loaded.
    pub resumed_from: Option<u64>,
    /// Checkpoint chunks executed by this leg.
    pub chunks_run: u64,
}

/// Execute a campaign in checkpointed chunks of `every` homes,
/// persisting progress to `path` after each chunk.
///
/// With `resume`, a checkpoint at `path` (validated against the spec's
/// [`fingerprint`]) restarts the campaign from its `next_index`; a
/// missing file starts from zero. `stop_after` bounds how many chunks
/// this leg runs before pausing (used by `--stop-after` and the resume
/// determinism tests); `None` runs to completion.
///
/// Because [`PopulationReport::merge`] is associative and commutative
/// and every home derives from `(campaign_seed, index)` alone, a
/// campaign split across any number of pause/resume legs serializes
/// byte-identically to an uninterrupted [`run`].
pub fn run_checkpointed(
    spec: &CampaignSpec,
    path: &Path,
    every: u64,
    resume: bool,
    stop_after: Option<u64>,
) -> Result<CheckpointedRun, CheckpointError> {
    let fp = fingerprint(spec);
    let every = every.max(1);
    let (mut report, mut failures, mut next, resumed_from) = match resume {
        true => match Checkpoint::load(path, fp)? {
            Some(ck) => (ck.report, ck.failures, ck.next_index, Some(ck.next_index)),
            None => (PopulationReport::new(spec.seed), Vec::new(), 0, None),
        },
        false => (PopulationReport::new(spec.seed), Vec::new(), 0, None),
    };
    let mut chunks_run = 0u64;
    while next < spec.homes {
        if let Some(limit) = stop_after {
            if chunks_run >= limit {
                return Ok(CheckpointedRun {
                    report: None,
                    next_index: next,
                    resumed_from,
                    chunks_run,
                });
            }
        }
        let end = (next + every).min(spec.homes);
        let (chunk_report, chunk_failures) = run_range(spec, next, end);
        report.merge(&chunk_report);
        failures.extend(chunk_failures);
        next = end;
        chunks_run += 1;
        Checkpoint {
            fingerprint: fp,
            next_index: next,
            report: report.clone(),
            failures: failures.clone(),
        }
        .save(path)?;
    }
    // Failures live outside the checkpointed report (the field is
    // `serde(skip)`) and are absorbed only on completion, exactly as
    // `run` does at its end.
    for f in failures {
        report.absorb_failure(f);
    }
    Ok(CheckpointedRun {
        report: Some(report),
        next_index: next,
        resumed_from,
        chunks_run,
    })
}

/// Human-readable campaign summary (the non-`--json` CLI output).
pub fn render(report: &PopulationReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let pct = |n: u64| 100.0 * n as f64 / report.devices.max(1) as f64;
    let _ = writeln!(
        out,
        "Fleet campaign: {} homes, {} devices (seed {:#x})",
        report.homes, report.devices, report.campaign_seed
    );
    let _ = writeln!(out, "\nHomes per network config:");
    for (label, n) in &report.homes_by_config {
        let outcome = &report.per_config[label];
        let _ = writeln!(
            out,
            "  {label:<34} {n:>5} homes  {:>5} devices  {:>5.1}% functional",
            outcome.devices,
            100.0 * outcome.functional as f64 / outcome.devices.max(1) as f64
        );
    }
    let f = &report.funnel;
    let _ = writeln!(out, "\nIPv6 funnel (Table 3 marginals, % of all devices):");
    for (name, n) in [
        ("NDP traffic", f.ndp_traffic),
        ("IPv6 address", f.v6_addr),
        ("Active GUA", f.active_gua),
        ("AAAA over v6", f.aaaa_q_v6),
        ("AAAA answered", f.aaaa_pos_v6),
        ("v6 Internet data", f.v6_internet_data),
        ("Functional", f.functional),
    ] {
        let _ = writeln!(out, "  {name:<18} {n:>6}  {:>5.1}%", pct(n));
    }
    let b = &report.behavior;
    let _ = writeln!(out, "\nBehaviour (Table 5 marginals):");
    for (name, n) in [
        ("Stateful DHCPv6", b.dhcpv6_stateful),
        ("ULA", b.ula),
        ("LLA", b.lla),
        ("EUI-64 address", b.eui64_addr),
        ("DNS over IPv6", b.dns_over_v6),
        ("AAAA any transport", b.aaaa_any),
        ("AAAA v4-only", b.aaaa_v4_only),
        ("DHCPv4 used", b.dhcpv4_used),
    ] {
        let _ = writeln!(out, "  {name:<18} {n:>6}  {:>5.1}%", pct(n));
    }
    let _ = writeln!(out, "\nActive IPv6 addresses per device (CDF):");
    for (value, fraction) in report.addr_hist.cdf() {
        let _ = writeln!(out, "  <= {value:>3}  {:>6.1}%", 100.0 * fraction);
    }
    let t = &report.traffic;
    let _ = writeln!(
        out,
        "\nTraffic: {} frames; {} B v6 Internet, {} B v4 Internet, {} B v6 local",
        t.frames, t.v6_internet_bytes, t.v4_internet_bytes, t.v6_local_bytes
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_runs_and_counts() {
        let spec = CampaignSpec {
            homes: 3,
            seed: 5,
            workers: 2,
            device_range: (2, 3),
            duration_s: 45,
            ..Default::default()
        };
        let report = run(&spec);
        assert_eq!(report.homes, 3);
        assert!(report.devices >= 6 && report.devices <= 9);
        assert!(report.traffic.frames > 0);
        assert!(report.failures.is_empty());
        let rendered = render(&report);
        assert!(rendered.contains("3 homes"));
    }

    /// Acceptance: a campaign with one deliberately-panicking home
    /// completes, reports exactly that home as failed, and serializes
    /// byte-identically to a campaign that folds only the survivors.
    #[test]
    fn poisoned_home_is_isolated_and_invisible_in_the_report() {
        let spec = CampaignSpec {
            homes: 4,
            seed: 9,
            workers: 2,
            device_range: (2, 3),
            duration_s: 45,
            chaos_panic_homes: vec![2],
            ..Default::default()
        };
        let poisoned = run(&spec);
        assert_eq!(poisoned.failures.len(), 1);
        let failure = &poisoned.failures[0];
        assert_eq!(failure.index, 2);
        assert!(failure.panic_msg.contains("poisoned home 2"));
        assert!(!failure.config_label.is_empty());
        assert_eq!(poisoned.homes, 3);

        // Reference: same plans, the poisoned index simply never exists.
        let plans = v6brick_fleet::plan_homes(spec.seed, spec.homes, &spec.mix, 2..=3);
        assert_eq!(plans[2].seed, failure.seed);
        let duration = SimTime::from_secs(spec.duration_s);
        let mut clean = PopulationReport::new(spec.seed);
        let mut scratch = ZoneCache::new();
        for home in plans.into_iter().filter(|h| h.index != 2) {
            let r = simulate_home(&mut scratch, home, duration, &spec.passes, 0);
            clean.absorb_home(r.config_label, &r.devices, &r.functional, r.frames);
        }
        assert_eq!(
            serde_json::to_string(&poisoned).unwrap(),
            serde_json::to_string(&clean).unwrap()
        );
    }
}
