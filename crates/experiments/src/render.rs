//! Plain-text table rendering for the `repro` binary and EXPERIMENTS.md.

use std::fmt;

/// A rendered table: a title, a header row, and data rows.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    /// Title.
    pub title: String,
    /// Headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
    /// Denominator for the percentage column of [`TextTable::count_row`]
    /// and [`TextTable::delta_row`] (the testbed population).
    pub percent_base: usize,
}

impl TextTable {
    /// Start a table. The percentage denominator defaults to the paper's
    /// 93-device testbed; override with [`TextTable::percent_base`] when
    /// generating over a subset.
    pub fn new(title: impl Into<String>) -> TextTable {
        TextTable {
            title: title.into(),
            percent_base: 93,
            ..TextTable::default()
        }
    }

    /// Set the denominator used by the percentage columns.
    pub fn percent_base(mut self, population: usize) -> TextTable {
        self.percent_base = population.max(1);
        self
    }

    /// Set the header row.
    pub fn headers<I: IntoIterator<Item = S>, S: Into<String>>(mut self, h: I) -> TextTable {
        self.headers = h.into_iter().map(Into::into).collect();
        self
    }

    /// Append a row.
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, r: I) {
        self.rows.push(r.into_iter().map(Into::into).collect());
    }

    /// Append a row from a label plus per-category counts and a total.
    pub fn count_row(&mut self, label: &str, counts: &[usize]) {
        let mut r = vec![label.to_string()];
        r.extend(counts.iter().map(|c| c.to_string()));
        let total: usize = counts.iter().sum();
        r.push(total.to_string());
        let pct = 100.0 * total as f64 / self.percent_base as f64;
        r.push(format!("{pct:.1}%"));
        self.rows.push(r);
    }

    /// Append a signed-delta row.
    pub fn delta_row(&mut self, label: &str, deltas: &[i64]) {
        let mut r = vec![label.to_string()];
        r.extend(deltas.iter().map(|d| format!("{d:+}")));
        let total: i64 = deltas.iter().sum();
        r.push(format!("{total:+}"));
        let pct = 100.0 * total as f64 / self.percent_base as f64;
        r.push(format!("{pct:+.1}%"));
        self.rows.push(r);
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths.
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        if !self.headers.is_empty() {
            let line: Vec<String> = self
                .headers
                .iter()
                .enumerate()
                .map(|(i, h)| format!("{h:<w$}", w = widths[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
            writeln!(
                f,
                "{}",
                widths
                    .iter()
                    .map(|w| "-".repeat(*w))
                    .collect::<Vec<_>>()
                    .join("  ")
            )?;
        }
        for r in &self.rows {
            let line: Vec<String> = r
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(0)))
                .collect();
            writeln!(f, "{}", line.join("  ").trim_end())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo").headers(["name", "count"]);
        t.row(["alpha", "1"]);
        t.row(["beta-longer", "22"]);
        let s = t.to_string();
        assert!(s.starts_with("Demo\n"));
        assert!(s.contains("alpha        1"));
        assert!(s.contains("beta-longer  22"));
    }

    #[test]
    fn count_row_totals_and_percent() {
        let mut t = TextTable::new("T");
        t.count_row("x", &[1, 2, 3]);
        let s = t.to_string();
        assert!(s.contains("6"));
        assert!(s.contains("6.5%"), "default base is the 93-device testbed");

        let mut t = TextTable::new("T").percent_base(12);
        t.count_row("x", &[1, 2, 3]);
        assert!(t.to_string().contains("50.0%"), "subset base respected");
    }

    #[test]
    fn delta_row_signs() {
        let mut t = TextTable::new("T");
        t.delta_row("d", &[1, -2, 0]);
        let s = t.to_string();
        assert!(s.contains("+1") && s.contains("-2") && s.contains("-1"));
    }
}
