//! The active DNS experiment (§4.3): query AAAA records for every
//! destination domain the devices were observed to use.
//!
//! Like the paper, this runs as a real client: a prober host on the LAN
//! issues one AAAA (and one A) query per name through the simulated
//! resolver path, and records which names return addresses. Nothing reads
//! the zone database directly.

use rand::Rng;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::net::{Ipv4Addr, Ipv6Addr};
use v6brick_net::dns::{Message, Name, RecordType};
use v6brick_net::parse::{Net, ParsedPacket, L4};
use v6brick_net::Mac;
use v6brick_sim::event::SimTime;
use v6brick_sim::host::{Effects, Host};
use v6brick_sim::internet::{Internet, ZoneDb};
use v6brick_sim::wire;
use v6brick_sim::{addrs, Router, RouterConfig, SimulationBuilder};

/// What the prober learned about one name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DnsReadiness {
    /// Has a.
    pub has_a: bool,
    /// Has AAAA.
    pub has_aaaa: bool,
}

/// Results of the active experiment.
#[derive(Debug, Default)]
pub struct ActiveDnsReport {
    /// Names.
    pub names: BTreeMap<Name, DnsReadiness>,
}

impl ActiveDnsReport {
    /// Names with AAAA records.
    pub fn aaaa_ready(&self) -> BTreeSet<Name> {
        self.names
            .iter()
            .filter(|(_, r)| r.has_aaaa)
            .map(|(n, _)| n.clone())
            .collect()
    }
}

const BATCH: usize = 64;

/// The researcher's probing laptop: a LAN host that walks the name list,
/// `dig`-style, over IPv4.
struct Prober {
    mac: Mac,
    names: Vec<Name>,
    next: usize,
    /// txid → (name, rtype)
    pending: BTreeMap<u16, (usize, RecordType)>,
    results: Vec<DnsReadiness>,
    addr: Ipv4Addr,
    done: bool,
}

impl Prober {
    fn new(names: Vec<Name>) -> Prober {
        let results = vec![DnsReadiness::default(); names.len()];
        Prober {
            mac: Mac::new(0x02, 0x99, 0x99, 0x99, 0x99, 0x01),
            names,
            next: 0,
            pending: BTreeMap::new(),
            results,
            addr: Ipv4Addr::new(192, 168, 1, 250),
            done: false,
        }
    }

    fn send_batch(&mut self, fx: &mut Effects) {
        let mut sent = 0;
        while self.next < self.names.len() && sent < BATCH {
            let idx = self.next;
            self.next += 1;
            for rtype in [RecordType::A, RecordType::Aaaa] {
                let txid = (idx as u16) << 1 | u16::from(rtype == RecordType::Aaaa);
                let q = Message::query(txid, self.names[idx].clone(), rtype).build();
                fx.send_frame(wire::udp4_frame(
                    self.mac,
                    addrs::ROUTER_MAC,
                    self.addr,
                    addrs::DNS4_PRIMARY,
                    33000 + (idx % 16000) as u16,
                    53,
                    q,
                ));
                self.pending.insert(txid, (idx, rtype));
            }
            sent += 1;
        }
        if self.next >= self.names.len() && self.pending.is_empty() {
            self.done = true;
        }
    }
}

impl Host for Prober {
    fn mac(&self) -> Mac {
        self.mac
    }

    fn on_start(&mut self, _now: SimTime, fx: &mut Effects) {
        fx.set_timer(SimTime::from_millis(100), 1);
    }

    fn on_frame(&mut self, _now: SimTime, frame: &[u8], _fx: &mut Effects) {
        let Ok(p) = ParsedPacket::parse(frame) else {
            return;
        };
        if let (
            Net::Ipv4(_),
            L4::Udp {
                src_port: 53,
                payload,
                ..
            },
        ) = (&p.net, &p.l4)
        {
            if let Ok(msg) = Message::parse_bytes(payload) {
                if let Some((idx, rtype)) = self.pending.remove(&msg.id) {
                    match rtype {
                        RecordType::A => self.results[idx].has_a = msg.a_answers().next().is_some(),
                        RecordType::Aaaa => {
                            self.results[idx].has_aaaa = msg.aaaa_answers().next().is_some()
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, _now: SimTime, _token: u64, fx: &mut Effects) {
        self.send_batch(fx);
        if !self.done {
            let jitter = fx.rng.gen_range(0..20_000u64);
            fx.set_timer(SimTime(200_000 + jitter), 1);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Run the active experiment: probe every name against the given zones.
///
/// The prober does not DHCP (it is statically configured, like a
/// researcher laptop); the capture tap is off since this experiment's
/// output is the prober's own answer table, as with `dig` scripts.
pub fn probe(names: impl IntoIterator<Item = Name>, zones: ZoneDb) -> ActiveDnsReport {
    let names: Vec<Name> = names.into_iter().collect();
    // The name index is packed into a 15-bit txid field; beyond that the
    // ids would alias and answers would be attributed to wrong names.
    assert!(
        names.len() <= 32_768,
        "active DNS probe supports at most 32768 names per run ({} given)",
        names.len()
    );
    let total = names.len();
    let internet = Internet::new(zones);
    // NAT for the prober's v4 path needs IPv4 enabled.
    let mut router = Router::new(RouterConfig::dual_stack());
    // Pre-seed the router's forwarding table with the prober (no DHCP).
    let prober = Prober::new(names.clone());
    router_learns(&mut router, prober.addr, prober.mac);

    let mut b = SimulationBuilder::new(router, internet);
    let pid = b.add_host(Box::new(prober));
    let mut sim = b.capture(false).seed(0xd16).build();
    // Generously sized window: BATCH names per 200ms.
    let window = SimTime::from_secs(10 + (total as u64 / BATCH as u64 + 2));
    sim.run_until(window);

    let prober = sim
        .host(pid)
        .as_any()
        .downcast_ref::<Prober>()
        .expect("prober host");
    let mut report = ActiveDnsReport::default();
    for (n, r) in prober.names.iter().zip(&prober.results) {
        report.names.insert(n.clone(), *r);
    }
    report
}

/// Teach the router about a statically-configured host (ARP-table entry).
fn router_learns(router: &mut Router, _ip: Ipv4Addr, _mac: Mac) {
    // The router learns dynamically from the first frames (its ARP table
    // fills from any IPv4 source); nothing to do, kept for clarity.
    let _ = router;
}

/// Convenience: the v6 anycast resolver address (used by examples).
pub fn resolver_v6() -> Ipv6Addr {
    addrs::DNS6_PRIMARY
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6brick_sim::internet::DomainProfile;

    #[test]
    fn probe_distinguishes_ready_and_unready() {
        let mut zones = ZoneDb::new();
        zones.insert(DomainProfile::dual_stack("ready.example".parse().unwrap()));
        zones.insert(DomainProfile::v4_only("legacy.example".parse().unwrap()));
        let report = probe(
            vec![
                "ready.example".parse().unwrap(),
                "legacy.example".parse().unwrap(),
                "missing.example".parse().unwrap(),
            ],
            zones,
        );
        let r = report.names[&"ready.example".parse::<Name>().unwrap()];
        assert!(r.has_a && r.has_aaaa);
        let l = report.names[&"legacy.example".parse::<Name>().unwrap()];
        assert!(l.has_a && !l.has_aaaa);
        let m = report.names[&"missing.example".parse::<Name>().unwrap()];
        assert!(!m.has_a && !m.has_aaaa);
        assert_eq!(report.aaaa_ready().len(), 1);
    }

    #[test]
    fn probe_scales_to_many_names() {
        let mut zones = ZoneDb::new();
        let names: Vec<Name> = (0..500)
            .map(|i| format!("n{i}.bulk.example").parse().unwrap())
            .collect();
        for (i, n) in names.iter().enumerate() {
            if i % 3 == 0 {
                zones.insert(DomainProfile::dual_stack(n.clone()));
            } else {
                zones.insert(DomainProfile::v4_only(n.clone()));
            }
        }
        let report = probe(names, zones);
        assert_eq!(report.names.len(), 500);
        assert_eq!(report.aaaa_ready().len(), 167);
    }
}
