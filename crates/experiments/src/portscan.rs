//! The active port-scan experiment (§4.3, §5.4.2).
//!
//! Mirrors the paper's nmap methodology: an ICMPv6 echo to ff02::1
//! refreshes the router's neighbor table, scan targets come from that
//! table (self-assigned addresses may be temporary, so they are harvested
//! live), then TCP SYN scans cover the requested port range and UDP
//! probes cover 1–1024. SYN→SYN/ACK is open, SYN→RST closed; a UDP
//! response is open, ICMPv6 port-unreachable closed.

use rand::Rng;
use std::any::Any;
use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr};
use v6brick_core::ports::ScanResult;
use v6brick_devices::profile::DeviceProfile;
use v6brick_devices::stack::IotDevice;
use v6brick_net::ipv6::mcast;
use v6brick_net::parse::{ParsedPacket, L4};
use v6brick_net::{icmpv6, tcp, Mac};
use v6brick_sim::event::SimTime;
use v6brick_sim::host::{Effects, Host};
use v6brick_sim::internet::Internet;
use v6brick_sim::wire;
use v6brick_sim::{Router, RouterConfig, SimulationBuilder};

/// Which ports to probe.
#[derive(Debug, Clone)]
pub struct ScanPlan {
    /// TCP ports (the paper scans 1–65535).
    pub tcp: Vec<u16>,
    /// UDP ports (the paper scans 1–1024).
    pub udp: Vec<u16>,
}

impl ScanPlan {
    /// The paper's full plan: TCP 1–65535, UDP 1–1024.
    pub fn full() -> ScanPlan {
        ScanPlan {
            tcp: (1..=65535).collect(),
            udp: (1..=1024).collect(),
        }
    }

    /// A fast plan covering the well-known range plus the specific ports
    /// the study cares about; used by tests and the default CLI run.
    pub fn quick() -> ScanPlan {
        let mut tcp: Vec<u16> = (1..=1024).collect();
        tcp.extend([
            5353, 5540, 6668, 7000, 8001, 8060, 8080, 8443, 8883, 9999, 37993, 39500, 46525, 46757,
            49152, 49153,
        ]);
        ScanPlan {
            tcp,
            udp: (1..=1024).collect(),
        }
    }

    /// The Internet-side sweep: the service ports [`ScanPlan::quick`]
    /// carries beyond the well-known range, plus the handful of low
    /// well-known ports WAN scanners lead with. Small enough that a
    /// fleet campaign can afford it against every responsive address.
    pub fn wan() -> ScanPlan {
        let mut tcp: Vec<u16> = vec![21, 22, 23, 53, 80, 123, 443, 554];
        tcp.extend(ScanPlan::quick().tcp.into_iter().filter(|p| *p > 1024));
        tcp.sort_unstable();
        tcp.dedup();
        ScanPlan {
            tcp,
            udp: vec![53, 123, 1900, 5353, 5540],
        }
    }
}

/// Scan results for one device over both families.
#[derive(Debug, Clone, Default)]
pub struct DeviceScan {
    /// IPv4.
    pub v4: ScanResult,
    /// IPv6.
    pub v6: ScanResult,
}

/// The scanning host.
struct Scanner {
    mac: Mac,
    addr4: Ipv4Addr,
    addr6: std::net::Ipv6Addr,
    plan: ScanPlan,
    /// (target ip, port queue index) cursor.
    targets: Vec<(IpAddr, Mac)>,
    cursor_target: usize,
    cursor_port: usize,
    udp_phase: bool,
    results: BTreeMap<IpAddr, ScanResult>,
    pinged: bool,
    done: bool,
}

const SCAN_BATCH: usize = 2048;

impl Scanner {
    fn new(plan: ScanPlan, targets: Vec<(IpAddr, Mac)>) -> Scanner {
        Scanner {
            mac: Mac::new(0x02, 0x99, 0x99, 0x99, 0x99, 0x02),
            addr4: Ipv4Addr::new(192, 168, 1, 251),
            addr6: "2001:db8:10:1::5ca0".parse().unwrap(),
            plan,
            targets,
            cursor_target: 0,
            cursor_port: 0,
            udp_phase: false,
            results: BTreeMap::new(),
            pinged: false,
            done: false,
        }
    }

    fn send_batch(&mut self, fx: &mut Effects) {
        let mut sent = 0;
        while sent < SCAN_BATCH {
            if self.cursor_target >= self.targets.len() {
                if self.udp_phase {
                    self.done = true;
                    return;
                }
                // TCP pass finished; start the UDP pass.
                self.udp_phase = true;
                self.cursor_target = 0;
                self.cursor_port = 0;
                continue;
            }
            let ports = if self.udp_phase {
                &self.plan.udp
            } else {
                &self.plan.tcp
            };
            if self.cursor_port >= ports.len() {
                self.cursor_target += 1;
                self.cursor_port = 0;
                continue;
            }
            let port = ports[self.cursor_port];
            self.cursor_port += 1;
            let (ip, dmac) = self.targets[self.cursor_target];
            if self.udp_phase {
                self.send_udp_probe(ip, dmac, port, fx);
            } else {
                self.send_syn(ip, dmac, port, fx);
            }
            sent += 1;
        }
    }

    fn send_syn(&mut self, ip: IpAddr, dmac: Mac, port: u16, fx: &mut Effects) {
        let sport = 33_000 + (port % 32_000);
        let syn = tcp::Repr::syn(sport, port, u32::from(port) ^ 0x5ca9);
        match ip {
            IpAddr::V6(dst) => {
                fx.send_frame(wire::tcp6_frame(self.mac, dmac, self.addr6, dst, &syn))
            }
            IpAddr::V4(dst) => {
                fx.send_frame(wire::tcp4_frame(self.mac, dmac, self.addr4, dst, &syn))
            }
        }
    }

    fn send_udp_probe(&mut self, ip: IpAddr, dmac: Mac, port: u16, fx: &mut Effects) {
        let sport = 33_000 + (port % 32_000);
        match ip {
            IpAddr::V6(dst) => fx.send_frame(wire::udp6_frame(
                self.mac,
                dmac,
                self.addr6,
                dst,
                sport,
                port,
                b"probe".to_vec(),
            )),
            IpAddr::V4(dst) => fx.send_frame(wire::udp4_frame(
                self.mac,
                dmac,
                self.addr4,
                dst,
                sport,
                port,
                b"probe".to_vec(),
            )),
        }
    }
}

impl Host for Scanner {
    fn mac(&self) -> Mac {
        self.mac
    }

    fn on_start(&mut self, _now: SimTime, fx: &mut Effects) {
        // Wait out the settling window: the paper scans a long-running
        // testbed, so every device must have booted and configured its
        // addresses before the sweep starts.
        fx.set_timer(SimTime::from_secs(65), 1);
    }

    fn on_frame(&mut self, _now: SimTime, frame: &[u8], _fx: &mut Effects) {
        let Ok(p) = ParsedPacket::parse(frame) else {
            return;
        };
        let Some(src_ip) = p.src_ip() else { return };
        // Only unicast replies addressed to the scanner count: multicast
        // chatter (mDNS announcements) must not read as open ports.
        let to_me = matches!(p.dst_ip(), Some(IpAddr::V4(d)) if d == self.addr4)
            || matches!(p.dst_ip(), Some(IpAddr::V6(d)) if d == self.addr6);
        if !to_me {
            return;
        }
        match &p.l4 {
            L4::Tcp { flags, dst_port, src_port, .. }
                // Replies to our SYNs come back with src=scanned port.
                if *dst_port == 33_000 + (*src_port % 32_000)
                    && flags.contains(tcp::Flags::SYN)
                    && flags.contains(tcp::Flags::ACK)
                => {
                    self.results.entry(src_ip).or_default().open_tcp.insert(*src_port);
                }
            L4::Udp { src_port, .. } => {
                self.results.entry(src_ip).or_default().open_udp.insert(*src_port);
            }
            L4::Icmpv6(icmpv6::Repr::DstUnreachable { .. }) => {
                // Port closed — nothing to record (closed is the default).
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _now: SimTime, _token: u64, fx: &mut Effects) {
        if !self.pinged {
            self.pinged = true;
            // The paper's neighbor-table refresh.
            let echo = icmpv6::Repr::EchoRequest {
                ident: 0x5ca9,
                seq: 1,
                payload: vec![],
            };
            fx.send_frame(wire::icmpv6_frame(
                self.mac,
                Mac::for_ipv6_multicast(mcast::ALL_NODES),
                self.addr6,
                mcast::ALL_NODES,
                &echo,
            ));
        }
        self.send_batch(fx);
        if !self.done {
            let jitter = fx.rng.gen_range(0..5_000u64);
            fx.set_timer(SimTime(20_000 + jitter), 1);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Run the scan over the given devices. Two phases, like the paper:
///
/// 1. a short dual-stack settling window in which devices boot and
///    configure addresses (and the all-nodes ping refreshes the
///    neighbor table);
/// 2. target harvesting from the router's neighbor table and DHCPv4
///    leases, followed by the SYN/UDP sweeps.
pub fn scan(profiles: &[DeviceProfile], plan: &ScanPlan) -> BTreeMap<String, DeviceScan> {
    // Phase 1: boot the devices in a dual-stack network.
    let zones = crate::scenario::build_zones(profiles);
    let internet = Internet::new(zones);
    let router = Router::new(RouterConfig::dual_stack());
    let mut b = SimulationBuilder::new(router, internet);
    let mut hosts = Vec::new();
    for p in profiles {
        hosts.push(b.add_host(Box::new(IotDevice::new(p.clone()))));
    }
    let mut sim = b.capture(false).seed(0x5ca9).build();
    sim.run_until(SimTime::from_secs(60));

    // Harvest targets: IPv6 neighbor table + DHCPv4 leases.
    let mut targets: Vec<(IpAddr, Mac)> = Vec::new();
    for (ip, mac) in sim.router().neighbor_table_v6() {
        // Everything in the neighbor table gets scanned, link-locals
        // included — exactly the paper's harvest (devices without GUAs,
        // like the Hue hub, still expose services on their LLA).
        if !ip.is_multicast() && !ip.is_unspecified() {
            targets.push((IpAddr::V6(ip), mac));
        }
    }
    for (mac, ip) in sim.router().leases_v4() {
        targets.push((IpAddr::V4(ip), mac));
    }
    // Drop phone/scanner artifacts: keep only known device MACs.
    let device_macs: BTreeMap<Mac, String> =
        profiles.iter().map(|p| (p.mac, p.id.clone())).collect();
    targets.retain(|(_, m)| device_macs.contains_key(m));

    // Phase 2: continue the same simulation with a scanner host... the
    // engine does not support adding hosts mid-run, so we rebuild with
    // the same seed (deterministic => same addresses) and a scanner.
    let zones = crate::scenario::build_zones(profiles);
    let internet = Internet::new(zones);
    let router = Router::new(RouterConfig::dual_stack());
    let mut b = SimulationBuilder::new(router, internet);
    for p in profiles {
        b.add_host(Box::new(IotDevice::new(p.clone())));
    }
    let scanner = Scanner::new(plan.clone(), targets);
    let sid = b.add_host(Box::new(scanner));
    let mut sim = b.capture(false).seed(0x5ca9).build();
    // Scan duration scales with the plan size.
    let probes = (plan.tcp.len() + plan.udp.len()) * profiles.len() * 2;
    let secs = 70 + (probes / SCAN_BATCH / 45) as u64 + 5;
    sim.run_until(SimTime::from_secs(secs));

    let scanner = sim
        .host(sid)
        .as_any()
        .downcast_ref::<Scanner>()
        .expect("scanner host");
    assert!(scanner.done, "scan did not finish within its window");

    // Fold per-address results into per-device results via MAC.
    let mut out: BTreeMap<String, DeviceScan> = BTreeMap::new();
    for p in profiles {
        out.insert(p.id.clone(), DeviceScan::default());
    }
    for (ip, result) in &scanner.results {
        let mac = scanner
            .targets
            .iter()
            .find(|(t, _)| t == ip)
            .map(|(_, m)| *m);
        let Some(mac) = mac else { continue };
        let Some(id) = device_macs.get(&mac) else {
            continue;
        };
        let entry = out.get_mut(id).expect("device entry");
        match ip {
            IpAddr::V4(_) => {
                entry.v4.open_tcp.extend(&result.open_tcp);
                entry.v4.open_udp.extend(&result.open_udp);
            }
            IpAddr::V6(_) => {
                entry.v6.open_tcp.extend(&result.open_tcp);
                entry.v6.open_udp.extend(&result.open_udp);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6brick_core::ports;
    use v6brick_devices::registry;

    #[test]
    fn fridge_scan_finds_v6_only_ports() {
        let profiles = vec![registry::by_id("samsung_fridge")];
        let results = scan(&profiles, &ScanPlan::quick());
        let fridge = &results["samsung_fridge"];
        assert!(fridge.v4.open_tcp.contains(&8001));
        assert!(fridge.v4.open_tcp.contains(&8080));
        for p in [37993u16, 46525, 46757] {
            assert!(fridge.v6.open_tcp.contains(&p), "v6-only port {p}");
            assert!(!fridge.v4.open_tcp.contains(&p));
        }
        let diff = ports::diff(&fridge.v4, &fridge.v6);
        assert_eq!(diff.tcp_v6_only, [37993, 46525, 46757].into());
    }

    #[test]
    fn v4_only_camera_ports_absent_on_v6() {
        let profiles = vec![registry::by_id("amcrest_cam")];
        let results = scan(&profiles, &ScanPlan::quick());
        let cam = &results["amcrest_cam"];
        assert!(cam.v4.open_tcp.contains(&554));
        assert!(cam.v4.open_tcp.contains(&80));
        // Amcrest has an IPv6 address but serves nothing on it.
        assert!(cam.v6.open_tcp.is_empty());
    }

    #[test]
    fn closed_ports_stay_closed() {
        let profiles = vec![registry::by_id("hue_hub")];
        let results = scan(&profiles, &ScanPlan::quick());
        let hue = &results["hue_hub"];
        assert!(hue.v4.open_tcp.contains(&80) && hue.v4.open_tcp.contains(&443));
        assert!(hue.v6.open_tcp.contains(&80) && hue.v6.open_tcp.contains(&443));
        assert!(!hue.v4.open_tcp.contains(&22));
        assert!(!hue.v6.open_tcp.contains(&22));
    }
}
