//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all                 # everything (tables 2-13, figures 2-5, scans)
//! repro table3              # one artifact
//! repro figure4
//! repro portscan [--full]   # §5.4.2 (full = TCP 1-65535 like the paper)
//! repro tracking            # §5.4.3
//! repro dad                 # §5.2.1 DAD compliance
//! repro fleet 256 [--workers 8] [--seed 42] [--json]
//!                [--max-failures N] [--chaos-home IDX]...
//!                [--checkpoint PATH] [--resume] [--checkpoint-every N]
//!                [--stop-after N] [--mesh-per-mille N]
//!                           # parallel multi-home campaign; exits
//!                           # nonzero only when more than N homes fail.
//!                           # With --checkpoint, progress persists every
//!                           # N homes and --resume continues a stopped
//!                           # run byte-identically. --mesh-per-mille
//!                           # puts N‰ of homes behind a 6LoWPAN border
//!                           # router
//! repro mesh [--seed S] [--duration SECS] [--json]
//!                           # Table 3 across link layers: the same
//!                           # devices on Ethernet vs behind a 6LoWPAN
//!                           # border router; JSON is byte-deterministic
//!                           # per (seed, duration)
//! repro --scenario broken-v6 [--seed S]
//!                           # fault-injection preset (broken-v6,
//!                           # tunnel-flap, ra-suppress, dns-servfail):
//!                           # Table 9-style switching report as JSON
//! repro wanscan [HOMES] [--seed S] [--workers N] [--settle SECS]
//!               [--policy LABEL] [--mesh-per-mille N] [--json] [--verify]
//!                           # WAN-side exposure scan across firewall
//!                           # policies; --verify reruns at other worker
//!                           # counts and byte-diffs the report
//! repro bench-json [--out BENCH_pipeline.json]
//!                           # perf trajectory probe (streaming analyzer
//!                           # frames/sec, suite serial vs parallel,
//!                           # fleet homes/sec); schema in EXPERIMENTS.md
//! repro serve [--addr HOST:PORT] [--seed N] [--shards N] [--loop-threads N]
//!             [--data-dir PATH] [--snapshot-every N]
//!                           # run the v6brickd ingestion daemon until a
//!                           # wire SHUTDOWN (or SIGTERM/SIGINT) drains
//!                           # it; --data-dir write-ahead-logs every
//!                           # upload and recovers state on restart
//! repro stats [--addr HOST:PORT]
//!                           # print a running daemon's STATS JSON
//!                           # (wal_records, recovered_from, ...) — the
//!                           # CI crash-recovery smoke polls this
//! repro upload N [--addr HOST:PORT] [--clients N] [--seed N]
//!                [--duration S] [--workers N] [--dev-min N] [--dev-max N]
//!                [--chaos-home IDX]... [--verify] [--shutdown] [--json]
//!                           # simulate an N-home campaign, replay its
//!                           # captures at a v6brickd server over
//!                           # concurrent clients; --verify diffs the
//!                           # server snapshot against the offline fleet
//!                           # JSON byte-for-byte
//! ```

use std::env;
use v6brick_core::analysis::PassId;
use v6brick_core::ports;
use v6brick_experiments::portscan::{scan, ScanPlan};
use v6brick_experiments::render::TextTable;
use v6brick_experiments::suite::ExperimentSuite;
use v6brick_experiments::{
    active_dns, broken, config, enterprise, figures, fleet, mesh, reachability, scenario, serve,
    tables, tracking, wanscan,
};

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let full_scan = args.iter().any(|a| a == "--full");

    if what == "table2" {
        println!("{}", config::table2());
        return;
    }
    if what == "portscan" {
        run_portscan(full_scan);
        return;
    }
    if what == "enterprise" {
        println!("{}", enterprise::report());
        return;
    }
    if what == "reachability" {
        println!("{}", reachability::report());
        return;
    }
    if what == "fleet" {
        run_fleet(&args[1..]);
        return;
    }
    if what == "mesh" {
        run_mesh(&args[1..]);
        return;
    }
    if what == "--scenario" || what == "scenario" {
        run_scenario(&args[1..]);
        return;
    }
    if what == "wanscan" {
        run_wanscan(&args[1..]);
        return;
    }
    if what == "bench-json" {
        run_bench_json(&args[1..]);
        return;
    }
    if what == "serve" {
        run_serve(&args[1..]);
        return;
    }
    if what == "upload" {
        run_upload(&args[1..]);
        return;
    }
    if what == "stats" {
        run_stats(&args[1..]);
        return;
    }
    const KNOWN: &[&str] = &[
        "all", "table3", "table4", "table5", "table6", "table7", "table8", "table9", "table10",
        "table11", "table12", "table13", "figure2", "figure3", "figure4", "figure5", "dad",
        "variants", "tracking", "json",
    ];
    if !KNOWN.contains(&what) {
        // Reject unknown artifacts *before* paying for the 6-experiment
        // suite.
        eprintln!("unknown artifact {what:?}; {}", usage_hint());
        std::process::exit(2);
    }

    let passes = artifact_passes(what);
    eprintln!(
        "Running the six connectivity experiments over 93 devices (passes: {})...",
        passes
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let t0 = std::time::Instant::now();
    let suite = ExperimentSuite::run_all_scoped(&passes);
    eprintln!(
        "   done in {:?} ({} frames captured)",
        t0.elapsed(),
        suite.runs().iter().map(|r| r.frames).sum::<u64>()
    );

    let active = || {
        eprintln!("Running the active DNS experiment over all observed domains...");
        let zones = scenario::build_zones(&suite.profiles);
        active_dns::probe(suite.observed_domains(), zones)
    };

    let print = |t: TextTable| println!("{t}\n");
    match what {
        "all" => {
            println!("{}", config::table2());
            print(tables::table3(&suite));
            print(figures::figure2(&suite));
            print(tables::table4(&suite));
            print(tables::table5(&suite));
            print(tables::table6(&suite));
            let a = active();
            print(tables::table7(&suite, &a));
            print(tables::table8(&suite));
            print(tables::table9(&suite, &a));
            print(tables::table10(&suite));
            print(tables::table11(&suite));
            print(tables::table12(&suite));
            print(tables::table13(&suite));
            print(figures::figure3(&suite));
            print(figures::figure4(&suite));
            print(figures::figure5(&suite));
            print(tables::variants(&suite));
            print(tables::dad_report(&suite));
            print(tracking::tracking_table(&suite));
            run_portscan(full_scan);
        }
        "table3" => print(tables::table3(&suite)),
        "table4" => print(tables::table4(&suite)),
        "table5" => print(tables::table5(&suite)),
        "table6" => print(tables::table6(&suite)),
        "table7" => print(tables::table7(&suite, &active())),
        "table8" => print(tables::table8(&suite)),
        "table9" => print(tables::table9(&suite, &active())),
        "table10" => print(tables::table10(&suite)),
        "table11" => print(tables::table11(&suite)),
        "table12" => print(tables::table12(&suite)),
        "table13" => print(tables::table13(&suite)),
        "figure2" => print(figures::figure2(&suite)),
        "figure3" => print(figures::figure3(&suite)),
        "figure4" => print(figures::figure4(&suite)),
        "figure5" => print(figures::figure5(&suite)),
        "dad" => print(tables::dad_report(&suite)),
        "variants" => print(tables::variants(&suite)),
        "tracking" => print(tracking::tracking_table(&suite)),
        "json" => {
            // Machine-readable dump: headline numbers + per-device
            // observations across the IPv6-capable union.
            let mut per_device = std::collections::BTreeMap::new();
            for id in suite.device_ids() {
                per_device.insert(id.to_string(), suite.v6_and_dual_observation(id));
            }
            let out = serde_json::json!({
                "headline": tables::headline_numbers(&suite),
                "functional_v6only": suite
                    .device_ids()
                    .filter(|id| suite.functional_v6only(id))
                    .collect::<Vec<_>>(),
                // Capture-health counters: frames analyzed and frames
                // that failed even lenient parsing, summed over the six
                // runs. Anything nonzero in `parse_errors` means the
                // capture path and the analyzer disagree on framing.
                "frames": suite.runs().iter().map(|r| r.analysis.frames).sum::<u64>(),
                "parse_errors": suite.runs().iter().map(|r| r.analysis.parse_errors).sum::<u64>(),
                "devices": per_device,
            });
            println!(
                "{}",
                serde_json::to_string_pretty(&out).expect("serializable")
            );
        }
        other => {
            eprintln!("unknown artifact {other:?}; {}", usage_hint());
            std::process::exit(2);
        }
    }
}

/// The one-line help every "unknown subcommand" error carries: the full
/// subcommand list plus the valid `--scenario` presets, so a typo never
/// leaves the user guessing what would have worked.
fn usage_hint() -> String {
    format!(
        "subcommands: all, table2..table13, figure2..figure5, portscan, dad, variants, \
         tracking, enterprise, reachability, json, fleet, mesh, wanscan, bench-json, serve, \
         upload, stats, --scenario <preset>; scenario presets: {}",
        broken::PRESETS.join(", ")
    )
}

/// The analyzer passes the requested artifact reads — each generator
/// module declares its own `PASSES`, and the suite runs exactly that
/// union (the analyzer closes over dependencies itself, e.g. `traffic`
/// pulling in `dns` for peer-name attribution). `all` and `json` take
/// the union over every generator.
fn artifact_passes(what: &str) -> Vec<PassId> {
    use v6brick_experiments::figures::{
        FIGURE2_PASSES, FIGURE3_PASSES, FIGURE4_PASSES, FIGURE5_PASSES,
    };
    let slice: &[PassId] = match what {
        "table3" => tables::table3::PASSES,
        "table4" => tables::table4::PASSES,
        "table5" => tables::table5::PASSES,
        "table6" => tables::table6::PASSES,
        "table7" => tables::table7::PASSES,
        "table8" => tables::table8::PASSES,
        "table9" => tables::table9::PASSES,
        "table10" => tables::table10::PASSES,
        "table11" => tables::table11::PASSES,
        "table12" => tables::table12::PASSES,
        "table13" => tables::table13::PASSES,
        "figure2" => FIGURE2_PASSES,
        "figure3" => FIGURE3_PASSES,
        "figure4" => FIGURE4_PASSES,
        "figure5" => FIGURE5_PASSES,
        "dad" => tables::dad::PASSES,
        "variants" => tables::variants::PASSES,
        "tracking" => tracking::PASSES,
        _ => {
            // `all`/`json` serve every generator: tables, figures, and
            // the tracking report.
            let mut union = tables::all_table_passes();
            for extra in [
                FIGURE2_PASSES,
                FIGURE3_PASSES,
                FIGURE4_PASSES,
                FIGURE5_PASSES,
                tracking::PASSES,
            ] {
                for p in extra {
                    if !union.contains(p) {
                        union.push(*p);
                    }
                }
            }
            return union;
        }
    };
    slice.to_vec()
}

/// `repro --scenario <preset> [--seed S]` — run a fault-injection
/// preset and emit its switching report. Human summary on stderr, the
/// byte-deterministic JSON report on stdout (CI reruns and diffs it).
fn run_scenario(args: &[String]) {
    let mut seed: u64 = 1;
    let mut preset: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs a value");
                        std::process::exit(2);
                    })
                    .parse()
                    .unwrap_or_else(|e| {
                        eprintln!("bad value for --seed: {e}");
                        std::process::exit(2);
                    });
            }
            other if !other.starts_with('-') => preset = Some(other.to_string()),
            other => {
                eprintln!("unknown scenario flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(preset) = preset else {
        eprintln!("usage: repro --scenario <preset> [--seed S]");
        eprintln!("presets: {}", broken::PRESETS.join(", "));
        std::process::exit(2);
    };
    eprintln!("Running fault-injection preset {preset:?} (seed {seed:#x})...");
    let t0 = std::time::Instant::now();
    let Some(report) = broken::run_preset(&preset, seed) else {
        eprintln!(
            "unknown preset {preset:?}; try: {}",
            broken::PRESETS.join(", ")
        );
        std::process::exit(2);
    };
    eprintln!("   done in {:?}", t0.elapsed());
    eprintln!("{}", broken::render(&report));
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("serializable")
    );
}

/// `repro fleet <homes> [--workers W] [--seed S] [--duration SECS]
/// [--max-failures N] [--chaos-home IDX]... [--json]`
/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`). `None` off Linux or if procfs is unreadable.
///
/// The high-water mark is monotonic for the life of the process, so a
/// per-campaign measurement needs the campaign in its own process —
/// which is exactly how `bench-json`'s scale probe uses `repro fleet`.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// `repro mesh [--seed S] [--duration SECS] [--json]` — the link-layer
/// readiness comparison: [`mesh::CONFIGS`] over [`mesh::DEVICE_IDS`],
/// each run once on the Ethernet LAN and once behind a 6LoWPAN border
/// router. Human tables on stdout by default; `--json` emits the
/// byte-deterministic report CI reruns and diffs.
fn run_mesh(args: &[String]) {
    let mut spec = mesh::MeshSpec::default();
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
                .parse::<u64>()
                .unwrap_or_else(|e| {
                    eprintln!("bad value for {flag}: {e}");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--seed" => spec.seed = value("--seed"),
            "--duration" => spec.duration_s = value("--duration"),
            "--json" => json = true,
            other => {
                eprintln!("unknown mesh flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    eprintln!(
        "Comparing {} devices x {} configs across link layers (seed {:#x}, {} s windows)...",
        mesh::DEVICE_IDS.len(),
        mesh::CONFIGS.len(),
        spec.seed,
        spec.duration_s
    );
    let t0 = std::time::Instant::now();
    let report = mesh::run(&spec);
    eprintln!("   done in {:.1?}", t0.elapsed());
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serializable")
        );
    } else {
        println!("{}", mesh::render(&report));
    }
}

fn run_fleet(args: &[String]) {
    let mut spec = fleet::CampaignSpec {
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        ..Default::default()
    };
    let mut json = false;
    let mut max_failures: u64 = 0;
    let mut checkpoint: Option<String> = None;
    let mut checkpoint_every: u64 = 10_000;
    let mut resume = false;
    let mut stop_after: Option<u64> = None;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
                .parse::<u64>()
                .unwrap_or_else(|e| {
                    eprintln!("bad value for {flag}: {e}");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--workers" => spec.workers = value("--workers") as usize,
            "--seed" => spec.seed = value("--seed"),
            "--duration" => spec.duration_s = value("--duration"),
            "--max-failures" => max_failures = value("--max-failures"),
            "--chaos-home" => {
                let idx = value("--chaos-home");
                spec.chaos_panic_homes.push(idx);
            }
            "--checkpoint" => {
                checkpoint = Some(
                    it.next()
                        .unwrap_or_else(|| {
                            eprintln!("--checkpoint needs a value");
                            std::process::exit(2);
                        })
                        .clone(),
                )
            }
            "--checkpoint-every" => checkpoint_every = value("--checkpoint-every"),
            "--mesh-per-mille" => {
                let n = value("--mesh-per-mille");
                if n > 1000 {
                    eprintln!("--mesh-per-mille is a 0..=1000 fraction, got {n}");
                    std::process::exit(2);
                }
                spec.mesh_per_mille = n as u32;
            }
            "--resume" => resume = true,
            "--stop-after" => stop_after = Some(value("--stop-after")),
            "--json" => json = true,
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => {
                eprintln!("unknown fleet flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(n) = positional.first() {
        spec.homes = n.parse().unwrap_or_else(|e| {
            eprintln!("bad home count {n:?}: {e}");
            std::process::exit(2);
        });
    }
    if (resume || stop_after.is_some()) && checkpoint.is_none() {
        eprintln!("fleet: --resume/--stop-after need --checkpoint PATH");
        std::process::exit(2);
    }

    eprintln!(
        "Simulating {} homes ({} workers, seed {:#x}, {} s windows)...",
        spec.homes, spec.workers, spec.seed, spec.duration_s
    );
    let t0 = std::time::Instant::now();
    let report = match &checkpoint {
        None => fleet::run(&spec),
        Some(path) => {
            let leg = fleet::run_checkpointed(
                &spec,
                std::path::Path::new(path),
                checkpoint_every,
                resume,
                stop_after,
            )
            .unwrap_or_else(|e| {
                eprintln!("fleet: {e}");
                std::process::exit(2);
            });
            if let Some(from) = leg.resumed_from {
                eprintln!("   resumed from checkpoint at home {from}");
            }
            match leg.report {
                Some(report) => report,
                None => {
                    // Paused with homes remaining: the checkpoint holds
                    // the progress, a later --resume leg finishes it.
                    // Exit 0 with no stdout report — stdout bytes belong
                    // to complete campaigns only.
                    eprintln!(
                        "   paused at home {}/{} after {} chunk(s); resume with \
                         --checkpoint {path} --resume",
                        leg.next_index, spec.homes, leg.chunks_run
                    );
                    eprintln!("peak_rss_bytes={}", peak_rss_bytes().unwrap_or(0));
                    return;
                }
            }
        }
    };
    let elapsed = t0.elapsed();
    eprintln!(
        "   done in {:.1?} — {:.1} homes/sec ({} devices simulated, {} homes failed)",
        elapsed,
        report.homes as f64 / elapsed.as_secs_f64().max(1e-9),
        report.devices,
        report.failures.len()
    );
    for f in &report.failures {
        eprintln!(
            "   home {} FAILED (seed {:#x}, {}): {}",
            f.index, f.seed, f.config_label, f.panic_msg
        );
    }
    // Machine-parseable memory line (stderr only — the stdout JSON stays
    // byte-identical for a given spec no matter where it runs). Degrades
    // to 0 off Linux / without procfs so consumers always find the line.
    eprintln!("peak_rss_bytes={}", peak_rss_bytes().unwrap_or(0));
    if json {
        // `report.failures` is `#[serde(skip)]` so the population
        // aggregates stay byte-identical with or without crashed homes;
        // the summary wrapper carries the failure accounting instead.
        let out = serde_json::json!({
            "failure_count": report.failures.len() as u64,
            "failures": report.failures,
            "report": report,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    } else {
        println!("{}", fleet::render(&report));
    }
    if report.failures.len() as u64 > max_failures {
        eprintln!(
            "fleet: {} failed homes exceed --max-failures {max_failures}",
            report.failures.len()
        );
        std::process::exit(1);
    }
}

/// `repro wanscan [HOMES] [--seed S] [--workers N] [--settle SECS]
/// [--policy LABEL] [--json] [--verify]`
///
/// Scan a fleet of homes from the Internet side under each firewall
/// policy and print the exposure report. `--verify` reruns the campaign
/// at other worker counts and fails unless every rerun serializes
/// byte-identically and the policy lattice is monotonic.
fn run_wanscan(args: &[String]) {
    use v6brick_sim::FirewallPolicy;

    let mut spec = wanscan::WanScanSpec {
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        ..Default::default()
    };
    let mut json = false;
    let mut verify = false;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
                .parse::<u64>()
                .unwrap_or_else(|e| {
                    eprintln!("bad value for {flag}: {e}");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--seed" => spec.seed = value("--seed"),
            "--workers" => spec.workers = (value("--workers") as usize).max(1),
            "--settle" => spec.settle_s = value("--settle"),
            "--mesh-per-mille" => {
                let n = value("--mesh-per-mille");
                if n > 1000 {
                    eprintln!("--mesh-per-mille is a 0..=1000 fraction, got {n}");
                    std::process::exit(2);
                }
                spec.mesh_per_mille = n as u32;
            }
            "--policy" => {
                let label = it.next().unwrap_or_else(|| {
                    eprintln!("--policy needs a value");
                    std::process::exit(2);
                });
                let policy = FirewallPolicy::from_label(label).unwrap_or_else(|| {
                    eprintln!(
                        "unknown firewall policy {label:?}; try: {}",
                        FirewallPolicy::ALL
                            .iter()
                            .map(|p| p.label())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                });
                spec.policies = vec![policy];
            }
            "--json" => json = true,
            "--verify" => verify = true,
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => {
                eprintln!("unknown wanscan flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(n) = positional.first() {
        spec.homes = n.parse().unwrap_or_else(|e| {
            eprintln!("bad home count {n:?}: {e}");
            std::process::exit(2);
        });
    }

    eprintln!(
        "Scanning {} homes from the WAN side ({} workers, seed {:#x}, policies: {})...",
        spec.homes,
        spec.workers,
        spec.seed,
        spec.policies
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let t0 = std::time::Instant::now();
    let report = wanscan::run(&spec);
    let elapsed = t0.elapsed();
    eprintln!(
        "   done in {elapsed:.1?} — {:.1} homes/sec ({} devices scanned, {} homes failed)",
        report.homes as f64 / elapsed.as_secs_f64().max(1e-9),
        report.devices,
        report.failures.len()
    );
    let mut exit = 0;
    for (index, msg) in &report.failures {
        eprintln!("   home {index} FAILED: {msg}");
        exit = 1;
    }
    for v in report.monotonic_violations() {
        eprintln!("wanscan: policy monotonicity violated: {v}");
        exit = 1;
    }

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serializable")
        );
    } else {
        println!("{}", wanscan::render(&report));
    }

    if verify {
        let base = serde_json::to_string(&report).expect("serializable");
        for workers in [1, spec.workers + 1] {
            if workers == spec.workers {
                continue;
            }
            eprintln!("Verifying worker-count independence at {workers} worker(s)...");
            let rerun = wanscan::run(&wanscan::WanScanSpec {
                workers,
                ..spec.clone()
            });
            if serde_json::to_string(&rerun).expect("serializable") == base {
                eprintln!("   byte-identical");
            } else {
                eprintln!("wanscan: report DIVERGED at {workers} worker(s)");
                exit = 1;
            }
        }
    }
    if exit != 0 {
        std::process::exit(exit);
    }
}

/// `repro serve` — run the `v6brickd` ingestion daemon in-process.
fn run_serve(args: &[String]) {
    let mut config = v6brick_ingest::ServerConfig {
        addr: "127.0.0.1:6468".to_string(),
        ..Default::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
                .parse::<u64>()
                .unwrap_or_else(|e| {
                    eprintln!("bad value for {flag}: {e}");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--addr" => {
                config.addr = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("--addr needs a value");
                        std::process::exit(2);
                    })
                    .clone()
            }
            "--seed" => config.campaign_seed = value("--seed"),
            "--shards" => config.shards = value("--shards") as usize,
            "--loop-threads" => config.loop_threads = value("--loop-threads") as usize,
            "--data-dir" => {
                config.data_dir = Some(
                    it.next()
                        .unwrap_or_else(|| {
                            eprintln!("--data-dir needs a value");
                            std::process::exit(2);
                        })
                        .into(),
                )
            }
            "--snapshot-every" => config.snapshot_every = value("--snapshot-every"),
            other => {
                eprintln!("unknown serve flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    // Same ordering as the v6brickd binary: block the signals before any
    // server thread exists so the whole process inherits the mask.
    let term = v6brick_ingest::signal::TermSignals::block();
    let handle = v6brick_ingest::spawn(config.clone()).unwrap_or_else(|e| {
        eprintln!("serve: start on {}: {e}", config.addr);
        std::process::exit(1);
    });
    if let Ok(term) = term {
        let shutdown = handle.shutdown_handle();
        term.watch(move |sig| {
            eprintln!("serve: caught signal {sig}, draining");
            shutdown.shutdown();
        });
    }
    println!(
        "v6brickd listening on {} (campaign seed {:#x}, {} shards)",
        handle.addr(),
        handle.state().campaign_seed(),
        handle.state().shard_count()
    );
    let state = std::sync::Arc::clone(handle.state());
    handle.join();
    eprintln!("serve: drained cleanly");
    println!(
        "{}",
        serde_json::to_string(&state.stats_report()).expect("stats serialize")
    );
}

/// `repro stats [--addr HOST:PORT]` — fetch a running daemon's STATS
/// JSON over the wire and print it. One line, CI-greppable: the
/// crash-recovery smoke polls `uploads_ok` with it and asserts on
/// `recovered_from` after a restart.
fn run_stats(args: &[String]) {
    let mut addr = "127.0.0.1:6468".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("--addr needs a value");
                        std::process::exit(2);
                    })
                    .clone()
            }
            other => {
                eprintln!("unknown stats flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let mut client =
        v6brick_ingest::Client::connect_retry(&*addr, 50, std::time::Duration::from_millis(20))
            .unwrap_or_else(|e| {
                eprintln!("stats: connect {addr}: {e}");
                std::process::exit(1);
            });
    let stats = client.stats().unwrap_or_else(|e| {
        eprintln!("stats: {e}");
        std::process::exit(1);
    });
    println!("{stats}");
}

/// `repro upload N ...` — replay an N-home campaign at a `v6brickd`
/// server over concurrent clients, optionally verifying the snapshot
/// against the offline fleet JSON.
fn run_upload(args: &[String]) {
    use v6brick_experiments::serve as bridge;
    use v6brick_ingest::{loadgen, Client};

    let mut spec = fleet::CampaignSpec {
        homes: 3,
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        ..Default::default()
    };
    let mut addr = "127.0.0.1:6468".to_string();
    let mut clients = 2usize;
    let mut verify = false;
    let mut shutdown = false;
    let mut json = false;
    let mut dev_min = spec.device_range.0;
    let mut dev_max = spec.device_range.1;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
                .parse::<u64>()
                .unwrap_or_else(|e| {
                    eprintln!("bad value for {flag}: {e}");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("--addr needs a value");
                        std::process::exit(2);
                    })
                    .clone()
            }
            "--clients" => clients = value("--clients") as usize,
            "--seed" => spec.seed = value("--seed"),
            "--duration" => spec.duration_s = value("--duration"),
            "--workers" => spec.workers = value("--workers") as usize,
            "--dev-min" => dev_min = value("--dev-min") as usize,
            "--dev-max" => dev_max = value("--dev-max") as usize,
            "--chaos-home" => {
                let idx = value("--chaos-home");
                spec.chaos_panic_homes.push(idx);
            }
            "--verify" => verify = true,
            "--shutdown" => shutdown = true,
            "--json" => json = true,
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => {
                eprintln!("unknown upload flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(n) = positional.first() {
        spec.homes = n.parse().unwrap_or_else(|e| {
            eprintln!("bad home count {n:?}: {e}");
            std::process::exit(2);
        });
    }
    spec.device_range = (dev_min, dev_max);

    eprintln!(
        "Simulating {} homes for upload (seed {:#x}, {} s windows)...",
        spec.homes, spec.seed, spec.duration_s
    );
    let bundles = bridge::campaign_bundles(&spec);
    eprintln!(
        "Uploading {} bundles to {addr} over {clients} clients...",
        bundles.len()
    );
    let t0 = std::time::Instant::now();
    let load = loadgen::run(&addr, &bundles, clients, spec.seed).unwrap_or_else(|e| {
        eprintln!("upload: {e}");
        std::process::exit(1);
    });
    let elapsed = t0.elapsed();
    eprintln!(
        "   done in {elapsed:.1?} — {} uploads ok, {} failed, {} frames",
        load.uploads(),
        load.failures(),
        load.frames()
    );
    for c in &load.per_client {
        eprintln!(
            "   client {}: {} uploads, {} frames, {} failures (chunk {})",
            c.client, c.uploads, c.frames, c.failures, c.chunk_size
        );
    }

    let mut exit = 0;
    // Chaos homes fail by design; anything beyond that is a real error.
    let expected_failures = spec.chaos_panic_homes.len() as u64;
    if load.failures() != expected_failures {
        eprintln!(
            "upload: {} failed uploads (expected {expected_failures})",
            load.failures()
        );
        exit = 1;
    }

    let mut snapshot = None;
    if verify || json {
        let mut client = Client::connect_retry(&*addr, 50, std::time::Duration::from_millis(20))
            .unwrap_or_else(|e| {
                eprintln!("upload: reconnect for snapshot: {e}");
                std::process::exit(1);
            });
        let snap = client.snapshot().unwrap_or_else(|e| {
            eprintln!("upload: snapshot: {e}");
            std::process::exit(1);
        });
        if verify {
            eprintln!("Verifying against the offline fleet report...");
            let offline = bridge::offline_report_json(&spec);
            if snap == offline {
                eprintln!(
                    "   snapshot is byte-identical to the offline fleet JSON ({} bytes)",
                    snap.len()
                );
            } else {
                eprintln!(
                    "   MISMATCH: snapshot {} bytes, offline {} bytes",
                    snap.len(),
                    offline.len()
                );
                exit = 1;
            }
        }
        snapshot = Some(snap);
    }

    if shutdown {
        let mut client = Client::connect_retry(&*addr, 50, std::time::Duration::from_millis(20))
            .unwrap_or_else(|e| {
                eprintln!("upload: reconnect for shutdown: {e}");
                std::process::exit(1);
            });
        client.shutdown_server().unwrap_or_else(|e| {
            eprintln!("upload: shutdown: {e}");
            std::process::exit(1);
        });
        eprintln!("   server drain requested");
    }

    if json {
        let out = serde_json::json!({
            "homes": spec.homes,
            "clients": clients as u64,
            "uploads_ok": load.uploads(),
            "uploads_failed": load.failures(),
            "frames": load.frames(),
            "verified": verify && exit == 0,
            "snapshot": snapshot,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    if exit != 0 {
        std::process::exit(exit);
    }
}

/// `repro bench-json [--out PATH]` — the perf-trajectory probe.
///
/// Emits one JSON document (schema documented in EXPERIMENTS.md) with
/// the numbers future PRs track for regressions: frames/sec through
/// the streaming analyzer, six-config suite wall-clock serial vs
/// parallel, fleet homes/sec, and v6brickd uploads/sec at 1, 4, and 16
/// concurrent clients. Written to `--out` (default
/// `BENCH_pipeline.json`) and echoed to stdout.
/// Run `repro fleet HOMES --workers W --duration 10 --json` in a child
/// process and return `(wall_secs, child_peak_rss_bytes)`.
///
/// A subprocess per campaign is the only way to get a per-campaign peak
/// RSS: `VmHWM` never goes down, so two campaigns in one process would
/// share one high-water mark. The child self-reports on stderr; stdout
/// (the report JSON) is discarded — its byte-identity across worker
/// counts is pinned by CI's fleet-scale smoke, not here.
fn fleet_scale_probe(homes: u64, workers: usize) -> (f64, u64) {
    use std::process::{Command, Stdio};
    let exe = std::env::current_exe().expect("current exe path");
    let t0 = std::time::Instant::now();
    let out = Command::new(exe)
        .args([
            "fleet",
            &homes.to_string(),
            "--workers",
            &workers.to_string(),
            "--duration",
            "10",
            "--json",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn repro fleet subprocess");
    let secs = t0.elapsed().as_secs_f64();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "fleet scale probe failed: {stderr}");
    let rss = stderr
        .lines()
        .find_map(|l| l.strip_prefix("peak_rss_bytes="))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("child reported peak_rss_bytes on stderr");
    (secs, rss)
}

fn run_bench_json(args: &[String]) {
    use std::time::Instant;
    use v6brick_core::observe::StreamingAnalyzer;
    use v6brick_devices::registry;
    use v6brick_devices::stack::IotDevice;
    use v6brick_sim::{Internet, Router, SimTime, SimulationBuilder};

    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out_path = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("--out needs a value");
                        std::process::exit(2);
                    })
                    .clone();
            }
            other => {
                eprintln!("unknown bench-json flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    // --- 1. Streaming-analyzer throughput over a buffered household ---
    // Buffer one 8-device dual-stack capture (the only place the byte
    // buffer is still wanted: replaying identical frames repeatedly),
    // then time the single-pass analyzer over it.
    eprintln!("bench-json: simulating the 8-device household (240 s window)...");
    let ids = [
        "echo_show_5",
        "nest_camera",
        "google_home_mini",
        "aqara_hub",
        "homepod_mini",
        "apple_tv",
        "samsung_fridge",
        "hue_hub",
    ];
    let profiles: Vec<_> = ids.iter().map(|id| registry::by_id(id)).collect();
    let zones = scenario::build_zones(&profiles);
    let mut b = SimulationBuilder::new(
        Router::new(config::NetworkConfig::DualStack.router_config()),
        Internet::new(zones),
    );
    let macs: Vec<_> = profiles
        .iter()
        .map(|p| {
            b.add_host(Box::new(IotDevice::new(p.clone())));
            (p.mac, p.id.clone())
        })
        .collect();
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(240));
    let capture = sim.take_capture();
    let (frames, bytes) = (capture.len() as u64, capture.total_bytes());
    eprintln!("bench-json: timing the streaming analyzer over {frames} frames...");
    let mut analyzer_secs = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut analyzer = StreamingAnalyzer::new(&macs, scenario::lan_prefix());
        for p in capture.iter() {
            analyzer.feed(p.timestamp_us, &p.data);
        }
        std::hint::black_box(analyzer.finish().frames);
        analyzer_secs = analyzer_secs.min(t0.elapsed().as_secs_f64());
    }
    let frames_per_sec = frames as f64 / analyzer_secs.max(1e-9);

    // Per-pass cost attribution: one instrumented replay. The two
    // `Instant` reads per (pass, frame) make this replay slower than
    // the throughput loop above, which is why it is separate — the
    // nanos are for *relative* attribution across passes.
    eprintln!("bench-json: per-pass attribution replay...");
    let mut instrumented = StreamingAnalyzer::new(&macs, scenario::lan_prefix());
    instrumented.enable_metrics();
    for p in capture.iter() {
        instrumented.feed(p.timestamp_us, &p.data);
    }
    let per_pass: Vec<serde_json::Value> = instrumented
        .pass_metrics()
        .iter()
        .map(|(id, m)| {
            serde_json::json!({
                "pass": id.label(),
                "frames": m.frames,
                "nanos": m.nanos,
            })
        })
        .collect();
    let parse_errors = instrumented.parse_errors();
    std::hint::black_box(instrumented.finish().frames);

    // --- 2. Six-config suite, serial vs parallel ---
    let suite_ids = [
        "echo_show_5",
        "nest_camera",
        "google_home_mini",
        "aqara_hub",
        "homepod_mini",
        "apple_tv",
        "samsung_fridge",
        "hue_hub",
        "ikea_gateway",
        "echo_plus",
        "behmor_brewer",
        "wyze_cam",
    ];
    let suite_profiles = || suite_ids.iter().map(|id| registry::by_id(id)).collect();
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("bench-json: six-config suite over 12 devices, serial...");
    let t0 = Instant::now();
    let serial =
        ExperimentSuite::run_configs_with_workers(suite_profiles(), &config::NetworkConfig::ALL, 1);
    let suite_serial_secs = t0.elapsed().as_secs_f64();
    eprintln!("bench-json: six-config suite over 12 devices, {workers} workers...");
    let t0 = Instant::now();
    let parallel = ExperimentSuite::run_configs_with_workers(
        suite_profiles(),
        &config::NetworkConfig::ALL,
        workers,
    );
    let suite_parallel_secs = t0.elapsed().as_secs_f64();
    let deterministic = tables::table3(&serial).to_string()
        == tables::table3(&parallel).to_string()
        && tables::table5(&serial).to_string() == tables::table5(&parallel).to_string();

    // --- 3. Fleet homes/sec: population pass subset vs every pass ---
    let fleet_spec = |passes: &[PassId]| fleet::CampaignSpec {
        homes: 8,
        seed: 0xbe9c,
        workers,
        device_range: (2, 4),
        duration_s: 60,
        passes: passes.to_vec(),
        ..Default::default()
    };
    eprintln!("bench-json: fleet campaign, 8 homes on {workers} workers (population passes)...");
    let t0 = Instant::now();
    let report = fleet::run(&fleet_spec(fleet::POPULATION_PASSES));
    let fleet_secs = t0.elapsed().as_secs_f64();
    let homes_per_sec = report.homes as f64 / fleet_secs.max(1e-9);
    eprintln!("bench-json: same campaign with the full pass set...");
    let t0 = Instant::now();
    let full_report = fleet::run(&fleet_spec(&PassId::ALL));
    let fleet_full_secs = t0.elapsed().as_secs_f64();
    // The population subset must be a pure cost saving: the report the
    // campaign produces may not change by a byte.
    let report_identical = serde_json::to_string(&report).expect("serializable")
        == serde_json::to_string(&full_report).expect("serializable");

    // --- 4. Ingestion daemon: upload throughput at 1, 4, 16 clients ---
    // The same 16-home campaign replayed at an in-process v6brickd over
    // increasing client concurrency; each run must still snapshot
    // byte-identically to the offline fleet JSON.
    eprintln!("bench-json: packaging a 16-home campaign for v6brickd...");
    let ingest_spec = fleet::CampaignSpec {
        homes: 16,
        seed: 0x1963,
        workers,
        device_range: (2, 4),
        duration_s: 60,
        ..Default::default()
    };
    let bundles = serve::campaign_bundles(&ingest_spec);
    let ingest_offline = serve::offline_report_json(&ingest_spec);
    let bundle_bytes: u64 = bundles.iter().map(|b| b.pcap.len() as u64).sum();
    // One tier of the ingest ladder: replay `bundles` at `clients`
    // concurrency and gate the tier on byte-identity with the offline
    // fleet JSON — throughput without correctness is meaningless.
    let run_ingest_tier = |spec: &fleet::CampaignSpec,
                           bundles: &[v6brick_ingest::UploadBundle],
                           offline: &str,
                           clients: usize|
     -> (serde_json::Value, bool, f64) {
        let handle = v6brick_ingest::spawn(v6brick_ingest::ServerConfig {
            campaign_seed: spec.seed,
            shards: 8,
            ..Default::default()
        })
        .expect("v6brickd binds an ephemeral port");
        let addr = handle.addr().to_string();
        let t0 = Instant::now();
        let load = v6brick_ingest::loadgen::run(&addr, bundles, clients, spec.seed)
            .expect("load generator runs");
        let secs = t0.elapsed().as_secs_f64();
        let identical = load.failures() == 0 && handle.state().snapshot_json() == offline;
        let uploads_per_sec = load.uploads() as f64 / secs.max(1e-9);
        let run = serde_json::json!({
            "clients": clients,
            "secs": secs,
            "uploads_per_sec": uploads_per_sec,
            "frames_per_sec": load.frames() as f64 / secs.max(1e-9),
            "snapshot_identical": identical,
        });
        handle.shutdown();
        handle.join();
        (run, identical, uploads_per_sec)
    };
    let mut ingest_runs = Vec::new();
    let mut snapshot_identical = true;
    for clients in [1usize, 4, 16] {
        eprintln!("bench-json: ingest replay, {clients} client(s)...");
        let (run, identical, _) = run_ingest_tier(&ingest_spec, &bundles, &ingest_offline, clients);
        snapshot_identical &= identical;
        ingest_runs.push(run);
    }

    // --- 4b. C10k sweep: the event-loop server under 256/1k/4k clients ---
    // A much wider campaign (one home per client at the top tier) so
    // every connection has real work; the snapshot gate holds per tier.
    eprintln!("bench-json: packaging a 4096-home campaign for the C10k sweep...");
    let c10k_spec = fleet::CampaignSpec {
        homes: 4096,
        seed: 0xc10c,
        workers,
        device_range: (2, 3),
        duration_s: 10,
        ..Default::default()
    };
    let c10k_bundles = serve::campaign_bundles(&c10k_spec);
    let c10k_offline = serve::offline_report_json(&c10k_spec);
    let c10k_bytes: u64 = c10k_bundles.iter().map(|b| b.pcap.len() as u64).sum();
    let mut c10k_runs = Vec::new();
    let mut c10k_identical = true;
    let mut c10k_uploads_per_sec = 0.0;
    for clients in [256usize, 1024, 4096] {
        eprintln!("bench-json: C10k ingest replay, {clients} concurrent clients...");
        let (run, identical, rate) =
            run_ingest_tier(&c10k_spec, &c10k_bundles, &c10k_offline, clients);
        c10k_identical &= identical;
        c10k_uploads_per_sec = rate;
        c10k_runs.push(run);
    }

    // --- 4c. Durability: WAL overhead, crash recovery, checkpoint resume ---
    // WAL overhead first: the same 16-home replay with and without a
    // data dir, best of 3 each. Every WAL-on run gets a FRESH directory
    // — reusing one would let the exactly-once dedupe skip the absorb
    // (and most of the WAL write) on reruns and flatter the number.
    let bench_tmp = |tag: &str, n: u32| -> std::path::PathBuf {
        std::env::temp_dir().join(format!("v6brick-bench-{tag}-{}-{n}", std::process::id()))
    };
    let time_replay = |data_dir: Option<std::path::PathBuf>| -> (f64, u64, u64) {
        let handle = v6brick_ingest::spawn(v6brick_ingest::ServerConfig {
            campaign_seed: ingest_spec.seed,
            shards: 8,
            data_dir,
            ..Default::default()
        })
        .expect("v6brickd binds an ephemeral port");
        let addr = handle.addr().to_string();
        let t0 = Instant::now();
        let load = v6brick_ingest::loadgen::run(&addr, &bundles, 4, ingest_spec.seed)
            .expect("load generator runs");
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(load.failures(), 0, "WAL-overhead replay had failed uploads");
        let stats = handle.state().stats_report();
        handle.shutdown();
        handle.join();
        (
            load.uploads() as f64 / secs.max(1e-9),
            stats.wal_records,
            stats.wal_bytes,
        )
    };
    eprintln!("bench-json: WAL overhead, 16-home replay without a data dir (3 runs)...");
    let mut wal_off_rate = 0.0f64;
    for _ in 0..3 {
        wal_off_rate = wal_off_rate.max(time_replay(None).0);
    }
    eprintln!("bench-json: WAL overhead, same replay write-ahead-logged (3 runs)...");
    let mut wal_on_rate = 0.0f64;
    let (mut wal_records, mut wal_bytes) = (0u64, 0u64);
    for i in 0..3 {
        let dir = bench_tmp("wal", i);
        let (rate, records, bytes) = time_replay(Some(dir.clone()));
        wal_on_rate = wal_on_rate.max(rate);
        (wal_records, wal_bytes) = (records, bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let wal_overhead_pct = 100.0 * (1.0 - wal_on_rate / wal_off_rate.max(1e-9));
    let wal_efficient = wal_on_rate >= 0.8 * wal_off_rate;

    // Crash recovery: replay the whole 4096-home campaign into a durable
    // daemon in pure-WAL mode (snapshot_every = 0), drain it, then time
    // the recovery path over the resulting 4096-record WAL tail. The
    // recovered report must be byte-identical to the offline oracle —
    // recovery speed without correctness is meaningless.
    eprintln!("bench-json: recovery probe — building a 4096-home WAL tail...");
    let recovery_dir = bench_tmp("recover", 0);
    {
        let handle = v6brick_ingest::spawn(v6brick_ingest::ServerConfig {
            campaign_seed: c10k_spec.seed,
            shards: 8,
            data_dir: Some(recovery_dir.clone()),
            snapshot_every: 0,
            ..Default::default()
        })
        .expect("v6brickd binds an ephemeral port");
        let addr = handle.addr().to_string();
        let load = v6brick_ingest::loadgen::run(&addr, &c10k_bundles, 256, c10k_spec.seed)
            .expect("load generator runs");
        assert_eq!(
            load.failures(),
            0,
            "recovery-probe replay had failed uploads"
        );
        handle.shutdown();
        handle.join();
    }
    eprintln!("bench-json: recovery probe — replaying the WAL tail...");
    let t0 = Instant::now();
    let recovered =
        v6brick_ingest::recover(&recovery_dir, c10k_spec.seed).expect("recover the WAL tail");
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    let recovery_replayed = recovered.replayed;
    let recovered_identical =
        serde_json::to_string(&recovered.report).expect("serializable") == c10k_offline;
    let _ = std::fs::remove_dir_all(&recovery_dir);

    // Checkpoint/resume: the 16-home campaign run as stop-after-1-chunk
    // legs (5 homes per chunk) must reassemble to the exact bytes of the
    // uninterrupted offline report.
    eprintln!("bench-json: checkpoint/resume probe over the 16-home campaign...");
    let ck_path = bench_tmp("ckpt", 0);
    let mut checkpoint_legs = 0u64;
    let ck_report = loop {
        let leg = fleet::run_checkpointed(&ingest_spec, &ck_path, 5, checkpoint_legs > 0, Some(1))
            .expect("checkpointed campaign leg");
        checkpoint_legs += 1;
        if let Some(report) = leg.report {
            break report;
        }
    };
    let checkpoint_identical =
        serde_json::to_string(&ck_report).expect("serializable") == ingest_offline;
    let _ = std::fs::remove_file(&ck_path);

    // --- 5. WAN exposure scan: homes/sec + cross-worker byte-identity ---
    // A small campaign over all three firewall policies; the report must
    // serialize byte-identically at 1 worker and at full parallelism, and
    // the policy lattice (open >= pinholed >= default-deny per cell) must
    // hold — both are correctness gates, not just timings.
    let wanscan_spec = wanscan::WanScanSpec {
        homes: 6,
        seed: 0x5ca9,
        workers,
        device_range: (2, 4),
        settle_s: 60,
        ..Default::default()
    };
    eprintln!("bench-json: WAN scan, 6 homes x 3 policies on {workers} workers...");
    let t0 = Instant::now();
    let wan_report = wanscan::run(&wanscan_spec);
    let wanscan_secs = t0.elapsed().as_secs_f64();
    eprintln!("bench-json: same WAN scan, serial...");
    let wan_serial = wanscan::run(&wanscan::WanScanSpec {
        workers: 1,
        ..wanscan_spec.clone()
    });
    let wanscan_identical = serde_json::to_string(&wan_report).expect("serializable")
        == serde_json::to_string(&wan_serial).expect("serializable");
    let wanscan_monotonic =
        wan_report.monotonic_violations().is_empty() && wan_report.failures.is_empty();

    // --- 6. Mesh homes: link-layer campaign throughput + determinism ---
    // A mesh-heavy campaign (half the homes behind a 6LoWPAN border
    // router) timed at full parallelism, then rerun serially. The mesh
    // path costs a second analysis phase per home (decompress the
    // 802.15.4 capture for attribution bindings), so its homes/sec is
    // tracked separately — and the report must serialize byte-identically
    // across worker counts, or the mesh axis broke campaign determinism.
    let mesh_fleet_spec = fleet::CampaignSpec {
        homes: 8,
        seed: 0x6e5a,
        workers,
        device_range: (2, 4),
        duration_s: 60,
        mesh_per_mille: 500,
        ..Default::default()
    };
    eprintln!("bench-json: mesh fleet, 8 homes (500 per mille meshed) on {workers} workers...");
    let t0 = Instant::now();
    let mesh_report = fleet::run(&mesh_fleet_spec);
    let mesh_secs = t0.elapsed().as_secs_f64();
    eprintln!("bench-json: same mesh fleet, serial...");
    let mesh_serial = fleet::run(&fleet::CampaignSpec {
        workers: 1,
        ..mesh_fleet_spec.clone()
    });
    let mesh_identical = serde_json::to_string(&mesh_report).expect("serializable")
        == serde_json::to_string(&mesh_serial).expect("serializable");
    // The campaign must actually have exercised both link layers: a
    // population report keyed only by Ethernet labels means the per-mille
    // draw silently stopped selecting mesh homes.
    let mesh_mixed = {
        let labels: Vec<&str> = mesh_report
            .homes_by_config
            .keys()
            .map(String::as_str)
            .collect();
        labels.iter().any(|l| l.ends_with("+ mesh"))
            && labels.iter().any(|l| !l.ends_with("+ mesh"))
    };

    // --- 7. Memory-flat scale probe: 1k vs 100k homes ---
    // Campaign memory is O(workers), so a 100x bigger campaign must not
    // cost meaningfully more peak RSS. Each campaign runs in its own
    // `repro fleet` child (VmHWM is per-process and monotonic) at short
    // 10 s windows; the parent times the wall clock and reads the
    // child's self-reported peak off stderr.
    eprintln!("bench-json: fleet scale probe, 1k homes ({workers} workers, 10 s windows)...");
    let (scale_small_secs, scale_small_rss) = fleet_scale_probe(1_000, workers);
    eprintln!("bench-json: fleet scale probe, 100k homes (the long one)...");
    let (scale_large_secs, scale_large_rss) = fleet_scale_probe(100_000, workers);
    let rss_ratio = scale_large_rss as f64 / scale_small_rss.max(1) as f64;
    let memory_flat = rss_ratio <= 2.0;

    let out = serde_json::json!({
        "schema": "v6brick-bench-pipeline/8",
        "streaming_analyzer": serde_json::json!({
            "frames": frames,
            "bytes": bytes,
            "parse_errors": parse_errors,
            "secs": analyzer_secs,
            "frames_per_sec": frames_per_sec,
            "per_pass": per_pass,
        }),
        "suite": serde_json::json!({
            "devices": suite_ids.len(),
            "configs": config::NetworkConfig::ALL.len(),
            "workers": workers,
            "serial_secs": suite_serial_secs,
            "parallel_secs": suite_parallel_secs,
            "speedup": suite_serial_secs / suite_parallel_secs.max(1e-9),
            "deterministic": deterministic,
        }),
        "fleet": serde_json::json!({
            "homes": report.homes,
            "devices": report.devices,
            "workers": workers,
            "secs": fleet_secs,
            "homes_per_sec": homes_per_sec,
            "full_pass_secs": fleet_full_secs,
            "pass_ablation_speedup": fleet_full_secs / fleet_secs.max(1e-9),
            "report_identical": report_identical,
            "peak_rss_bytes": peak_rss_bytes(),
        }),
        "fleet_scale": serde_json::json!({
            "duration_s": 10,
            "workers": workers,
            "small_homes": 1_000u64,
            "small_secs": scale_small_secs,
            "small_homes_per_sec": 1_000.0 / scale_small_secs.max(1e-9),
            "small_peak_rss_bytes": scale_small_rss,
            "large_homes": 100_000u64,
            "large_secs": scale_large_secs,
            "large_homes_per_sec": 100_000.0 / scale_large_secs.max(1e-9),
            "large_peak_rss_bytes": scale_large_rss,
            "rss_ratio": rss_ratio,
            "memory_flat": memory_flat,
        }),
        "ingest": serde_json::json!({
            "homes": ingest_spec.homes,
            "bundle_bytes": bundle_bytes,
            "shards": 8,
            "runs": ingest_runs,
            "snapshot_identical": snapshot_identical,
        }),
        "c10k": serde_json::json!({
            "homes": c10k_spec.homes,
            "bundle_bytes": c10k_bytes,
            "shards": 8,
            "runs": c10k_runs,
            "snapshot_identical": c10k_identical,
            "c10k_uploads_per_sec": c10k_uploads_per_sec,
        }),
        "durability": serde_json::json!({
            "wal_homes": ingest_spec.homes,
            "wal_off_uploads_per_sec": wal_off_rate,
            "wal_on_uploads_per_sec": wal_on_rate,
            "wal_overhead_pct": wal_overhead_pct,
            "wal_efficient": wal_efficient,
            "wal_records": wal_records,
            "wal_bytes": wal_bytes,
            "recovery_homes": c10k_spec.homes,
            "recovery_replayed": recovery_replayed,
            "recovery_ms": recovery_ms,
            "recovered_identical": recovered_identical,
            "checkpoint_homes": ingest_spec.homes,
            "checkpoint_legs": checkpoint_legs,
            "checkpoint_identical": checkpoint_identical,
        }),
        "mesh": serde_json::json!({
            "homes": mesh_report.homes,
            "devices": mesh_report.devices,
            "mesh_per_mille": mesh_fleet_spec.mesh_per_mille,
            "workers": workers,
            "secs": mesh_secs,
            "homes_per_sec": mesh_report.homes as f64 / mesh_secs.max(1e-9),
            "report_identical": mesh_identical,
            "mixed_link_layers": mesh_mixed,
        }),
        "wanscan": serde_json::json!({
            "homes": wan_report.homes,
            "devices": wan_report.devices,
            "policies": wanscan_spec.policies.len(),
            "workers": workers,
            "secs": wanscan_secs,
            "homes_per_sec": wan_report.homes as f64 / wanscan_secs.max(1e-9),
            "report_identical": wanscan_identical,
            "monotonic": wanscan_monotonic,
        }),
    });
    let rendered = serde_json::to_string_pretty(&out).expect("serializable");
    std::fs::write(&out_path, format!("{rendered}\n")).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("bench-json: wrote {out_path}");
    println!("{rendered}");
    if !deterministic {
        eprintln!(
            "bench-json: serial and parallel suites DIVERGED — investigate before trusting timings"
        );
        std::process::exit(1);
    }
    if !report_identical {
        eprintln!(
            "bench-json: population-pass and full-pass fleet reports DIVERGED — \
             a pass is writing fields the population report reads"
        );
        std::process::exit(1);
    }
    if !snapshot_identical {
        eprintln!(
            "bench-json: a v6brickd snapshot DIVERGED from the offline fleet JSON — \
             the server==fleet equivalence spine is broken"
        );
        std::process::exit(1);
    }
    if !wanscan_identical {
        eprintln!("bench-json: the WAN exposure report DIVERGED between serial and parallel runs");
        std::process::exit(1);
    }
    if !mesh_identical {
        eprintln!(
            "bench-json: the mesh fleet report DIVERGED between serial and parallel runs — \
             the mesh axis broke campaign determinism"
        );
        std::process::exit(1);
    }
    if !mesh_mixed {
        eprintln!(
            "bench-json: the mesh campaign did not produce both Ethernet and mesh homes — \
             the per-mille draw is broken"
        );
        std::process::exit(1);
    }
    if !wanscan_monotonic {
        eprintln!(
            "bench-json: the WAN exposure report violates the firewall-policy lattice \
             (or a home failed) — a stricter policy exposed more than a looser one"
        );
        std::process::exit(1);
    }
    if !memory_flat {
        eprintln!(
            "bench-json: a 100k-home campaign peaked at {rss_ratio:.2}x the RSS of a \
             1k-home campaign — campaign memory is no longer flat in homes"
        );
        std::process::exit(1);
    }
    if !wal_efficient {
        eprintln!(
            "bench-json: write-ahead logging costs {wal_overhead_pct:.1}% of upload \
             throughput (>20% budget) — the WAL append path regressed"
        );
        std::process::exit(1);
    }
    if !recovered_identical {
        eprintln!(
            "bench-json: the report recovered from the WAL tail DIVERGED from the \
             offline oracle — crash recovery is broken"
        );
        std::process::exit(1);
    }
    if !checkpoint_identical {
        eprintln!(
            "bench-json: the checkpointed-and-resumed fleet report DIVERGED from the \
             uninterrupted run — checkpoint/resume is broken"
        );
        std::process::exit(1);
    }
}

fn run_portscan(full: bool) {
    let plan = if full {
        ScanPlan::full()
    } else {
        ScanPlan::quick()
    };
    eprintln!(
        "Running the active port scans ({} TCP + {} UDP ports per address)...",
        plan.tcp.len(),
        plan.udp.len()
    );
    let profiles = v6brick_devices::registry::build();
    let t0 = std::time::Instant::now();
    let results = scan(&profiles, &plan);
    eprintln!("   done in {:?}", t0.elapsed());
    let mut t = TextTable::new("Port scans (§5.4.2): devices with asymmetric v4/v6 exposure")
        .headers(["Device", "v4-only TCP", "v6-only TCP", "both"]);
    for p in &profiles {
        let r = &results[&p.id];
        let d = ports::diff(&r.v4, &r.v6);
        if d.is_asymmetric() {
            let fmt = |s: &std::collections::BTreeSet<u16>| {
                s.iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            t.row([
                p.name.clone(),
                fmt(&d.tcp_v4_only),
                fmt(&d.tcp_v6_only),
                fmt(&d.tcp_both),
            ]);
        }
    }
    println!("{t}");
}
