//! The WAN-side exposure scan: what an Internet scanner reaches inside
//! the home, per CPE firewall policy.
//!
//! The paper scans its devices from the LAN (§4.3); the natural
//! follow-up — asked by "Unconsidered Installations" and "Where Have All
//! the Firewalls Gone?" — is what the same devices expose to the v6
//! *Internet*, where routed GUAs replace the incidental shield IPv4 NAT
//! provided. Each home is simulated once per [`FirewallPolicy`]; an
//! external scanner at [`scanner_addr`] then probes it through the 6in4
//! tunnel:
//!
//! 1. **settle** — the home boots, addresses itself, and talks to its
//!    clouds for [`WanScanSpec::settle_s`] virtual seconds, exactly as in
//!    the connectivity experiments. The internet side passively records
//!    every GUA it sees ([`Internet::observed_v6_sources`]) — the
//!    scanner's only real-world knowledge of the home.
//! 2. **hitlist** — the observations are extrapolated into candidate
//!    addresses ([`exposure::hitlist`]) next to a dense low-IID sweep
//!    baseline ([`exposure::dense_sweep`]).
//! 3. **liveness** — one ICMPv6 echo per candidate *and* per
//!    ground-truth address (the omniscient probe set that measures the
//!    firewall rather than the hitlist), injected on the WAN side.
//! 4. **service sweep** — TCP SYN / UDP probes over
//!    [`ScanPlan`]'s WAN port set, against responsive ground-truth
//!    addresses only (the way real scanners gate expensive sweeps on a
//!    liveness pass).
//!
//! Everything folds into a byte-deterministic [`ExposureReport`]; the
//! fleet worker pool parallelizes homes with the same crash isolation
//! and merge discipline as the population campaigns.

use crate::config::NetworkConfig;
use crate::portscan::ScanPlan;
use crate::scenario;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv6Addr;
use v6brick_core::exposure::{self, ExposureReport, HitlistStats, HomeScanOutcome, TargetOutcome};
use v6brick_devices::stack::IotDevice;
use v6brick_fleet::{plan_homes, run_indexed_outcomes, HomeSpec};
use v6brick_net::ipv4::{self, Protocol};
use v6brick_net::udp::PseudoHeader;
use v6brick_net::{icmpv6, ipv6, tcp, udp};
use v6brick_sim::{
    addrs, BorderRouter, FirewallPolicy, Host, Internet, Router, SimTime, Simulation,
    SimulationBuilder,
};

/// The scanner's source address: a documentation-range GUA well outside
/// both the LAN /64 and the pseudo-Internet's derived service addresses.
pub fn scanner_addr() -> Ipv6Addr {
    Ipv6Addr::new(0x2001, 0xdb8, 0x5ca9, 0, 0, 0, 0, 1)
}

/// Echo ident marking scanner liveness probes.
const ECHO_IDENT: u16 = 0x5ca9;

/// How far around an observed NIC suffix the hitlist extrapolates.
pub const HITLIST_NEIGHBORHOOD: u16 = 4;

/// Low-IID addresses the dense-sweep baseline probes per home.
pub const DENSE_BUDGET: u32 = 256;

/// Virtual time allowed for one probe wave's replies to drain (two WAN
/// legs plus the LAN round trip is under 25 ms; a full second absorbs
/// retransmission-free stragglers).
const PROBE_WINDOW: SimTime = SimTime::from_secs(1);

/// Description of a WAN scan campaign.
#[derive(Debug, Clone)]
pub struct WanScanSpec {
    /// Homes to synthesize and scan.
    pub homes: u64,
    /// Campaign seed; home seeds derive from it.
    pub seed: u64,
    /// Worker threads (1 = inline reference path).
    pub workers: usize,
    /// Inclusive range of devices per home.
    pub device_range: (usize, usize),
    /// Weighted network-config mix each home draws from.
    pub mix: Vec<(NetworkConfig, u32)>,
    /// Firewall policies each home is scanned under.
    pub policies: Vec<FirewallPolicy>,
    /// Service ports the sweep probes.
    pub plan: ScanPlan,
    /// Virtual seconds the home runs before the scan starts.
    pub settle_s: u64,
    /// Per-mille of homes whose devices sit behind a 6LoWPAN border
    /// router instead of directly on the Ethernet LAN. Meshed leaves
    /// still SLAAC GUAs out of the LAN /64 (the border router forwards
    /// the RAs), so the passive observations — and therefore the hitlist
    /// — gain BR-derived mesh addresses, and inbound probes measure
    /// whether the firewall *and* the border router let a scanner reach
    /// them. `0` (the default) reproduces the pre-mesh campaign byte for
    /// byte.
    pub mesh_per_mille: u32,
}

impl Default for WanScanSpec {
    /// 16 homes of 3–8 devices drawn evenly from the five v6-capable
    /// Table 2 configurations (an IPv4-only home has no v6 attack
    /// surface), all three firewall policies, the WAN port set, 90 s of
    /// settle — enough for addressing plus a telemetry round.
    fn default() -> Self {
        let mut mix: Vec<(NetworkConfig, u32)> =
            NetworkConfig::IPV6_ONLY.iter().map(|c| (*c, 1)).collect();
        mix.extend(NetworkConfig::DUAL_STACK.iter().map(|c| (*c, 1)));
        WanScanSpec {
            homes: 16,
            seed: 0x6b1c,
            workers: 1,
            device_range: (3, 8),
            mix,
            policies: FirewallPolicy::ALL.to_vec(),
            plan: ScanPlan::wan(),
            settle_s: 90,
            mesh_per_mille: 0,
        }
    }
}

/// Encapsulate an inner IPv6 packet the way the tunnel broker would:
/// protocol-41 IPv4 from the remote endpoint to the router's WAN side.
fn encap(inner: Vec<u8>) -> Vec<u8> {
    ipv4::Repr {
        src: addrs::TUNNEL_REMOTE_IPV4,
        dst: addrs::ROUTER_WAN_IPV4,
        protocol: Protocol::Ipv6,
        ttl: 64,
        payload_len: inner.len(),
    }
    .build(&inner)
}

fn echo_probe(dst: Ipv6Addr, seq: u16) -> Vec<u8> {
    let icmp = icmpv6::Repr::EchoRequest {
        ident: ECHO_IDENT,
        seq,
        payload: b"v6scan".to_vec(),
    }
    .build(scanner_addr(), dst);
    ipv6::Repr {
        src: scanner_addr(),
        dst,
        next_header: Protocol::Icmpv6,
        hop_limit: 64,
        payload_len: icmp.len(),
    }
    .build(&icmp)
}

/// Scanner source port for a probe of `port` — distinct from any
/// device-side ephemeral port, stable across runs.
fn scan_sport(port: u16) -> u16 {
    33_000 + (port % 32_000)
}

fn syn_probe(dst: Ipv6Addr, port: u16) -> Vec<u8> {
    let seg = tcp::Repr::syn(scan_sport(port), port, 0x5ca9).build(PseudoHeader::V6 {
        src: scanner_addr(),
        dst,
    });
    ipv6::Repr {
        src: scanner_addr(),
        dst,
        next_header: Protocol::Tcp,
        hop_limit: 64,
        payload_len: seg.len(),
    }
    .build(&seg)
}

fn udp_probe(dst: Ipv6Addr, port: u16) -> Vec<u8> {
    let dgram = udp::Repr {
        src_port: scan_sport(port),
        dst_port: port,
        payload: b"v6scan".to_vec(),
    }
    .build(PseudoHeader::V6 {
        src: scanner_addr(),
        dst,
    });
    ipv6::Repr {
        src: scanner_addr(),
        dst,
        next_header: Protocol::Udp,
        hop_limit: 64,
        payload_len: dgram.len(),
    }
    .build(&dgram)
}

/// What the scanner heard back, keyed by responding address.
#[derive(Default)]
struct Replies {
    /// Addresses that answered the echo.
    live: BTreeSet<Ipv6Addr>,
    /// (address, port) pairs that answered SYN with SYN/ACK.
    open_tcp: BTreeSet<(Ipv6Addr, u16)>,
    /// (address, port) pairs that answered a UDP probe with data.
    open_udp: BTreeSet<(Ipv6Addr, u16)>,
}

impl Replies {
    /// Classify one packet captured at the scanner tap (an inner IPv6
    /// packet as it crossed the tunnel outward).
    fn absorb(&mut self, bytes: &[u8]) {
        let Ok(p) = ipv6::Packet::new_checked(bytes) else {
            return;
        };
        let repr = ipv6::Repr::parse(&p);
        match repr.next_header {
            Protocol::Icmpv6 => {
                if let Ok(icmpv6::Repr::EchoReply { ident, .. }) =
                    icmpv6::Repr::parse_bytes(repr.src, repr.dst, p.payload())
                {
                    if ident == ECHO_IDENT {
                        self.live.insert(repr.src);
                    }
                }
            }
            Protocol::Tcp => {
                if let Ok(seg) = tcp::Packet::new_checked(p.payload()) {
                    let flags = seg.flags();
                    if flags.contains(tcp::Flags::SYN) && flags.contains(tcp::Flags::ACK) {
                        self.open_tcp.insert((repr.src, seg.src_port()));
                    }
                }
            }
            Protocol::Udp => {
                if let Ok(d) = udp::Packet::new_checked(p.payload()) {
                    self.open_udp.insert((repr.src, d.src_port()));
                }
            }
            _ => {}
        }
    }
}

/// Inject a wave of probes and simulate until the replies drained.
fn probe_wave(sim: &mut Simulation, probes: Vec<Vec<u8>>, until: SimTime, replies: &mut Replies) {
    for p in probes {
        sim.inject_wan(encap(p));
    }
    sim.run_until(until);
    for bytes in sim.internet_mut().take_scanner_rx() {
        replies.absorb(&bytes);
    }
}

/// Scan one home under one firewall policy, folding target rows and
/// hitlist stats into `out`. With `mesh` set, every device sits behind
/// a 6LoWPAN border router: the scanner's passive observations, hitlist
/// extrapolation, and probes all see leaf GUAs that only exist on the
/// Ethernet side because the border router decompressed and forwarded
/// them.
fn scan_policy(
    home: &HomeSpec<NetworkConfig>,
    policy: FirewallPolicy,
    plan: &ScanPlan,
    settle: SimTime,
    mesh: bool,
    out: &mut HomeScanOutcome,
) {
    let router = Router::new(home.config.router_config_with(policy));
    let internet = Internet::new(scenario::build_zones(&home.profiles));
    let mut b = SimulationBuilder::new(router, internet);
    let sim_seed = home.seed ^ home.config as u64;
    let mut hosts = Vec::with_capacity(home.profiles.len());
    let mut br_host = None;
    if mesh {
        let leaves: Vec<Box<dyn Host>> = home
            .profiles
            .iter()
            .map(|p| Box::new(IotDevice::new((*p).clone())) as Box<dyn Host>)
            .collect();
        br_host = Some(b.add_host(Box::new(BorderRouter::new(sim_seed, leaves))));
    } else {
        for p in &home.profiles {
            hosts.push(b.add_host(Box::new(IotDevice::new((*p).clone()))));
        }
    }
    let mut sim = b.seed(sim_seed).build();
    sim.internet_mut().attach_scanner(scanner_addr());

    // Phase 1: the home lives its normal life while the internet side
    // passively observes outbound sources.
    sim.run_until(settle);

    // Ground truth (never shown to the scanner): every global address a
    // device holds, with its category and addressing mode.
    let mut truth: BTreeMap<Ipv6Addr, (String, String)> = BTreeMap::new();
    let absorb_truth = |dev: &IotDevice, truth: &mut BTreeMap<Ipv6Addr, (String, String)>| {
        let category = dev.profile().category.label();
        for (addr, mode) in dev.gua_inventory() {
            truth.insert(addr, (category.to_string(), mode.to_string()));
        }
    };
    if let Some(br_id) = br_host {
        let br = sim
            .host(br_id)
            .as_any()
            .downcast_ref::<BorderRouter>()
            .expect("host is the border router");
        for idx in 0..br.leaf_count() {
            let dev = br
                .leaf(idx)
                .as_any()
                .downcast_ref::<IotDevice>()
                .expect("leaf is a device");
            absorb_truth(dev, &mut truth);
        }
    } else {
        for &h in &hosts {
            let dev = sim
                .host(h)
                .as_any()
                .downcast_ref::<IotDevice>()
                .expect("host is a device");
            absorb_truth(dev, &mut truth);
        }
    }

    // Phase 2: hitlist from passive observations, dense-sweep baseline.
    let observed: Vec<Ipv6Addr> = sim.internet().observed_v6_sources().copied().collect();
    let candidates = exposure::hitlist(addrs::LAN_PREFIX, &observed, HITLIST_NEIGHBORHOOD);
    let dense = exposure::dense_sweep(addrs::LAN_PREFIX, DENSE_BUDGET);

    // Phase 3: liveness. The union covers the scanner's candidate lists
    // and — for the firewall measurement — the ground truth itself.
    let probe_set: BTreeSet<Ipv6Addr> = candidates
        .iter()
        .chain(dense.iter())
        .chain(truth.keys())
        .copied()
        .collect();
    let mut replies = Replies::default();
    let echoes = probe_set
        .iter()
        .enumerate()
        .map(|(i, &dst)| echo_probe(dst, i as u16))
        .collect();
    let t1 = settle + PROBE_WINDOW;
    probe_wave(&mut sim, echoes, t1, &mut replies);

    // Phase 4: service sweep over responsive ground-truth addresses.
    let sweep_targets: Vec<Ipv6Addr> = truth
        .keys()
        .filter(|a| replies.live.contains(a))
        .copied()
        .collect();
    let mut probes = Vec::new();
    for &dst in &sweep_targets {
        for &port in &plan.tcp {
            probes.push(syn_probe(dst, port));
        }
        for &port in &plan.udp {
            probes.push(udp_probe(dst, port));
        }
    }
    probe_wave(&mut sim, probes, t1 + PROBE_WINDOW, &mut replies);

    let label = policy.label().to_string();
    for (&addr, (category, mode)) in &truth {
        out.targets.push(TargetOutcome {
            policy: label.clone(),
            category: category.clone(),
            addressing: mode.clone(),
            responsive: replies.live.contains(&addr),
            open_tcp: plan
                .tcp
                .iter()
                .filter(|p| replies.open_tcp.contains(&(addr, **p)))
                .count() as u64,
            open_udp: plan
                .udp
                .iter()
                .filter(|p| replies.open_udp.contains(&(addr, **p)))
                .count() as u64,
        });
    }
    out.hitlist.push((
        label,
        HitlistStats {
            truth_addrs: truth.len() as u64,
            candidates: candidates.len() as u64,
            covered: truth.keys().filter(|a| candidates.contains(a)).count() as u64,
            responsive: candidates
                .iter()
                .filter(|a| replies.live.contains(a))
                .count() as u64,
            dense_candidates: dense.len() as u64,
            dense_covered: truth.keys().filter(|a| dense.contains(a)).count() as u64,
            dense_responsive: dense.iter().filter(|a| replies.live.contains(a)).count() as u64,
        },
    ));
}

/// Scan one home under every requested policy. Each policy gets its own
/// simulation from the same seed: the settle phase is byte-identical
/// across policies (nothing inbound during settle is unsolicited), so
/// the probe waves hit identical device state and reachability under a
/// stricter policy is a subset of reachability under a looser one.
pub fn scan_home(
    home: &HomeSpec<NetworkConfig>,
    policies: &[FirewallPolicy],
    plan: &ScanPlan,
    settle: SimTime,
    mesh: bool,
) -> HomeScanOutcome {
    let mut out = HomeScanOutcome {
        devices: home.profiles.len() as u64,
        ..Default::default()
    };
    for &policy in policies {
        scan_policy(home, policy, plan, settle, mesh, &mut out);
    }
    out
}

/// Execute a campaign: synthesize the homes, scan each on the worker
/// pool, aggregate the exposure report. Worker crashes are isolated and
/// recorded in [`ExposureReport::failures`] without perturbing the
/// serialized aggregates.
pub fn run(spec: &WanScanSpec) -> ExposureReport {
    let (dev_min, dev_max) = spec.device_range;
    let plans = plan_homes(spec.seed, spec.homes, &spec.mix, dev_min..=dev_max);
    let policies = spec.policies.clone();
    let plan = spec.plan.clone();
    let settle = SimTime::from_secs(spec.settle_s);
    let mesh_per_mille = spec.mesh_per_mille;
    let (mut report, failures) = run_indexed_outcomes(
        plans,
        spec.workers,
        move |home| {
            let mesh = crate::fleet::home_is_mesh(home.seed, mesh_per_mille);
            scan_home(&home, &policies, &plan, settle, mesh)
        },
        ExposureReport::new(spec.seed),
        |report, _index, outcome| report.absorb_home(&outcome),
    );
    for f in failures {
        report.absorb_failure(f.index, f.message);
    }
    report
}

/// Human-readable campaign summary (the non-`--json` CLI output).
pub fn render(report: &ExposureReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "WAN exposure scan: {} homes, {} devices (seed {:#x})",
        report.homes, report.devices, report.campaign_seed
    );
    let _ = writeln!(out, "\nHitlist vs ground truth, per firewall policy:");
    for (policy, h) in &report.hitlist {
        let _ = writeln!(
            out,
            "  {policy:<13} {:>5} candidates covering {}/{} true GUAs ({} responsive); \
             dense sweep {} covering {} ({} responsive)",
            h.candidates,
            h.covered,
            h.truth_addrs,
            h.responsive,
            h.dense_candidates,
            h.dense_covered,
            h.dense_responsive,
        );
    }
    let _ = writeln!(
        out,
        "\nOpen ports reachable from the Internet (category x policy):"
    );
    let _ = writeln!(
        out,
        "  {:<14} {:>12} {:>10} {:>10}  targets responsive",
        "category", "default-deny", "pinholed", "open"
    );
    for (cat, by_policy) in &report.cells {
        let (mut targets, mut responsive) = (0u64, 0u64);
        for modes in by_policy.values() {
            for cell in modes.values() {
                targets += cell.targets;
                responsive += cell.responsive;
            }
        }
        let _ = writeln!(
            out,
            "  {:<14} {:>12} {:>10} {:>10}  {targets:>7} {responsive:>10}",
            cat,
            report.open_ports(cat, "default-deny"),
            report.open_ports(cat, "pinholed"),
            report.open_ports(cat, "open"),
        );
    }
    let violations = report.monotonic_violations();
    if violations.is_empty() {
        let _ = writeln!(out, "\nPolicy monotonicity: ok (open >= pinholed >= deny)");
    } else {
        for v in &violations {
            let _ = writeln!(out, "\nPolicy monotonicity VIOLATED: {v}");
        }
    }
    if !report.failures.is_empty() {
        let _ = writeln!(out, "\n{} home(s) failed to scan:", report.failures.len());
        for (index, msg) in &report.failures {
            let _ = writeln!(out, "  home {index}: {msg}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6brick_devices::registry;

    fn one_home(ids: &[&str], config: NetworkConfig) -> HomeSpec<NetworkConfig> {
        HomeSpec {
            index: 0,
            seed: 0x5ca9_0001,
            config,
            profiles: ids
                .iter()
                .map(|id| registry::lookup(id).expect("known device id"))
                .collect(),
        }
    }

    #[test]
    fn open_home_exposes_services_deny_home_exposes_nothing() {
        let home = one_home(&["samsung_fridge", "hue_hub"], NetworkConfig::Ipv6Only);
        let outcome = scan_home(
            &home,
            &FirewallPolicy::ALL,
            &ScanPlan::wan(),
            SimTime::from_secs(45),
            false,
        );
        assert_eq!(outcome.devices, 2);

        let open_ports = |policy: &str| -> u64 {
            outcome
                .targets
                .iter()
                .filter(|t| t.policy == policy)
                .map(|t| t.open_tcp + t.open_udp)
                .sum()
        };
        // Under the routed-/64 posture the fridge's v6-only ports are on
        // the Internet; default-deny hides everything, pinholes sit
        // in between (the hub's 80/443 are pinholed service ports).
        assert!(open_ports("open") > 0, "open policy must expose services");
        assert_eq!(open_ports("default-deny"), 0);
        assert!(open_ports("pinholed") <= open_ports("open"));
        assert!(
            outcome
                .targets
                .iter()
                .filter(|t| t.policy == "default-deny")
                .all(|t| !t.responsive),
            "default-deny must block even liveness probes"
        );

        // The whole-home report agrees with the lattice.
        let mut report = ExposureReport::new(1);
        report.absorb_home(&outcome);
        assert!(report.monotonic_violations().is_empty());
    }

    #[test]
    fn hitlist_quality_is_policy_independent_but_responsiveness_is_not() {
        let home = one_home(&["samsung_fridge", "hue_hub"], NetworkConfig::Ipv6Only);
        let outcome = scan_home(
            &home,
            &FirewallPolicy::ALL,
            &ScanPlan::wan(),
            SimTime::from_secs(45),
            false,
        );
        let stats: BTreeMap<&str, &HitlistStats> = outcome
            .hitlist
            .iter()
            .map(|(p, h)| (p.as_str(), h))
            .collect();
        let open = stats["open"];
        let deny = stats["default-deny"];
        // Same settle phase -> same observations -> same hitlist.
        assert_eq!(open.candidates, deny.candidates);
        assert_eq!(open.covered, deny.covered);
        assert_eq!(open.truth_addrs, deny.truth_addrs);
        // But the firewall decides who answers.
        assert_eq!(deny.responsive, 0);
        assert!(open.truth_addrs > 0);
    }

    #[test]
    fn meshed_home_exposes_leaf_guas_through_the_border_router() {
        // Devices that actually move Internet traffic over IPv6 — the
        // passive tap has to see them for the hitlist to have anything
        // to extrapolate from.
        let home = one_home(
            &["google_home_mini", "echo_show_5"],
            NetworkConfig::Ipv6Only,
        );
        let meshed = scan_home(
            &home,
            &FirewallPolicy::ALL,
            &ScanPlan::wan(),
            SimTime::from_secs(90),
            true,
        );
        let stats: BTreeMap<&str, &HitlistStats> = meshed
            .hitlist
            .iter()
            .map(|(p, h)| (p.as_str(), h))
            .collect();
        let open = stats["open"];
        // Leaf GUAs are real ground truth even though the leaves only
        // touch the Ethernet through the border router's forwarding...
        assert!(open.truth_addrs > 0, "meshed leaves still hold GUAs");
        // ...the scanner's passive tap observed them (the BR forwarded
        // their flows), so the hitlist extrapolation covers them...
        assert!(open.covered > 0, "hitlist must cover BR-derived GUAs");
        // ...and under the open policy a WAN probe crosses the tunnel,
        // the LAN, *and* the mesh, and comes back.
        assert!(
            open.responsive > 0,
            "leaves behind the border router must answer WAN probes under the open policy"
        );
        // Default-deny still blocks everything — the border router is a
        // transit, not a firewall bypass.
        assert_eq!(stats["default-deny"].responsive, 0);
    }
}
