//! One generator per paper figure, emitting the data series as text
//! (the repro harness regenerates numbers, not pixels).

use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use crate::tables;
use std::collections::BTreeMap;
use v6brick_core::analysis::PassId;
use v6brick_core::eui64;
use v6brick_net::Mac;

/// Analyzer passes [`figure2`] reads (the full readiness funnel).
pub const FIGURE2_PASSES: &[PassId] = tables::FUNNEL_PASSES;

/// Analyzer passes [`figure3`] reads (address and AAAA-query counts).
pub const FIGURE3_PASSES: &[PassId] = &[PassId::Addressing, PassId::Dns];

/// Analyzer passes [`figure4`] reads (volume fractions only; the
/// functionality annotation comes from the simulator, not a pass).
pub const FIGURE4_PASSES: &[PassId] = &[PassId::Traffic];

/// Analyzer passes [`figure5`] reads (the EUI-64 funnel needs address
/// sets, names, traffic attribution, and the EUI-64 correlators).
pub const FIGURE5_PASSES: &[PassId] = &[
    PassId::Addressing,
    PassId::Dns,
    PassId::Traffic,
    PassId::Eui64,
];

/// Figure 2: the IPv6-only feature funnel (the nested-circle chart's
/// underlying percentages).
pub fn figure2(suite: &ExperimentSuite) -> TextTable {
    let o = |id: &str| suite.v6only_observation(id);
    let mut t = TextTable::new(
        "Figure 2: IPv6-only experiments — the readiness funnel (percent of 93 devices)",
    )
    .headers(["Ring (outer to inner)", "Devices", "%"]);
    let rows: Vec<(&str, usize)> = vec![
        (
            "IPv6 NDP traffic",
            suite.device_ids().filter(|id| o(id).ndp_traffic).count(),
        ),
        (
            "IPv6 address",
            suite.device_ids().filter(|id| o(id).has_v6_addr()).count(),
        ),
        (
            "IPv6 DNS (AAAA request)",
            suite
                .device_ids()
                .filter(|id| !o(id).aaaa_q_v6.is_empty())
                .count(),
        ),
        (
            "AAAA response",
            suite
                .device_ids()
                .filter(|id| !o(id).aaaa_pos_v6.is_empty())
                .count(),
        ),
        (
            "Internet data communication",
            suite
                .device_ids()
                .filter(|id| o(id).v6_internet_data())
                .count(),
        ),
        (
            "Functional",
            suite
                .device_ids()
                .filter(|id| suite.functional_v6only(id))
                .count(),
        ),
    ];
    for (label, n) in rows {
        t.row([
            label.to_string(),
            n.to_string(),
            format!("{:.1}%", 100.0 * n as f64 / 93.0),
        ]);
    }
    t
}

/// Figure 3: CDFs of per-device IPv6 address counts (top) and distinct
/// AAAA query counts (bottom). Emits the sorted series.
pub fn figure3(suite: &ExperimentSuite) -> TextTable {
    let mut addr_counts: Vec<usize> = suite
        .device_ids()
        .map(|id| suite.v6_and_dual_observation(id).all_addrs().len())
        .filter(|n| *n > 0)
        .collect();
    addr_counts.sort_unstable();
    let mut q_counts: Vec<usize> = suite
        .device_ids()
        .map(|id| suite.v6_and_dual_observation(id).aaaa_q_any().len())
        .filter(|n| *n > 0)
        .collect();
    q_counts.sort_unstable();

    let mut t = TextTable::new(
        "Figure 3: CDFs — IPv6 addresses per device (top), AAAA queries per device (bottom)",
    )
    .headers(["Percentile", "# addresses", "# AAAA queries"]);
    for pct in [10, 25, 50, 75, 80, 90, 95, 100] {
        let pick = |v: &Vec<usize>| {
            if v.is_empty() {
                0
            } else {
                v[((v.len() - 1) * pct) / 100]
            }
        };
        t.row([
            format!("p{pct}"),
            pick(&addr_counts).to_string(),
            pick(&q_counts).to_string(),
        ]);
    }
    // The paper's concentration findings.
    let top_share = |v: &Vec<usize>, k: usize| -> f64 {
        let total: usize = v.iter().sum();
        let top: usize = v.iter().rev().take(k).sum();
        if total == 0 {
            0.0
        } else {
            100.0 * top as f64 / total as f64
        }
    };
    t.row([
        "top-10 devices' share".to_string(),
        format!("{:.0}% of addresses", top_share(&addr_counts, 10)),
        format!("{:.0}% of AAAA queries", top_share(&q_counts, 10)),
    ]);
    t
}

/// Figure 4: per-device fraction of dual-stack Internet volume over IPv6,
/// sorted descending, annotated with functionality.
pub fn figure4(suite: &ExperimentSuite) -> TextTable {
    let mut rows: Vec<(String, f64, bool)> = suite
        .profiles
        .iter()
        .map(|p| {
            (
                p.name.clone(),
                suite.dual_observation(&p.id).v6_volume_fraction(),
                suite.functional_v6only(&p.id),
            )
        })
        .filter(|(_, f, _)| *f > 0.0)
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let mut t =
        TextTable::new("Figure 4: fraction of Internet data volume over IPv6 in dual-stack")
            .headers(["Device", "IPv6 fraction", "Functional in IPv6-only"]);
    for (name, frac, func) in rows {
        t.row([
            name,
            format!("{:.1}%", frac * 100.0),
            if func {
                "functional".into()
            } else {
                "non-functional".to_string()
            },
        ]);
    }
    t
}

/// Figure 5: the EUI-64 funnel and the party mix of exposed domains.
pub fn figure5(suite: &ExperimentSuite) -> TextTable {
    let funnel = eui64_funnel(suite);
    let mut t =
        TextTable::new("Figure 5: EUI-64 GUA exposure").headers(["Stage", "Devices / domains"]);
    t.row([
        "Assign GUA EUI-64 addresses".to_string(),
        format!(
            "{} devices ({:.1}%)",
            funnel.assign,
            100.0 * funnel.assign as f64 / 93.0
        ),
    ]);
    t.row([
        "Use them".to_string(),
        format!(
            "{} devices ({:.1}%)",
            funnel.use_any,
            100.0 * funnel.use_any as f64 / 93.0
        ),
    ]);
    t.row([
        "Use them for DNS".to_string(),
        format!("{} devices", funnel.use_dns),
    ]);
    t.row([
        "Use them for Internet data".to_string(),
        format!("{} devices", funnel.use_internet_data),
    ]);
    t.row([
        "Domains contacted (data devices)".to_string(),
        format!(
            "{} first-party, {} support, {} third-party",
            funnel.data_domains_by_party.first,
            funnel.data_domains_by_party.support,
            funnel.data_domains_by_party.third
        ),
    ]);
    t.row([
        "Domains queried (DNS-only devices)".to_string(),
        format!(
            "{} first-party, {} support, {} third-party",
            funnel.dns_only_domains_by_party.first,
            funnel.dns_only_domains_by_party.support,
            funnel.dns_only_domains_by_party.third
        ),
    ]);
    t
}

/// The measured EUI-64 funnel over the union of IPv6-capable runs.
pub fn eui64_funnel(suite: &ExperimentSuite) -> eui64::Eui64Funnel {
    // Merge per-device observations, then run the core funnel.
    let mut analysis = v6brick_core::observe::ExperimentAnalysis::default();
    for p in &suite.profiles {
        analysis
            .devices
            .insert(p.id.clone(), suite.v6_and_dual_observation(&p.id));
    }
    let macs: Vec<(String, Mac)> = suite
        .profiles
        .iter()
        .map(|p| (p.id.clone(), p.mac))
        .collect();
    let vendors: Vec<(String, String)> = suite
        .profiles
        .iter()
        .map(|p| (p.id.clone(), p.manufacturer.clone()))
        .collect();
    eui64::funnel(&analysis, &macs, &vendors)
}

/// Per-category dual-stack volume fractions (the Table 6 bottom row as a
/// map, for tests).
pub fn category_volume_fractions(suite: &ExperimentSuite) -> BTreeMap<&'static str, f64> {
    let mut out = BTreeMap::new();
    for c in v6brick_devices::Category::ALL {
        let (mut v6, mut all) = (0u64, 0u64);
        for p in suite.profiles.iter().filter(|p| p.category == c) {
            let o = suite.dual_observation(&p.id);
            v6 += o.v6_internet_bytes;
            all += o.v6_internet_bytes + o.v4_internet_bytes;
        }
        out.insert(
            c.label(),
            if all == 0 {
                0.0
            } else {
                v6 as f64 / all as f64
            },
        );
    }
    out
}

/// Keep the tables module linked from figures (figure 2 mirrors table 3).
pub fn _table3_alias(suite: &ExperimentSuite) -> TextTable {
    tables::table3(suite)
}
