//! One generator per paper table. Every number here is *measured* from
//! the captures (or the device models for the functionality column); the
//! registry's ground truth is never consulted.

use crate::active_dns::ActiveDnsReport;
use crate::render::TextTable;
use crate::suite::ExperimentSuite;
use crate::NetworkConfig;
use std::collections::{BTreeMap, BTreeSet};
use v6brick_core::observe::DeviceObservation;
use v6brick_core::transitions;
use v6brick_devices::profile::{Category, Os};
use v6brick_net::dns::Name;
use v6brick_net::ipv6::{AddressKind, Ipv6AddrExt};

/// Count devices per category satisfying `pred`.
pub fn count_by_category(
    suite: &ExperimentSuite,
    mut pred: impl FnMut(&str) -> bool,
) -> Vec<usize> {
    Category::ALL
        .iter()
        .map(|c| {
            suite
                .profiles
                .iter()
                .filter(|p| p.category == *c && pred(&p.id))
                .count()
        })
        .collect()
}

// --- shared measurement predicates -----------------------------------------

/// Active GUA (sourced traffic from a global address)?
pub fn active_gua(o: &DeviceObservation) -> bool {
    o.active_v6.iter().any(|a| a.is_global_unicast())
}

/// Holds an active EUI-64 address: an (inherently link-used) EUI-64 LLA,
/// or an EUI-64 global that sourced traffic.
pub fn has_eui64_addr(o: &DeviceObservation) -> bool {
    o.all_addrs()
        .iter()
        .any(|a| a.is_link_local() && a.is_eui64())
        || o.active_v6
            .iter()
            .any(|a| !a.is_link_local() && a.is_eui64())
}

/// Assigned any ULA?
pub fn has_ula(o: &DeviceObservation) -> bool {
    o.all_addrs().iter().any(|a| a.is_unique_local())
}

/// Assigned any LLA?
pub fn has_lla(o: &DeviceObservation) -> bool {
    o.all_addrs().iter().any(|a| a.is_link_local())
}

/// Any v4-only AAAA query name?
pub fn aaaa_v4_only(o: &DeviceObservation) -> bool {
    o.aaaa_q_v4.difference(&o.aaaa_q_v6).next().is_some()
}

// --- Table 3 -----------------------------------------------------------------

/// Table 3: IPv6-only experiments, the feature funnel per category.
pub fn table3(suite: &ExperimentSuite) -> TextTable {
    let o = |id: &str| suite.v6only_observation(id);
    let mut t =
        TextTable::new("Table 3: IPv6-only experiments — IPv6 feature support per category")
            .percent_base(suite.profiles.len())
            .headers([
                "Feature",
                "Appliance",
                "Camera",
                "TV/Ent.",
                "Gateway",
                "Health",
                "Home Auto",
                "Speaker",
                "Total",
                "%",
            ]);
    t.count_row("Total # of Device", &count_by_category(suite, |_| true));
    t.count_row(
        "- No IPv6",
        &count_by_category(suite, |id| !o(id).ndp_traffic),
    );
    t.count_row(
        "IPv6 NDP Traffic",
        &count_by_category(suite, |id| o(id).ndp_traffic),
    );
    t.count_row(
        "- NDP Traffic No Addr",
        &count_by_category(suite, |id| o(id).ndp_traffic && !o(id).has_v6_addr()),
    );
    t.count_row(
        "IPv6 Address",
        &count_by_category(suite, |id| o(id).has_v6_addr()),
    );
    t.count_row(
        "^ Global Unique Address",
        &count_by_category(suite, |id| active_gua(&o(id))),
    );
    t.count_row(
        "- IPv6 Address but No IPv6 DNS",
        &count_by_category(suite, |id| o(id).has_v6_addr() && !o(id).dns_over_v6()),
    );
    t.count_row(
        "IPv6 DNS (AAAA Req)",
        &count_by_category(suite, |id| !o(id).aaaa_q_v6.is_empty()),
    );
    t.count_row(
        "^ AAAA DNS Response",
        &count_by_category(suite, |id| !o(id).aaaa_pos_v6.is_empty()),
    );
    t.count_row(
        "- IPv6 DNS but No Data",
        &count_by_category(suite, |id| {
            !o(id).aaaa_q_v6.is_empty() && !o(id).v6_internet_data()
        }),
    );
    t.count_row(
        "Internet TCP/UDP Data Comm.",
        &count_by_category(suite, |id| o(id).v6_internet_data()),
    );
    t.count_row(
        "- IPv6 Data but Not Func",
        &count_by_category(suite, |id| {
            o(id).v6_internet_data() && !suite.functional_v6only(id)
        }),
    );
    t.count_row(
        "Functional over IPv6-only",
        &count_by_category(suite, |id| suite.functional_v6only(id)),
    );
    t
}

// --- Table 4 -----------------------------------------------------------------

/// Table 4: per-category deltas, dual-stack minus IPv6-only.
pub fn table4(suite: &ExperimentSuite) -> TextTable {
    let mut t =
        TextTable::new("Table 4: Dual-stack experiments — feature-support deltas vs IPv6-only")
            .percent_base(suite.profiles.len())
            .headers([
                "Feature",
                "Appliance",
                "Camera",
                "TV/Ent.",
                "Gateway",
                "Health",
                "Home Auto",
                "Speaker",
                "Total",
                "%",
            ]);
    let mut delta = |label: &str, f: &dyn Fn(&DeviceObservation) -> bool| {
        let dual = count_by_category(suite, |id| f(&suite.dual_observation(id)));
        let v6 = count_by_category(suite, |id| f(&suite.v6only_observation(id)));
        let d: Vec<i64> = dual
            .iter()
            .zip(&v6)
            .map(|(a, b)| *a as i64 - *b as i64)
            .collect();
        t.delta_row(label, &d);
    };
    delta("IPv6 NDP Traffic", &|o| o.ndp_traffic);
    delta("IPv6 Address", &|o| o.has_v6_addr());
    delta("^ Global Unique Address", &active_gua);
    delta("AAAA DNS Request", &|o| !o.aaaa_q_any().is_empty());
    delta("^ AAAA DNS Response", &|o| !o.aaaa_pos_any().is_empty());
    delta("Internet TCP/UDP Data Comm.", &|o| o.v6_internet_data());
    t
}

// --- Table 5 -----------------------------------------------------------------

/// Table 5: feature support, IPv6-only and dual-stack experiments united.
pub fn table5(suite: &ExperimentSuite) -> TextTable {
    let o = |id: &str| suite.v6_and_dual_observation(id);
    let mut t =
        TextTable::new("Table 5: IPv6-only and dual-stack experiments — IPv6 feature support")
            .percent_base(suite.profiles.len())
            .headers([
                "Feature",
                "Appliance",
                "Camera",
                "TV/Ent.",
                "Gateway",
                "Health",
                "Home Auto",
                "Speaker",
                "Total",
                "%",
            ]);
    t.count_row(
        "IPv6 Addr",
        &count_by_category(suite, |id| o(id).has_v6_addr()),
    );
    t.count_row(
        "Stateful DHCPv6",
        &count_by_category(suite, |id| o(id).dhcpv6_stateful),
    );
    t.count_row("GUA", &count_by_category(suite, |id| active_gua(&o(id))));
    t.count_row("ULA", &count_by_category(suite, |id| has_ula(&o(id))));
    t.count_row("LLA", &count_by_category(suite, |id| has_lla(&o(id))));
    t.count_row(
        "EUI-64 Addr",
        &count_by_category(suite, |id| has_eui64_addr(&o(id))),
    );
    t.count_row(
        "DNS Over IPv6",
        &count_by_category(suite, |id| o(id).dns_over_v6()),
    );
    t.count_row(
        "A-only Request in IPv6",
        &count_by_category(suite, |id| !o(id).a_only_v6_names().is_empty()),
    );
    t.count_row(
        "AAAA Request (v4 or v6)",
        &count_by_category(suite, |id| !o(id).aaaa_q_any().is_empty()),
    );
    t.count_row(
        "IPv4-only AAAA Request",
        &count_by_category(suite, |id| aaaa_v4_only(&o(id))),
    );
    t.count_row(
        "AAAA Response",
        &count_by_category(suite, |id| !o(id).aaaa_pos_any().is_empty()),
    );
    t.count_row(
        "AAAA Req No AAAA Res",
        &count_by_category(suite, |id| !o(id).aaaa_neg.is_empty()),
    );
    t.count_row(
        "Stateless DHCPv6",
        &count_by_category(suite, |id| o(id).dhcpv6_stateless),
    );
    t.count_row(
        "IPv6 TCP/UDP Trans",
        &count_by_category(suite, |id| {
            o(id).v6_internet_bytes + o(id).v6_local_bytes > 0
        }),
    );
    t.count_row(
        "Internet Trans",
        &count_by_category(suite, |id| o(id).v6_internet_data()),
    );
    t.count_row(
        "Local Trans",
        &count_by_category(suite, |id| o(id).v6_local_bytes > 0),
    );
    t
}

// --- Table 6 -----------------------------------------------------------------

/// Table 6: address counts, distinct query names, dual-stack volume
/// fractions — per category.
pub fn table6(suite: &ExperimentSuite) -> TextTable {
    let o = |id: &str| suite.v6_and_dual_observation(id);
    let mut t = TextTable::new(
        "Table 6: number of IPv6 addresses, DNS query names, and the dual-stack IPv6 volume fraction",
    )
    .headers([
        "Metric", "Appliance", "Camera", "TV/Ent.", "Gateway", "Health", "Home Auto",
        "Speaker", "Total",
    ]);
    let sum_by_cat = |f: &dyn Fn(&DeviceObservation) -> usize| -> Vec<usize> {
        Category::ALL
            .iter()
            .map(|c| {
                suite
                    .profiles
                    .iter()
                    .filter(|p| p.category == *c)
                    .map(|p| f(&o(&p.id)))
                    .sum()
            })
            .collect()
    };
    let sum_row = |t: &mut TextTable, label: &str, f: &dyn Fn(&DeviceObservation) -> usize| {
        let counts = sum_by_cat(f);
        let mut r = vec![label.to_string()];
        r.extend(counts.iter().map(|c| c.to_string()));
        r.push(counts.iter().sum::<usize>().to_string());
        t.rows.push(r);
    };
    sum_row(&mut t, "# of IPv6 Addr", &|ob| ob.all_addrs().len());
    sum_row(&mut t, "# of GUA Addr", &|ob| {
        ob.all_addrs()
            .iter()
            .filter(|a| a.kind() == AddressKind::Global)
            .count()
    });
    sum_row(&mut t, "# of ULA Addr", &|ob| {
        ob.all_addrs()
            .iter()
            .filter(|a| a.kind() == AddressKind::UniqueLocal)
            .count()
    });
    sum_row(&mut t, "# of LLA Addr", &|ob| {
        ob.all_addrs()
            .iter()
            .filter(|a| a.kind() == AddressKind::LinkLocal)
            .count()
    });
    sum_row(&mut t, "# of AAAA DNS Req", &|ob| ob.aaaa_q_any().len());
    sum_row(&mut t, "# of A-only Req in IPv6", &|ob| {
        ob.a_only_v6_names().len()
    });
    sum_row(&mut t, "# of IPv4-only AAAA Req", &|ob| {
        ob.aaaa_q_v4.difference(&ob.aaaa_q_v6).count()
    });
    sum_row(&mut t, "# of AAAA DNS Res", &|ob| ob.aaaa_pos_any().len());

    // Volume fraction per category, dual-stack only.
    let mut r = vec!["IPv6 Fraction of Total Volume (%)".to_string()];
    let (mut tot6, mut tot) = (0u64, 0u64);
    for c in Category::ALL {
        let (mut v6, mut all) = (0u64, 0u64);
        for p in suite.profiles.iter().filter(|p| p.category == c) {
            let ob = suite.dual_observation(&p.id);
            v6 += ob.v6_internet_bytes;
            all += ob.v6_internet_bytes + ob.v4_internet_bytes;
        }
        tot6 += v6;
        tot += all;
        r.push(if all == 0 {
            "0.0%".into()
        } else {
            format!("{:.1}%", 100.0 * v6 as f64 / all as f64)
        });
    }
    r.push(format!("{:.1}%", 100.0 * tot6 as f64 / tot.max(1) as f64));
    t.rows.push(r);
    t
}

// --- Table 7 -----------------------------------------------------------------

/// Table 7: destination AAAA readiness, measured by the active DNS
/// experiment, split functional / non-functional and grouped by category
/// and by manufacturer.
pub fn table7(suite: &ExperimentSuite, active: &ActiveDnsReport) -> TextTable {
    let ready = active.aaaa_ready();
    let mut t = TextTable::new("Table 7: DNS AAAA readiness across destinations (active queries)")
        .headers([
            "Group",
            "Device #",
            "Domain #",
            "AAAA Res. #",
            "AAAA Res. %",
        ]);

    // Per-device observed domains (DNS + SNI, all runs).
    let device_domains = |id: &str| -> BTreeSet<Name> {
        let mut out = BTreeSet::new();
        for run in suite.runs() {
            if let Some(o) = run.analysis.device(id) {
                for n in o
                    .a_q_v4
                    .iter()
                    .chain(&o.a_q_v6)
                    .chain(&o.aaaa_q_v4)
                    .chain(&o.aaaa_q_v6)
                    .chain(&o.sni_domains)
                {
                    if !n.as_str().ends_with(".local") {
                        out.insert(n.clone());
                    }
                }
            }
        }
        out
    };

    let group_row = |t: &mut TextTable, label: String, ids: Vec<&str>| {
        let mut domains = BTreeSet::new();
        for id in &ids {
            domains.extend(device_domains(id));
        }
        let ready_count = domains.iter().filter(|d| ready.contains(*d)).count();
        let pct = if domains.is_empty() {
            0.0
        } else {
            100.0 * ready_count as f64 / domains.len() as f64
        };
        t.row([
            label,
            ids.len().to_string(),
            domains.len().to_string(),
            ready_count.to_string(),
            format!("{pct:.1}%"),
        ]);
    };

    t.row([
        "— Functional devices in IPv6-only network —",
        "",
        "",
        "",
        "",
    ]);
    for c in Category::ALL {
        let ids: Vec<&str> = suite
            .profiles
            .iter()
            .filter(|p| p.category == c && suite.functional_v6only(&p.id))
            .map(|p| p.id.as_str())
            .collect();
        if !ids.is_empty() {
            group_row(&mut t, c.label().to_string(), ids);
        }
    }
    let func: Vec<&str> = suite
        .profiles
        .iter()
        .filter(|p| suite.functional_v6only(&p.id))
        .map(|p| p.id.as_str())
        .collect();
    group_row(&mut t, "Total (functional)".into(), func);

    t.row([
        "— Non-functional devices in IPv6-only network —",
        "",
        "",
        "",
        "",
    ]);
    for c in Category::ALL {
        let ids: Vec<&str> = suite
            .profiles
            .iter()
            .filter(|p| p.category == c && !suite.functional_v6only(&p.id))
            .map(|p| p.id.as_str())
            .collect();
        if !ids.is_empty() {
            group_row(&mut t, c.label().to_string(), ids);
        }
    }
    let nonfunc: Vec<&str> = suite
        .profiles
        .iter()
        .filter(|p| !suite.functional_v6only(&p.id))
        .map(|p| p.id.as_str())
        .collect();
    group_row(&mut t, "Total (non-functional)".into(), nonfunc);

    // By manufacturer (>= 3 devices), non-functional side like the paper.
    t.row([
        "— Non-functional, by manufacturer (>= 3 devices) —",
        "",
        "",
        "",
        "",
    ]);
    let mut mans: Vec<&String> = suite.profiles.iter().map(|p| &p.manufacturer).collect();
    mans.sort();
    mans.dedup();
    for man in mans {
        let ids: Vec<&str> = suite
            .profiles
            .iter()
            .filter(|p| &p.manufacturer == man && !suite.functional_v6only(&p.id))
            .map(|p| p.id.as_str())
            .collect();
        if ids.len() >= 3 {
            group_row(&mut t, man.clone(), ids);
        }
    }
    t
}

// --- Table 8 -----------------------------------------------------------------

/// Table 8: feature support by manufacturer/platform (≥3 devices) and OS
/// (≥2 devices).
pub fn table8(suite: &ExperimentSuite) -> TextTable {
    let o = |id: &str| suite.v6_and_dual_observation(id);
    // Column groups.
    let mut mans: Vec<String> = suite
        .profiles
        .iter()
        .map(|p| p.manufacturer.clone())
        .collect();
    mans.sort();
    mans.dedup();
    let mans: Vec<String> = mans
        .into_iter()
        .filter(|m| {
            suite
                .profiles
                .iter()
                .filter(|p| &p.manufacturer == m)
                .count()
                >= 3
        })
        .collect();
    let oses: Vec<Os> = [
        Os::Tizen,
        Os::FireOs,
        Os::AndroidBased,
        Os::Fuchsia,
        Os::IosTvos,
    ]
    .into_iter()
    .filter(|os| suite.profiles.iter().filter(|p| p.os == *os).count() >= 2)
    .collect();

    let mut headers = vec!["Feature".to_string(), "Total".to_string()];
    headers.extend(mans.iter().cloned());
    headers.extend(oses.iter().map(|os| os.label().to_string()));
    let mut t = TextTable::new(
        "Table 8: IPv6 feature support per manufacturer/platform (>=3 devices) and OS (>=2 devices)",
    );
    t.headers = headers;

    let feature_row = |t: &mut TextTable, label: &str, f: &dyn Fn(&str) -> bool| {
        let mut r = vec![label.to_string()];
        let total = suite.profiles.iter().filter(|p| f(&p.id)).count();
        r.push(total.to_string());
        for m in &mans {
            let n = suite
                .profiles
                .iter()
                .filter(|p| &p.manufacturer == m && f(&p.id))
                .count();
            r.push(n.to_string());
        }
        for os in &oses {
            let n = suite
                .profiles
                .iter()
                .filter(|p| p.os == *os && f(&p.id))
                .count();
            r.push(n.to_string());
        }
        t.rows.push(r);
    };

    feature_row(&mut t, "Device #", &|_| true);
    feature_row(&mut t, "Functional over IPv6-only", &|id| {
        suite.functional_v6only(id)
    });
    feature_row(&mut t, "IPv6 Address", &|id| o(id).has_v6_addr());
    feature_row(&mut t, "Stateful DHCPv6", &|id| o(id).dhcpv6_stateful);
    feature_row(&mut t, "GUA", &|id| active_gua(&o(id)));
    feature_row(&mut t, "ULA", &|id| has_ula(&o(id)));
    feature_row(&mut t, "LLA", &|id| has_lla(&o(id)));
    feature_row(&mut t, "GUA EUI-64 Address", &|id| {
        o(id)
            .active_v6
            .iter()
            .any(|a| a.is_global_unicast() && a.is_eui64())
    });
    feature_row(&mut t, "DNS over IPv6", &|id| o(id).dns_over_v6());
    feature_row(&mut t, "A-only Req in IPv6", &|id| {
        !o(id).a_only_v6_names().is_empty()
    });
    feature_row(&mut t, "AAAA Req (v4 or v6)", &|id| {
        !o(id).aaaa_q_any().is_empty()
    });
    feature_row(&mut t, "IPv4-only AAAA Req", &|id| aaaa_v4_only(&o(id)));
    feature_row(&mut t, "EUI-64 Addr DNS Req", &|id| {
        o(id)
            .dns_src_v6
            .iter()
            .any(|a| a.is_global_unicast() && a.is_eui64())
    });
    feature_row(&mut t, "AAAA Response", &|id| {
        !o(id).aaaa_pos_any().is_empty()
    });
    feature_row(&mut t, "Stateless DHCPv6", &|id| o(id).dhcpv6_stateless);
    feature_row(&mut t, "IPv6 TCP/UDP Trans", &|id| {
        o(id).v6_internet_bytes + o(id).v6_local_bytes > 0
    });
    feature_row(&mut t, "Internet Trans", &|id| o(id).v6_internet_data());
    feature_row(&mut t, "Local Data Trans", &|id| o(id).v6_local_bytes > 0);
    feature_row(&mut t, "EUI-64 Internet Trans", &|id| {
        o(id)
            .data_src_v6
            .iter()
            .any(|a| a.is_global_unicast() && a.is_eui64())
    });
    t
}

// --- Table 9 -----------------------------------------------------------------

/// Table 9: destination domains switching between IPv4 and IPv6.
pub fn table9(suite: &ExperimentSuite, active: &ActiveDnsReport) -> TextTable {
    let mut t =
        TextTable::new("Table 9: destination domains switching between IPv4 and IPv6 (dual-stack)")
            .headers(["Metric", "Value", "% of common"]);

    // Per-family domain footprints across the whole testbed.
    let union_of = |configs: &[NetworkConfig]| {
        let (mut v4, mut v6) = (BTreeSet::new(), BTreeSet::new());
        for c in configs {
            let run = suite.run(*c);
            let (a, b) = transitions::domains_by_family(&run.analysis);
            v4.extend(a);
            v6.extend(b);
        }
        (v4, v6)
    };
    let (all_v4, all_v6) = union_of(&NetworkConfig::ALL);
    let all: BTreeSet<Name> = all_v4.union(&all_v6).cloned().collect();
    t.row([
        "# of Dest. Domain".to_string(),
        all.len().to_string(),
        String::new(),
    ]);
    t.row([
        "# IPv6 Dest. Domain".to_string(),
        all_v6.len().to_string(),
        format!(
            "{:.1}%",
            100.0 * all_v6.len() as f64 / all.len().max(1) as f64
        ),
    ]);
    t.row([
        "# IPv4 Dest. Domain".to_string(),
        all_v4.len().to_string(),
        format!(
            "{:.1}%",
            100.0 * all_v4.len() as f64 / all.len().max(1) as f64
        ),
    ]);

    let v4_run = suite.run(NetworkConfig::Ipv4Only);
    let v6_run = suite.run(NetworkConfig::Ipv6Only);
    let dual_run = suite.run(NetworkConfig::DualStack);

    let r = transitions::v4_to_v6(&v4_run.analysis, &dual_run.analysis);
    let pct = |n: usize| format!("{:.1}%", 100.0 * n as f64 / r.common.max(1) as f64);
    t.row([
        "# IPv4 dest. partially extending to IPv6".to_string(),
        r.partial_extension.to_string(),
        pct(r.partial_extension),
    ]);
    t.row([
        "# IPv4 dest. fully switching to IPv6".to_string(),
        r.full_switch.to_string(),
        pct(r.full_switch),
    ]);

    let r6 = transitions::v6_to_v4(&v6_run.analysis, &dual_run.analysis);
    let pct6 = |n: usize| format!("{:.1}%", 100.0 * n as f64 / r6.common.max(1) as f64);
    t.row([
        "# IPv6 dest. partially extending to IPv4".to_string(),
        r6.partial_extension.to_string(),
        pct6(r6.partial_extension),
    ]);
    t.row([
        "# IPv6 dest. fully switching to IPv4".to_string(),
        r6.full_switch.to_string(),
        pct6(r6.full_switch),
    ]);

    let ready = active.aaaa_ready();
    let unswitched = transitions::v4_only_with_aaaa(&dual_run.analysis, &ready);
    let (dual_v4, dual_v6) = transitions::domains_by_family(&dual_run.analysis);
    let v4_only_in_dual = dual_v4.difference(&dual_v6).count();
    t.row([
        "# IPv4-only Dest. w/ AAAA".to_string(),
        unswitched.len().to_string(),
        format!(
            "{:.1}%",
            100.0 * unswitched.len() as f64 / v4_only_in_dual.max(1) as f64
        ),
    ]);
    t
}

// --- Table 10 ----------------------------------------------------------------

/// Table 10: the measured per-device feature flags (the paper's
/// appendix inventory), from the captures.
pub fn table10(suite: &ExperimentSuite) -> TextTable {
    let mut t = TextTable::new("Table 10: devices, categories, and measured IPv6 features")
        .headers([
            "Device",
            "Category",
            "Func v6-only",
            "NDP",
            "IPv6 Addr",
            "GUA",
            "DNS/IPv6",
            "Global Data",
        ]);
    for p in &suite.profiles {
        let o = suite.v6_and_dual_observation(&p.id);
        let y = |b: bool| if b { "yes" } else { "-" };
        t.row([
            p.name.clone(),
            p.category.label().to_string(),
            y(suite.functional_v6only(&p.id)).to_string(),
            y(o.ndp_traffic).to_string(),
            y(o.has_v6_addr()).to_string(),
            y(active_gua(&o)).to_string(),
            y(o.dns_over_v6()).to_string(),
            y(o.v6_internet_data()).to_string(),
        ]);
    }
    t
}

// --- Table 11 ----------------------------------------------------------------

/// Table 11: firmware versions of select devices (appendix C).
pub fn table11(suite: &ExperimentSuite) -> TextTable {
    let mut t = TextTable::new("Table 11: firmware versions of select devices")
        .headers(["Device", "Version"]);
    for p in &suite.profiles {
        if let Some(v) = v6brick_devices::registry::firmware(&p.id) {
            t.row([p.name.clone(), v.to_string()]);
        }
    }
    t
}

// --- Table 12 ----------------------------------------------------------------

/// Table 12: feature support by purchase year.
pub fn table12(suite: &ExperimentSuite) -> TextTable {
    let years: Vec<u16> = {
        let mut y: Vec<u16> = suite.profiles.iter().map(|p| p.purchase_year).collect();
        y.sort();
        y.dedup();
        y
    };
    let mut headers = vec!["Feature".to_string()];
    headers.extend(years.iter().map(|y| y.to_string()));
    let mut t = TextTable::new("Table 12: IPv6 feature support by purchase year");
    t.headers = headers;

    let o = |id: &str| suite.v6_and_dual_observation(id);
    let row = |t: &mut TextTable, label: &str, f: &dyn Fn(&str) -> bool| {
        let mut r = vec![label.to_string()];
        for y in &years {
            let n = suite
                .profiles
                .iter()
                .filter(|p| p.purchase_year == *y && f(&p.id))
                .count();
            r.push(n.to_string());
        }
        t.rows.push(r);
    };
    row(&mut t, "# of Devices", &|_| true);
    row(&mut t, "IPv6 NDP Traffic", &|id| o(id).ndp_traffic);
    row(&mut t, "IPv6 Address", &|id| o(id).has_v6_addr());
    row(&mut t, "GUA", &|id| active_gua(&o(id)));
    row(&mut t, "AAAA DNS Request", &|id| {
        !o(id).aaaa_q_any().is_empty()
    });
    row(&mut t, "AAAA Response", &|id| {
        !o(id).aaaa_pos_any().is_empty()
    });
    row(&mut t, "Internet TCP/UDP IPv6 Data", &|id| {
        o(id).v6_internet_data()
    });
    row(&mut t, "Functional over IPv6-only", &|id| {
        suite.functional_v6only(id)
    });
    t
}

// --- Table 13 ----------------------------------------------------------------

/// Table 13: address and distinct-query counts by manufacturer and OS.
pub fn table13(suite: &ExperimentSuite) -> TextTable {
    let o = |id: &str| suite.v6_and_dual_observation(id);
    let mut mans: Vec<String> = suite
        .profiles
        .iter()
        .map(|p| p.manufacturer.clone())
        .collect();
    mans.sort();
    mans.dedup();
    let mans: Vec<String> = mans
        .into_iter()
        .filter(|m| {
            suite
                .profiles
                .iter()
                .filter(|p| &p.manufacturer == m)
                .count()
                >= 3
        })
        .collect();
    let oses = [
        Os::Tizen,
        Os::FireOs,
        Os::AndroidBased,
        Os::Fuchsia,
        Os::IosTvos,
    ];

    let mut headers = vec!["Metric".to_string(), "Total".to_string()];
    headers.extend(mans.iter().cloned());
    headers.extend(oses.iter().map(|os| os.label().to_string()));
    let mut t =
        TextTable::new("Table 13: IPv6 addresses and distinct DNS queries per manufacturer and OS");
    t.headers = headers;

    let row = |t: &mut TextTable, label: &str, f: &dyn Fn(&DeviceObservation) -> usize| {
        let mut r = vec![label.to_string()];
        let total: usize = suite.profiles.iter().map(|p| f(&o(&p.id))).sum();
        r.push(total.to_string());
        for m in &mans {
            let n: usize = suite
                .profiles
                .iter()
                .filter(|p| &p.manufacturer == m)
                .map(|p| f(&o(&p.id)))
                .sum();
            r.push(n.to_string());
        }
        for os in oses {
            let n: usize = suite
                .profiles
                .iter()
                .filter(|p| p.os == os)
                .map(|p| f(&o(&p.id)))
                .sum();
            r.push(n.to_string());
        }
        t.rows.push(r);
    };
    row(&mut t, "IPv6 Address", &|ob| ob.all_addrs().len());
    row(&mut t, "GUA", &|ob| {
        ob.all_addrs()
            .iter()
            .filter(|a| a.kind() == AddressKind::Global)
            .count()
    });
    row(&mut t, "ULA", &|ob| {
        ob.all_addrs()
            .iter()
            .filter(|a| a.kind() == AddressKind::UniqueLocal)
            .count()
    });
    row(&mut t, "LLA", &|ob| {
        ob.all_addrs()
            .iter()
            .filter(|a| a.kind() == AddressKind::LinkLocal)
            .count()
    });
    row(&mut t, "AAAA Req", &|ob| ob.aaaa_q_any().len());
    row(&mut t, "A only Req in IPv6", &|ob| {
        ob.a_only_v6_names().len()
    });
    row(&mut t, "IPv4-only AAAA Req", &|ob| {
        ob.aaaa_q_v4.difference(&ob.aaaa_q_v6).count()
    });
    row(&mut t, "AAAA Res", &|ob| ob.aaaa_pos_any().len());
    t
}

// --- IPv6-only variant comparison ---------------------------------------------

/// Side-by-side comparison of the three IPv6-only variants (the paper
/// discusses these differences in §5.2.1 but never tabulates them).
pub fn variants(suite: &ExperimentSuite) -> TextTable {
    let mut t = TextTable::new("IPv6-only variants: baseline vs RDNSS-only vs stateful (devices)")
        .headers(["Feature", "Baseline", "RDNSS-only", "Stateful"]);
    let configs = [
        NetworkConfig::Ipv6Only,
        NetworkConfig::Ipv6OnlyRdnssOnly,
        NetworkConfig::Ipv6OnlyStateful,
    ];
    let row = |t: &mut TextTable, label: &str, f: &dyn Fn(&DeviceObservation) -> bool| {
        let mut r = vec![label.to_string()];
        for c in configs {
            let run = suite.run(c);
            r.push(run.analysis.count(|o| f(o)).to_string());
        }
        t.rows.push(r);
    };
    row(&mut t, "NDP traffic", &|o| o.ndp_traffic);
    row(&mut t, "IPv6 address", &|o| o.has_v6_addr());
    row(&mut t, "DNS over IPv6", &|o| o.dns_over_v6());
    row(&mut t, "Stateless DHCPv6 exchange", &|o| o.dhcpv6_stateless);
    row(&mut t, "Stateful DHCPv6 exchange", &|o| o.dhcpv6_stateful);
    row(&mut t, "Got a DHCPv6 address", &|o| {
        !o.dhcpv6_addrs.is_empty()
    });
    row(&mut t, "Internet IPv6 data", &|o| o.v6_internet_data());
    // Functionality per variant.
    let mut r = vec!["Functional".to_string()];
    for c in configs {
        let run = suite.run(c);
        r.push(run.functional.values().filter(|x| **x).count().to_string());
    }
    t.rows.push(r);
    t
}

// --- DAD compliance (§5.2.1) ---------------------------------------------------

/// The DAD compliance report: devices that skipped DAD for at least one
/// used address, and devices that never DAD at all.
pub fn dad_report(suite: &ExperimentSuite) -> TextTable {
    let mut t = TextTable::new(
        "DAD compliance (RFC 4862 §5.4): devices skipping duplicate address detection",
    )
    .headers(["Device", "Addresses used", "DAD-probed", "Never DAD"]);
    let mut skip_some = 0usize;
    let mut never = 0usize;
    for p in &suite.profiles {
        let o = suite.v6_and_dual_observation(&p.id);
        // Unicast addresses that sourced traffic or were announced.
        let used: BTreeSet<_> = o
            .all_addrs()
            .into_iter()
            .filter(|a| !a.is_multicast() && !a.is_unspecified())
            .collect();
        if used.is_empty() {
            continue;
        }
        let probed = &o.dad_probed;
        let missing = used.iter().filter(|a| !probed.contains(*a)).count();
        if missing == 0 {
            continue;
        }
        let never_dad = probed.is_empty();
        skip_some += 1;
        if never_dad {
            never += 1;
        }
        t.row([
            p.name.clone(),
            used.len().to_string(),
            probed.len().to_string(),
            if never_dad {
                "yes".into()
            } else {
                "-".to_string()
            },
        ]);
    }
    t.row([
        format!("TOTAL: {skip_some} devices skip DAD for >=1 address"),
        String::new(),
        String::new(),
        format!("{never} never perform DAD"),
    ]);
    t
}

/// Measured (skip-some, never) DAD counts, for tests.
pub fn dad_counts(suite: &ExperimentSuite) -> (usize, usize) {
    let mut skip_some = 0usize;
    let mut never = 0usize;
    for p in &suite.profiles {
        let o = suite.v6_and_dual_observation(&p.id);
        let used: BTreeSet<_> = o
            .all_addrs()
            .into_iter()
            .filter(|a| !a.is_multicast() && !a.is_unspecified())
            .collect();
        if used.is_empty() {
            continue;
        }
        let missing = used.iter().filter(|a| !o.dad_probed.contains(*a)).count();
        if missing > 0 {
            skip_some += 1;
            if o.dad_probed.is_empty() {
                never += 1;
            }
        }
    }
    (skip_some, never)
}

/// A compact map of measured headline numbers used by the integration
/// tests and EXPERIMENTS.md.
pub fn headline_numbers(suite: &ExperimentSuite) -> BTreeMap<&'static str, i64> {
    let v6 = |id: &str| suite.v6only_observation(id);
    let u = |id: &str| suite.v6_and_dual_observation(id);
    let ids: Vec<&str> = suite.device_ids().collect();
    let count = |f: &dyn Fn(&str) -> bool| ids.iter().filter(|id| f(id)).count() as i64;
    let mut m = BTreeMap::new();
    m.insert("t3_ndp", count(&|id| v6(id).ndp_traffic));
    m.insert("t3_addr", count(&|id| v6(id).has_v6_addr()));
    m.insert("t3_gua", count(&|id| active_gua(&v6(id))));
    m.insert("t3_aaaa_v6", count(&|id| !v6(id).aaaa_q_v6.is_empty()));
    m.insert("t3_aaaa_pos", count(&|id| !v6(id).aaaa_pos_v6.is_empty()));
    m.insert("t3_data", count(&|id| v6(id).v6_internet_data()));
    m.insert("t3_functional", count(&|id| suite.functional_v6only(id)));
    m.insert("t5_addr", count(&|id| u(id).has_v6_addr()));
    m.insert("t5_stateful", count(&|id| u(id).dhcpv6_stateful));
    m.insert("t5_gua", count(&|id| active_gua(&u(id))));
    m.insert("t5_ula", count(&|id| has_ula(&u(id))));
    m.insert("t5_lla", count(&|id| has_lla(&u(id))));
    m.insert("t5_eui64", count(&|id| has_eui64_addr(&u(id))));
    m.insert("t5_dns6", count(&|id| u(id).dns_over_v6()));
    m.insert(
        "t5_a_only",
        count(&|id| !u(id).a_only_v6_names().is_empty()),
    );
    m.insert("t5_aaaa_any", count(&|id| !u(id).aaaa_q_any().is_empty()));
    m.insert("t5_aaaa_v4only", count(&|id| aaaa_v4_only(&u(id))));
    m.insert("t5_aaaa_pos", count(&|id| !u(id).aaaa_pos_any().is_empty()));
    m.insert("t5_stateless", count(&|id| u(id).dhcpv6_stateless));
    m.insert(
        "t5_trans",
        count(&|id| u(id).v6_internet_bytes + u(id).v6_local_bytes > 0),
    );
    m.insert("t5_internet", count(&|id| u(id).v6_internet_data()));
    m.insert("t5_local", count(&|id| u(id).v6_local_bytes > 0));
    let (dad_some, dad_never) = dad_counts(suite);
    m.insert("dad_skip_some", dad_some as i64);
    m.insert("dad_never", dad_never as i64);
    m
}
