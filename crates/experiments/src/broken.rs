//! Broken-IPv6 scenario presets: fault injection + Table 9 switching.
//!
//! The paper measures IP-version switching (Table 9) by comparing
//! *static* configurations. These presets make the question dynamic:
//! run a dual-stack home, break part of the IPv6 path mid-experiment,
//! and report which device classes abandon their IPv6 sessions for
//! IPv4 — and whether they find their way back once the fault clears.
//!
//! Four presets, all over the same curated device subset:
//!
//! * `broken-v6` — the headline scenario: the upstream 6in4 tunnel dies
//!   for a fixed three-minute window (90–270 s). Advertised-but-broken
//!   IPv6, the failure mode §6 warns about.
//! * `tunnel-flap` — three seed-jittered short outages, exercising
//!   repeated fallback/recovery cycles.
//! * `ra-suppress` — the router goes quiet on Router Advertisements
//!   during the addressing phase.
//! * `dns-servfail` — the upstream resolver answers SERVFAIL for every
//!   zone during the steady-state window.
//!
//! Every preset is deterministic for a fixed seed: serializing the
//! [`PresetReport`] from two identical runs yields byte-identical JSON
//! (CI's fault-matrix smoke job diffs exactly that).

use crate::config::NetworkConfig;
use crate::scenario;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use v6brick_core::analysis::PassId;
use v6brick_core::outage::OutageReport;
use v6brick_devices::profile::DeviceProfile;
use v6brick_devices::registry;
use v6brick_sim::event::SimTime;
use v6brick_sim::{DnsFaultMode, FaultPlan};

/// Every scenario preset name, in CLI listing order.
pub const PRESETS: &[&str] = &["broken-v6", "tunnel-flap", "ra-suppress", "dns-servfail"];

/// The device subset every preset runs: one representative per major
/// category, mixing devices that hold long-lived IPv6 sessions (and so
/// can demonstrably fall back) with v4-reliant and v4-only controls
/// that should classify as `unchanged`.
pub fn preset_profiles() -> Vec<DeviceProfile> {
    [
        "apple_tv",
        "google_home_mini",
        "homepod_mini",
        "nest_camera",
        "samsung_fridge",
        "ikea_gateway",
        "echo_show_5",
        "wyze_cam",
    ]
    .iter()
    .map(|id| registry::by_id(id))
    .collect()
}

/// The fault schedule for a named preset, or `None` for an unknown
/// name. `seed` only influences schedules that are defined as
/// seed-jittered (`tunnel-flap`); fixed windows ignore it so the
/// scenario timeline reads the same in every report.
pub fn preset_plan(preset: &str, seed: u64) -> Option<FaultPlan> {
    let s = SimTime::from_secs;
    match preset {
        "broken-v6" => Some(FaultPlan::new().tunnel_outage(s(90), s(270))),
        "tunnel-flap" => Some(FaultPlan::new().tunnel_flap(seed, s(80), s(100), s(40), 3)),
        "ra-suppress" => Some(FaultPlan::new().ra_suppression(s(60), s(210))),
        "dns-servfail" => {
            Some(FaultPlan::new().dns_fault(s(90), s(270), None, DnsFaultMode::Servfail))
        }
        _ => None,
    }
}

/// The serializable outcome of one preset run. Field order and
/// `BTreeMap` keying make the JSON byte-stable across identical runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PresetReport {
    /// Preset name.
    pub preset: String,
    /// Base seed the run used.
    pub seed: u64,
    /// Network configuration label (always dual-stack today).
    pub config: String,
    /// Simulated duration, seconds.
    pub duration_s: u64,
    /// LAN frames the capture tap saw.
    pub frames: u64,
    /// 6in4 tunnel packets the injected outage swallowed.
    pub tunnel_drops: u64,
    /// Functionality-test outcome per device id.
    pub functional: BTreeMap<String, bool>,
    /// Table 9-style switching verdicts.
    pub outage: OutageReport,
}

/// Run a named preset at `seed`. Returns `None` for an unknown preset.
pub fn run_preset(preset: &str, seed: u64) -> Option<PresetReport> {
    let plan = preset_plan(preset, seed)?;
    let profiles = preset_profiles();
    let duration = scenario::EXPERIMENT_DURATION;
    let faulted = scenario::run_faulted(
        NetworkConfig::DualStack,
        &profiles,
        seed,
        duration,
        &[PassId::Traffic],
        plan,
    );
    let mut outage = OutageReport::default();
    for p in &profiles {
        let switches = faulted.switches.get(&p.id).cloned().unwrap_or_default();
        outage.push_device(&p.id, p.category.label(), switches);
    }
    Some(PresetReport {
        preset: preset.to_string(),
        seed,
        config: faulted.run.config.label().to_string(),
        duration_s: duration.as_micros() / 1_000_000,
        frames: faulted.run.frames,
        tunnel_drops: faulted.tunnel_drops,
        functional: faulted.run.functional,
        outage,
    })
}

/// Human-readable preset summary (the non-`--json` CLI output).
pub fn render(report: &PresetReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Scenario {} (seed {:#x}, {} on {})",
        report.preset, report.seed, report.duration_s, report.config
    );
    let _ = writeln!(
        out,
        "Frames: {}  tunnel drops: {}",
        report.frames, report.tunnel_drops
    );
    let _ = writeln!(out, "\nSwitching verdicts:");
    for (label, n) in &report.outage.by_class {
        let _ = writeln!(out, "  {label:<26} {n}");
    }
    let _ = writeln!(out, "\nPer device:");
    for (id, d) in &report.outage.devices {
        let _ = writeln!(
            out,
            "  {id:<20} {:<12} {:<26} fell back {}x, recovered {}x",
            d.category,
            d.class.label(),
            d.fell_back,
            d.recovered
        );
        for s in &d.switches {
            let _ = writeln!(
                out,
                "      {:>5}s  {}  {}",
                s.at_us / 1_000_000,
                if s.to_v6 { "-> v6" } else { "-> v4" },
                s.domain
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6brick_core::outage::OutageClass;

    #[test]
    fn unknown_preset_is_rejected() {
        assert!(preset_plan("no-such-preset", 1).is_none());
        assert!(run_preset("no-such-preset", 1).is_none());
    }

    #[test]
    fn every_preset_has_a_plan() {
        for p in PRESETS {
            assert!(preset_plan(p, 7).is_some(), "{p} must resolve");
        }
    }

    /// Acceptance: under `broken-v6`, at least one device class
    /// demonstrably falls back v6->v4 *during* the injected outage and
    /// recovers to v6 after it clears.
    #[test]
    fn broken_v6_devices_fall_back_during_outage_and_recover_after() {
        let report = run_preset("broken-v6", 1).unwrap();
        assert!(
            report.tunnel_drops > 0,
            "outage must swallow tunnel packets"
        );
        assert!(report.outage.fell_back_count() >= 1, "{report:?}");
        assert!(report.outage.recovered_count() >= 1, "{report:?}");
        let outage_start = 90_000_000u64;
        let outage_end = 270_000_000u64;
        let witnessed = report.outage.devices.values().any(|d| {
            d.class == OutageClass::FellBackAndRecovered
                && d.switches
                    .iter()
                    .any(|s| !s.to_v6 && (outage_start..outage_end).contains(&s.at_us))
                && d.switches.iter().any(|s| s.to_v6 && s.at_us >= outage_end)
        });
        assert!(
            witnessed,
            "some device must fall back inside [90s,270s) and recover after: {:#?}",
            report.outage.devices
        );
        // The v4-only control never switches families.
        assert_eq!(
            report.outage.devices["wyze_cam"].class,
            OutageClass::Unchanged
        );
    }

    /// Acceptance: byte-identical JSON across two identical runs.
    #[test]
    fn broken_v6_report_is_byte_deterministic() {
        let a = serde_json::to_string(&run_preset("broken-v6", 2).unwrap()).unwrap();
        let b = serde_json::to_string(&run_preset("broken-v6", 2).unwrap()).unwrap();
        assert_eq!(a, b);
    }
}
