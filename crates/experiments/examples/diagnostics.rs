//! Diagnostic: run the full six-experiment suite and print the headline
//! counts against their paper targets.
use v6brick_experiments::suite::ExperimentSuite;
use v6brick_net::ipv6::{AddressKind, Ipv6AddrExt};

fn main() {
    let t = std::time::Instant::now();
    let suite = ExperimentSuite::run_all();
    println!("suite: {:?}", t.elapsed());

    let ids: Vec<String> = suite.device_ids().map(|s| s.to_string()).collect();
    let count = |f: &dyn Fn(&str) -> bool| ids.iter().filter(|id| f(id)).count();

    // Table 3 (IPv6-only union).
    println!("--- Table 3 (targets: ndp 59, addr 51, gua 27, aaaa6 22, pos 19, data 19, func 8)");
    println!(
        "ndp={} addr={} gua={} aaaa6={} pos={} data={} func={}",
        count(&|id| suite.v6only_observation(id).ndp_traffic),
        count(&|id| suite.v6only_observation(id).has_v6_addr()),
        count(&|id| suite
            .v6only_observation(id)
            .active_v6
            .iter()
            .any(|a| a.is_global_unicast())),
        count(&|id| !suite.v6only_observation(id).aaaa_q_v6.is_empty()),
        count(&|id| !suite.v6only_observation(id).aaaa_pos_v6.is_empty()),
        count(&|id| suite.v6only_observation(id).v6_internet_data()),
        count(&|id| suite.functional_v6only(id)),
    );

    // Table 5 (IPv6-only ∪ dual-stack).
    println!("--- Table 5 (targets: addr 54, stateful 12, gua 31, ula 23, lla 50, eui 31,");
    println!("    dns6 22, aonly 19, aaaa-any 37, aaaa-v4only 15, pos 31, stateless 16,");
    println!("    trans 29, internet 23, local 21)");
    let u = |id: &str| suite.v6_and_dual_observation(id);
    println!(
        "addr={} stateful={} gua={} ula={} lla={} eui={}",
        count(&|id| u(id).has_v6_addr()),
        count(&|id| u(id).dhcpv6_stateful),
        count(&|id| u(id).active_v6.iter().any(|a| a.is_global_unicast())),
        count(&|id| u(id).all_addrs().iter().any(|a| a.is_unique_local())),
        count(&|id| u(id).all_addrs().iter().any(|a| a.is_link_local())),
        count(&|id| {
            let o = u(id);
            o.all_addrs()
                .iter()
                .any(|a| a.is_link_local() && a.is_eui64())
                || o.active_v6
                    .iter()
                    .any(|a| !a.is_link_local() && a.is_eui64())
        }),
    );
    println!(
        "dns6={} aonly={} aaaa_any={} aaaa_v4only={} pos={} stateless={} trans={} internet={} local={}",
        count(&|id| u(id).dns_over_v6()),
        count(&|id| !u(id).a_only_v6_names().is_empty()),
        count(&|id| !u(id).aaaa_q_any().is_empty()),
        count(&|id| {
            let o = u(id);
            !o.aaaa_q_v4.is_empty() && o.aaaa_q_v4.difference(&o.aaaa_q_v6).next().is_some()
        }),
        count(&|id| !u(id).aaaa_pos_any().is_empty()),
        count(&|id| u(id).dhcpv6_stateless),
        count(&|id| u(id).v6_internet_bytes + u(id).v6_local_bytes > 0),
        count(&|id| u(id).v6_internet_data()),
        count(&|id| u(id).v6_local_bytes > 0),
    );

    // Fig. 5 funnel (targets: assign 33, use 15, dns 8, data 5).
    let assign = count(&|id| {
        u(id)
            .all_addrs()
            .iter()
            .any(|a| a.is_global_unicast() && a.is_eui64())
    });
    let use_any = count(&|id| {
        u(id)
            .active_v6
            .iter()
            .any(|a| a.is_global_unicast() && a.is_eui64())
    });
    let use_dns = count(&|id| {
        u(id)
            .dns_src_v6
            .iter()
            .any(|a| a.is_global_unicast() && a.is_eui64())
    });
    let use_data = count(&|id| {
        u(id)
            .data_src_v6
            .iter()
            .any(|a| a.is_global_unicast() && a.is_eui64())
    });
    println!("--- Fig 5 (targets 33/15/8/5): assign={assign} use={use_any} dns={use_dns} data={use_data}");

    // Table 4 deltas (dual minus v6only).
    println!("--- Table 4 deltas (targets: ndp -1, addr +2, gua +3, aaaa +15, pos +12, data +3)");
    let d = |f: &dyn Fn(&v6brick_core::DeviceObservation) -> bool| {
        let dual = ids
            .iter()
            .filter(|id| f(&suite.dual_observation(id)))
            .count() as i64;
        let v6 = ids
            .iter()
            .filter(|id| f(&suite.v6only_observation(id)))
            .count() as i64;
        dual - v6
    };
    println!(
        "ndp={:+} addr={:+} gua={:+} aaaa={:+} pos={:+} data={:+}",
        d(&|o| o.ndp_traffic),
        d(&|o| o.has_v6_addr()),
        d(&|o| o.active_v6.iter().any(|a| a.is_global_unicast())),
        d(&|o| !o.aaaa_q_any().is_empty()),
        d(&|o| !o.aaaa_pos_any().is_empty()),
        d(&|o| o.v6_internet_data()),
    );

    // Address counts (Table 6 targets: 684 addrs / 456 GUA / 169 ULA / 59 LLA).
    let mut tot = (0usize, 0usize, 0usize, 0usize);
    for id in &ids {
        let o = u(id);
        let addrs = o.all_addrs();
        tot.0 += addrs.len();
        tot.1 += addrs
            .iter()
            .filter(|a| a.kind() == AddressKind::Global)
            .count();
        tot.2 += addrs
            .iter()
            .filter(|a| a.kind() == AddressKind::UniqueLocal)
            .count();
        tot.3 += addrs
            .iter()
            .filter(|a| a.kind() == AddressKind::LinkLocal)
            .count();
    }
    println!("--- Table 6 addrs (targets 684/456/169/59): {tot:?}");

    // AAAA query-name counts (Table 6 targets: 1077 req / 114 a-only / 334 v4-only / 531 res).
    let mut q = (0usize, 0usize, 0usize, 0usize);
    for id in &ids {
        let o = u(id);
        q.0 += o.aaaa_q_any().len();
        q.1 += o.a_only_v6_names().len();
        q.2 += o.aaaa_q_v4.difference(&o.aaaa_q_v6).count();
        q.3 += o.aaaa_pos_any().len();
    }
    println!("--- Table 6 dns (targets 1077/114/334/531): {q:?}");

    // Fig 4: v6 fraction in dual-stack.
    println!("--- Fig 4 (3 devices >80%, nest hubs <20%)");
    let mut fracs: Vec<(String, f64)> = ids
        .iter()
        .map(|id| (id.clone(), suite.dual_observation(id).v6_volume_fraction()))
        .filter(|(_, f)| *f > 0.0)
        .collect();
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (id, f) in &fracs {
        println!("  {id:<22} {:.1}%", f * 100.0);
    }
}
