//! Benchmark harness crate. The actual benchmarks live in `benches/`:
//!
//! * `tables` — regenerates every paper table end-to-end (Criterion timing
//!   the full simulate-capture-analyze path per table);
//! * `figures` — same for every figure;
//! * `pipeline` — analysis-pipeline micro-benches (flow table, DNS
//!   transaction pairing, address classification);
//! * `wire` — parse/emit micro-benches for the wire formats;
//! * `ablations` — the design-choice ablations called out in DESIGN.md.
