//! Analysis-pipeline benchmarks: what it costs to turn a capture into
//! the paper's observations.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use v6brick_core::flows::FlowTable;
use v6brick_core::observe;
use v6brick_devices::registry;
use v6brick_devices::stack::IotDevice;
use v6brick_experiments::{scenario, NetworkConfig};
use v6brick_net::Mac;
use v6brick_pcap::stats::CaptureStats;
use v6brick_pcap::{format, Capture};
use v6brick_sim::{Internet, Router, SimTime, SimulationBuilder};

/// A realistic dual-stack capture from an 8-device household.
fn household_capture() -> (Capture, Vec<(Mac, String)>) {
    let ids = [
        "echo_show_5",
        "nest_camera",
        "google_home_mini",
        "aqara_hub",
        "homepod_mini",
        "apple_tv",
        "samsung_fridge",
        "hue_hub",
    ];
    let profiles: Vec<_> = ids.iter().map(|id| registry::by_id(id)).collect();
    let zones = scenario::build_zones(&profiles);
    let mut b = SimulationBuilder::new(
        Router::new(NetworkConfig::DualStack.router_config()),
        Internet::new(zones),
    );
    let macs: Vec<_> = profiles
        .iter()
        .map(|p| {
            b.add_host(Box::new(IotDevice::new(p.clone())));
            (p.mac, p.id.clone())
        })
        .collect();
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(240));
    (sim.take_capture(), macs)
}

fn bench_pipeline(c: &mut Criterion) {
    let (capture, macs) = household_capture();
    let bytes = capture.total_bytes();

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("analyze_household", |b| {
        b.iter(|| observe::analyze(black_box(&capture), &macs, scenario::lan_prefix()))
    });
    g.bench_function("streaming_analyze_household", |b| {
        b.iter(|| {
            let mut a = observe::StreamingAnalyzer::new(&macs, scenario::lan_prefix());
            for p in black_box(&capture).iter() {
                a.feed(p.timestamp_us, &p.data);
            }
            a.finish().frames
        })
    });
    g.bench_function("flow_table", |b| {
        b.iter(|| {
            let mut t = FlowTable::new();
            for (ts, p) in capture.parsed() {
                t.record(ts, &p);
            }
            t.len()
        })
    });
    g.bench_function("capture_stats", |b| {
        b.iter(|| CaptureStats::of(black_box(&capture)))
    });
    g.finish();

    let mut g = c.benchmark_group("pcap_io");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("write", |b| {
        b.iter(|| format::to_bytes(black_box(&capture)))
    });
    let on_disk = format::to_bytes(&capture);
    g.bench_function("read", |b| {
        b.iter(|| format::from_bytes(black_box(&on_disk)).unwrap())
    });
    g.finish();

    // The full simulate-and-capture path for one experiment config.
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    g.bench_function("household_dual_stack_240s", |b| {
        b.iter(|| {
            let ids = ["echo_show_5", "nest_camera", "google_home_mini"];
            let profiles: Vec<_> = ids.iter().map(|id| registry::by_id(id)).collect();
            let run = scenario::run_with_profiles(NetworkConfig::DualStack, &profiles);
            black_box(run.frames)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
