//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! 1. Flow table: hash-indexed 5-tuple map vs a linear-scan vector.
//! 2. DNS name encoding: RFC 1035 compression vs naive repetition
//!    (size and time on a response with repeated owner names).
//! 3. Capture storage: `bytes::Bytes` per-frame copies vs `Vec<u8>`
//!    per-frame allocations vs a contiguous arena with ranges; plus
//!    the pre-counted `Capture::with_capacity` vs growth reallocation.
//! 4. Analysis pipeline: buffer-then-scan (`Capture` + `analyze`) vs
//!    the streaming single pass (`StreamingAnalyzer::feed` off the tap).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv6Addr};
use v6brick_core::flows::{FlowKey, FlowProto, FlowTable};
use v6brick_net::dns::{Message, Name, Rcode, Rdata, Record, RecordType};

// --- ablation 1: flow table ---------------------------------------------------

/// The naive alternative: an unsorted vector scanned per packet.
struct LinearFlows {
    flows: Vec<(FlowKey, u64)>,
}

impl LinearFlows {
    fn record(&mut self, key: FlowKey, bytes: u64) {
        for (k, b) in self.flows.iter_mut() {
            if *k == key {
                *b += bytes;
                return;
            }
        }
        self.flows.push((key, bytes));
    }
}

fn synth_keys(n_flows: usize, packets: usize) -> Vec<(FlowKey, u64)> {
    (0..packets)
        .map(|i| {
            let f = i % n_flows;
            let a = Ipv6Addr::new(0x2001, 0xdb8, 0x10, 1, 0, 0, 0, (f % 64) as u16 + 1);
            let b = Ipv6Addr::new(0x2001, 0xdb8, 0xffff, 0, 0, 0, 0, (f / 64) as u16 + 1);
            (
                FlowKey::new(
                    (IpAddr::V6(a), 40000 + (f % 100) as u16),
                    (IpAddr::V6(b), 443),
                    FlowProto::Tcp,
                ),
                (i % 1400) as u64,
            )
        })
        .collect()
}

fn bench_flow_ablation(c: &mut Criterion) {
    for n_flows in [64usize, 1024] {
        let packets = synth_keys(n_flows, 50_000);
        let mut g = c.benchmark_group(format!("ablation_flows/{n_flows}_flows_50k_pkts"));
        g.sample_size(20);
        g.throughput(Throughput::Elements(50_000));
        g.bench_function("hash_indexed", |b| {
            b.iter(|| {
                let mut t: HashMap<FlowKey, u64> = HashMap::new();
                for (k, bytes) in &packets {
                    *t.entry(*k).or_insert(0) += bytes;
                }
                t.len()
            })
        });
        g.bench_function("linear_scan", |b| {
            b.iter(|| {
                let mut t = LinearFlows { flows: Vec::new() };
                for (k, bytes) in &packets {
                    t.record(*k, *bytes);
                }
                t.flows.len()
            })
        });
        g.finish();
    }

    // The production FlowTable on real parsed frames (end-to-end anchor).
    let frames: Vec<v6brick_net::parse::ParsedPacket> = (0..10_000)
        .map(|i| {
            use v6brick_net::udp::PseudoHeader;
            let src = Ipv6Addr::new(0x2001, 0xdb8, 0x10, 1, 0, 0, 0, (i % 64) as u16 + 1);
            let dst = Ipv6Addr::new(0x2001, 0xdb8, 0xffff, 0, 0, 0, 0, 1);
            let u = v6brick_net::udp::Repr {
                src_port: 40000 + (i % 100) as u16,
                dst_port: 443,
                payload: vec![0; 64],
            }
            .build(PseudoHeader::V6 { src, dst });
            let ip = v6brick_net::ipv6::Repr {
                src,
                dst,
                next_header: v6brick_net::ipv4::Protocol::Udp,
                hop_limit: 64,
                payload_len: u.len(),
            }
            .build(&u);
            let f = v6brick_net::ethernet::Repr {
                src: v6brick_net::Mac::new(2, 0, 0, 0, 0, 1),
                dst: v6brick_net::Mac::new(2, 0, 0, 0, 0, 2),
                ethertype: v6brick_net::ethernet::EtherType::Ipv6,
            }
            .build(&ip);
            v6brick_net::parse::ParsedPacket::parse(&f).unwrap()
        })
        .collect();
    let mut g = c.benchmark_group("ablation_flows/production_table");
    g.sample_size(20);
    g.throughput(Throughput::Elements(frames.len() as u64));
    g.bench_function("flowtable_record_10k", |b| {
        b.iter(|| {
            let mut t = FlowTable::new();
            for (i, p) in frames.iter().enumerate() {
                t.record(i as u64, p);
            }
            t.len()
        })
    });
    g.finish();
}

// --- ablation 2: DNS name compression ------------------------------------------

/// Build the same response without compression (naive repetition).
fn build_uncompressed(msg: &Message) -> Vec<u8> {
    fn write_name(out: &mut Vec<u8>, name: &Name) {
        for label in name.labels() {
            out.push(label.len() as u8);
            out.extend_from_slice(label.as_bytes());
        }
        out.push(0);
    }
    let mut out = Vec::with_capacity(512);
    out.extend_from_slice(&msg.id.to_be_bytes());
    out.extend_from_slice(&[0x81, 0x80]); // response, RD+RA
    for count in [msg.questions.len(), msg.answers.len(), 0, 0] {
        out.extend_from_slice(&(count as u16).to_be_bytes());
    }
    for q in &msg.questions {
        write_name(&mut out, &q.name);
        out.extend_from_slice(&u16::from(q.rtype).to_be_bytes());
        out.extend_from_slice(&1u16.to_be_bytes());
    }
    for r in &msg.answers {
        write_name(&mut out, &r.name);
        out.extend_from_slice(&u16::from(r.rtype).to_be_bytes());
        out.extend_from_slice(&1u16.to_be_bytes());
        out.extend_from_slice(&r.ttl.to_be_bytes());
        if let Rdata::Aaaa(a) = &r.rdata {
            out.extend_from_slice(&16u16.to_be_bytes());
            out.extend_from_slice(&a.octets());
        }
    }
    out
}

fn bench_dns_ablation(c: &mut Criterion) {
    let name = Name::new("very-long-service-name.telemetry.us-east.vendor-cloud.example").unwrap();
    let q = Message::query(1, name.clone(), RecordType::Aaaa);
    let mut resp = q.response(Rcode::NoError);
    for i in 0..8u16 {
        resp.answers.push(Record::new(
            name.clone(),
            300,
            Rdata::Aaaa(Ipv6Addr::new(0x2001, 0xdb8, i, 0, 0, 0, 0, 1)),
        ));
    }
    let compressed = resp.build();
    let naive = build_uncompressed(&resp);
    assert!(compressed.len() < naive.len());
    println!(
        "dns encoding: compressed {} bytes vs naive {} bytes ({}% smaller)",
        compressed.len(),
        naive.len(),
        100 - 100 * compressed.len() / naive.len()
    );

    let mut g = c.benchmark_group("ablation_dns_encoding");
    g.bench_function("compressed_build", |b| b.iter(|| black_box(&resp).build()));
    g.bench_function("naive_build", |b| {
        b.iter(|| build_uncompressed(black_box(&resp)))
    });
    g.bench_function("compressed_parse", |b| {
        b.iter(|| Message::parse_bytes(black_box(&compressed)).unwrap())
    });
    g.finish();
}

// --- ablation 3: capture storage -----------------------------------------------

fn bench_capture_ablation(c: &mut Criterion) {
    let frames: Vec<Vec<u8>> = (0..10_000)
        .map(|i| vec![(i % 251) as u8; 80 + (i % 600)])
        .collect();
    let total: usize = frames.iter().map(Vec::len).sum();

    let mut g = c.benchmark_group("ablation_capture_storage");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(total as u64));
    g.bench_function("bytes_per_frame", |b| {
        b.iter(|| {
            let mut store: Vec<bytes::Bytes> = Vec::with_capacity(frames.len());
            for f in &frames {
                store.push(bytes::Bytes::copy_from_slice(f));
            }
            store.len()
        })
    });
    g.bench_function("vec_per_frame", |b| {
        b.iter(|| {
            let mut store: Vec<Vec<u8>> = Vec::with_capacity(frames.len());
            for f in &frames {
                store.push(f.clone());
            }
            store.len()
        })
    });
    g.bench_function("contiguous_arena", |b| {
        b.iter(|| {
            let mut arena: Vec<u8> = Vec::with_capacity(total);
            let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(frames.len());
            for f in &frames {
                let start = arena.len() as u32;
                arena.extend_from_slice(f);
                ranges.push((start, f.len() as u32));
            }
            ranges.len()
        })
    });
    // The delta the pcap readers' pre-scan buys: they count frames from
    // the record headers first, so the packet vector never reallocates.
    g.bench_function("capture_push_grow", |b| {
        b.iter(|| {
            let mut cap = v6brick_pcap::Capture::new();
            for (ts, f) in frames.iter().enumerate() {
                cap.push(ts as u64, f);
            }
            cap.len()
        })
    });
    g.bench_function("capture_push_with_capacity", |b| {
        b.iter(|| {
            let mut cap = v6brick_pcap::Capture::with_capacity(frames.len());
            for (ts, f) in frames.iter().enumerate() {
                cap.push(ts as u64, f);
            }
            cap.len()
        })
    });
    g.finish();
}

// --- ablation 4: streaming vs buffered analysis ---------------------------------

/// What a household's analysis costs with and without materializing the
/// capture buffer. Both paths parse every frame exactly once; the
/// buffered path additionally copies every frame into the `Capture`
/// and walks it a second time. DESIGN.md §4 cites this group.
fn bench_streaming_ablation(c: &mut Criterion) {
    use v6brick_core::observe::{self, StreamingAnalyzer};
    use v6brick_devices::registry;
    use v6brick_devices::stack::IotDevice;
    use v6brick_experiments::{scenario, NetworkConfig};
    use v6brick_sim::{Internet, Router, SimTime, SimulationBuilder};

    let ids = [
        "echo_show_5",
        "nest_camera",
        "google_home_mini",
        "aqara_hub",
    ];
    let profiles: Vec<_> = ids.iter().map(|id| registry::by_id(id)).collect();
    let zones = scenario::build_zones(&profiles);
    let mut b = SimulationBuilder::new(
        Router::new(NetworkConfig::DualStack.router_config()),
        Internet::new(zones),
    );
    let macs: Vec<_> = profiles
        .iter()
        .map(|p| {
            b.add_host(Box::new(IotDevice::new(p.clone())));
            (p.mac, p.id.clone())
        })
        .collect();
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(180));
    let capture = sim.take_capture();
    // The tap replay: the exact (timestamp, frame) stream a sink sees.
    let frames: Vec<(u64, Vec<u8>)> = capture
        .iter()
        .map(|p| (p.timestamp_us, p.data.to_vec()))
        .collect();

    let mut g = c.benchmark_group("ablation_streaming");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(capture.total_bytes()));
    g.bench_function("buffer_then_scan", |b| {
        b.iter(|| {
            let mut cap = v6brick_pcap::Capture::with_capacity(frames.len());
            for (ts, f) in &frames {
                cap.push(*ts, f);
            }
            observe::analyze(&cap, &macs, scenario::lan_prefix()).frames
        })
    });
    g.bench_function("streaming_single_pass", |b| {
        b.iter(|| {
            let mut a = StreamingAnalyzer::new(&macs, scenario::lan_prefix());
            for (ts, f) in &frames {
                a.feed(*ts, f);
            }
            a.finish().frames
        })
    });
    g.finish();
}

// --- ablation 5: full vs selected analyzer pass sets -------------------------

/// What composable passes buy over the monolithic fold: callers that
/// read a known subset of the analysis run only the passes owning those
/// fields. Two levels: a single-household replay through the analyzer
/// (isolates per-frame pass cost) and a whole fleet campaign with the
/// population subset vs every pass (the production saving — the
/// population report never reads the EUI-64 or flow-table fields).
/// DESIGN.md §4 cites this group.
fn bench_ablation_passes(c: &mut Criterion) {
    use v6brick_core::analysis::PassId;
    use v6brick_core::observe::StreamingAnalyzer;
    use v6brick_devices::registry;
    use v6brick_devices::stack::IotDevice;
    use v6brick_experiments::fleet::{self, CampaignSpec, POPULATION_PASSES};
    use v6brick_experiments::{scenario, NetworkConfig};
    use v6brick_sim::{Internet, Router, SimTime, SimulationBuilder};

    let ids = [
        "echo_show_5",
        "nest_camera",
        "google_home_mini",
        "aqara_hub",
    ];
    let profiles: Vec<_> = ids.iter().map(|id| registry::by_id(id)).collect();
    let zones = scenario::build_zones(&profiles);
    let mut b = SimulationBuilder::new(
        Router::new(NetworkConfig::DualStack.router_config()),
        Internet::new(zones),
    );
    let macs: Vec<_> = profiles
        .iter()
        .map(|p| {
            b.add_host(Box::new(IotDevice::new(p.clone())));
            (p.mac, p.id.clone())
        })
        .collect();
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(180));
    let capture = sim.take_capture();
    let frames: Vec<(u64, Vec<u8>)> = capture
        .iter()
        .map(|p| (p.timestamp_us, p.data.to_vec()))
        .collect();

    let mut g = c.benchmark_group("ablation_passes/analyzer");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(capture.total_bytes()));
    let selections: [(&str, &[PassId]); 3] = [
        ("full", &PassId::ALL),
        ("population", POPULATION_PASSES),
        ("addressing_only", &[PassId::Addressing]),
    ];
    for (label, passes) in selections {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut a = StreamingAnalyzer::with_passes(&macs, scenario::lan_prefix(), passes);
                for (ts, f) in &frames {
                    a.feed(*ts, f);
                }
                black_box(a.finish().frames)
            })
        });
    }
    g.finish();

    // Whole campaigns: the simulation dominates, so this measures the
    // end-to-end saving a fleet run actually sees.
    let spec = |passes: &[PassId]| CampaignSpec {
        homes: 4,
        seed: 0xab1a,
        workers: 1,
        device_range: (2, 3),
        duration_s: 45,
        passes: passes.to_vec(),
        ..Default::default()
    };
    let mut g = c.benchmark_group("ablation_passes/fleet");
    g.sample_size(10);
    g.bench_function("full_pass_set", |b| {
        b.iter(|| black_box(fleet::run(&spec(&PassId::ALL)).devices))
    });
    g.bench_function("population_pass_set", |b| {
        b.iter(|| black_box(fleet::run(&spec(POPULATION_PASSES)).devices))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_flow_ablation,
    bench_dns_ablation,
    bench_capture_ablation,
    bench_streaming_ablation,
    bench_ablation_passes
);
criterion_main!(benches);
