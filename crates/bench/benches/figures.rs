//! One benchmark per paper figure, plus the two active experiments
//! (DNS AAAA probing and the port scan).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;
use v6brick_devices::registry;
use v6brick_experiments::portscan::{scan, ScanPlan};
use v6brick_experiments::suite::ExperimentSuite;
use v6brick_experiments::{active_dns, figures, scenario, tracking};

fn suite() -> &'static ExperimentSuite {
    static SUITE: OnceLock<ExperimentSuite> = OnceLock::new();
    SUITE.get_or_init(ExperimentSuite::run_all)
}

fn bench_figures(c: &mut Criterion) {
    let s = suite();
    let mut g = c.benchmark_group("figures");
    g.sample_size(20);
    g.bench_function("figure2", |b| b.iter(|| black_box(figures::figure2(s))));
    g.bench_function("figure3", |b| b.iter(|| black_box(figures::figure3(s))));
    g.bench_function("figure4", |b| b.iter(|| black_box(figures::figure4(s))));
    g.bench_function("figure5", |b| b.iter(|| black_box(figures::figure5(s))));
    g.bench_function("tracking_5_4_3", |b| {
        b.iter(|| black_box(tracking::tracking_report(s)))
    });
    g.finish();

    let mut g = c.benchmark_group("active_experiments");
    g.sample_size(10);
    g.bench_function("dns_probe_all_observed_domains", |b| {
        b.iter(|| {
            let zones = scenario::build_zones(&s.profiles);
            black_box(active_dns::probe(s.observed_domains(), zones).names.len())
        })
    });
    g.bench_function("portscan_fridge_quick", |b| {
        let profiles = vec![registry::by_id("samsung_fridge")];
        b.iter(|| black_box(scan(&profiles, &ScanPlan::quick()).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
