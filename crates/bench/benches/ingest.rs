//! `v6brickd` ingestion throughput: a fixed 16-home campaign replayed
//! at an in-process server over 1, 4, 16, and 256 concurrent clients.
//! The interesting read-outs are uploads/sec scaling with client count
//! (event-loop shards + lock striping; connections far outnumber
//! threads at the 256 tier) and frames/sec through the streaming
//! decode+analysis path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use v6brick_experiments::fleet::CampaignSpec;
use v6brick_experiments::serve::campaign_bundles;
use v6brick_ingest::{loadgen, spawn, ServerConfig, UploadBundle};

const HOMES: u64 = 16;
const SEED: u64 = 0x1963;

/// Simulate and package the campaign once; every measured iteration
/// replays these identical bundles.
fn bundles() -> Vec<UploadBundle> {
    campaign_bundles(&CampaignSpec {
        homes: HOMES,
        seed: SEED,
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        device_range: (2, 4),
        duration_s: 60,
        ..Default::default()
    })
}

/// One full replay: fresh server, `clients` concurrent connections,
/// drain. Returns total frames acknowledged (also asserts nothing
/// failed — a bench that silently drops uploads measures nothing).
fn replay(bundles: &[UploadBundle], clients: usize) -> u64 {
    let handle = spawn(ServerConfig {
        campaign_seed: SEED,
        shards: 8,
        ..Default::default()
    })
    .expect("server binds an ephemeral port");
    let addr = handle.addr().to_string();
    let load = loadgen::run(&addr, bundles, clients, SEED).expect("load generator runs");
    assert_eq!(load.failures(), 0, "bench replay dropped uploads");
    handle.shutdown();
    handle.join();
    load.frames()
}

fn bench_uploads(c: &mut Criterion) {
    let bundles = bundles();
    let mut g = c.benchmark_group("ingest");
    g.sample_size(10);
    g.throughput(Throughput::Elements(HOMES));
    for clients in [1usize, 4, 16, 256] {
        g.bench_function(format!("upload_16_homes/clients_{clients}"), |b| {
            b.iter(|| black_box(replay(&bundles, clients)))
        });
    }
    g.finish();
}

fn bench_frames(c: &mut Criterion) {
    let bundles = bundles();
    // Frame count is a property of the campaign, not of the client
    // split; one warm replay pins the throughput denominator.
    let frames = replay(&bundles, 1);
    let mut g = c.benchmark_group("ingest_frames");
    g.sample_size(10);
    g.throughput(Throughput::Elements(frames));
    for clients in [1usize, 4, 16] {
        g.bench_function(format!("stream_analyze/clients_{clients}"), |b| {
            b.iter(|| {
                let fed = replay(&bundles, clients);
                assert_eq!(fed, frames, "frame count drifted between replays");
                black_box(fed)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_uploads, bench_frames);
criterion_main!(benches);
