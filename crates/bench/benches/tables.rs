//! One benchmark per paper table: each measures the cost of regenerating
//! that table's rows from the (cached) six-experiment suite, plus one
//! end-to-end benchmark of running a full 93-device experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;
use v6brick_experiments::suite::ExperimentSuite;
use v6brick_experiments::{active_dns, config, scenario, tables, NetworkConfig};

fn suite() -> &'static ExperimentSuite {
    static SUITE: OnceLock<ExperimentSuite> = OnceLock::new();
    SUITE.get_or_init(ExperimentSuite::run_all)
}

fn active() -> &'static active_dns::ActiveDnsReport {
    static R: OnceLock<active_dns::ActiveDnsReport> = OnceLock::new();
    R.get_or_init(|| {
        let s = suite();
        let zones = scenario::build_zones(&s.profiles);
        active_dns::probe(s.observed_domains(), zones)
    })
}

fn bench_tables(c: &mut Criterion) {
    // End-to-end: one full 93-device IPv6-only experiment, simulated,
    // captured, and analyzed.
    let mut g = c.benchmark_group("experiment");
    g.sample_size(10);
    g.bench_function("ipv6_only_full_testbed", |b| {
        b.iter(|| black_box(scenario::run(NetworkConfig::Ipv6Only)).frames)
    });
    g.finish();

    let s = suite();
    let a = active();
    let mut g = c.benchmark_group("tables");
    // The generators remerge per-device observations; 20 samples keep the
    // full-workspace bench run to minutes.
    g.sample_size(20);
    g.bench_function("table2", |b| b.iter(|| black_box(config::table2())));
    g.bench_function("table3", |b| b.iter(|| black_box(tables::table3(s))));
    g.bench_function("table4", |b| b.iter(|| black_box(tables::table4(s))));
    g.bench_function("table5", |b| b.iter(|| black_box(tables::table5(s))));
    g.bench_function("table6", |b| b.iter(|| black_box(tables::table6(s))));
    g.bench_function("table7", |b| b.iter(|| black_box(tables::table7(s, a))));
    g.bench_function("table8", |b| b.iter(|| black_box(tables::table8(s))));
    g.bench_function("table9", |b| b.iter(|| black_box(tables::table9(s, a))));
    g.bench_function("table10", |b| b.iter(|| black_box(tables::table10(s))));
    g.bench_function("table12", |b| b.iter(|| black_box(tables::table12(s))));
    g.bench_function("table13", |b| b.iter(|| black_box(tables::table13(s))));
    g.bench_function("dad_report", |b| {
        b.iter(|| black_box(tables::dad_report(s)))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
