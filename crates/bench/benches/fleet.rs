//! Fleet campaign throughput: homes simulated per second as a function
//! of worker count. The interesting read-out is the 1 → 4 worker
//! scaling of the crossbeam pool, not the absolute numbers.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use v6brick_experiments::config::NetworkConfig;
use v6brick_experiments::fleet::{self, CampaignSpec};

/// A campaign small enough to iterate: 8 homes of 2-4 devices with a
/// 60 s virtual window — enough traffic for the report to be non-trivial
/// without each iteration taking minutes.
fn spec(workers: usize) -> CampaignSpec {
    CampaignSpec {
        homes: 8,
        seed: 0xf1ee7,
        workers,
        device_range: (2, 4),
        mix: NetworkConfig::ALL.iter().map(|c| (*c, 1)).collect(),
        duration_s: 60,
        ..Default::default()
    }
}

fn bench_fleet(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);
    for workers in [1usize, 2, 4] {
        let spec = spec(workers);
        g.throughput(Throughput::Elements(spec.homes));
        g.bench_function(format!("campaign_8_homes/workers_{workers}"), |b| {
            b.iter(|| black_box(fleet::run(&spec)))
        });
    }
    g.finish();
}

fn bench_planning(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_plan");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1024));
    // Planning alone (seed derivation + registry subsampling), no
    // simulation: this is the per-home fixed cost of the campaign.
    g.bench_function("plan_1024_homes", |b| {
        let mix: Vec<(NetworkConfig, u32)> = NetworkConfig::ALL.iter().map(|c| (*c, 1)).collect();
        b.iter(|| black_box(v6brick_fleet::plan_homes(42, 1024, &mix, 3..=12)))
    });
    g.finish();
}

criterion_group!(benches, bench_fleet, bench_planning);
criterion_main!(benches);
