//! Wire-format micro-benchmarks: the per-packet costs the whole pipeline
//! is built on.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::net::Ipv6Addr;
use v6brick_net::dns::{Message, Name, Rcode, Rdata, Record, RecordType};
use v6brick_net::ipv4::Protocol;
use v6brick_net::parse::ParsedPacket;
use v6brick_net::udp::PseudoHeader;
use v6brick_net::{checksum, ethernet, ipv6, tls, udp, Mac};

fn sample_frame() -> Vec<u8> {
    let src: Ipv6Addr = "2001:db8:10:1::10".parse().unwrap();
    let dst: Ipv6Addr = "2001:4860:4860::8888".parse().unwrap();
    let u = udp::Repr {
        src_port: 40001,
        dst_port: 53,
        payload: Message::query(7, Name::new("svc3.acme.example").unwrap(), RecordType::Aaaa)
            .build(),
    }
    .build(PseudoHeader::V6 { src, dst });
    let ip = ipv6::Repr {
        src,
        dst,
        next_header: Protocol::Udp,
        hop_limit: 64,
        payload_len: u.len(),
    }
    .build(&u);
    ethernet::Repr {
        src: Mac::new(2, 0, 0, 0, 0, 1),
        dst: Mac::new(2, 0, 0, 0, 0, 2),
        ethertype: ethernet::EtherType::Ipv6,
    }
    .build(&ip)
}

fn sample_response() -> Vec<u8> {
    let name = Name::new("edge7.cdn.acme.example").unwrap();
    let q = Message::query(9, name.clone(), RecordType::Aaaa);
    let mut r = q.response(Rcode::NoError);
    for i in 0..4u16 {
        r.answers.push(Record::new(
            name.clone(),
            300,
            Rdata::Aaaa(Ipv6Addr::new(0x2001, 0xdb8, 0xffff, i, 0, 0, 0, 1)),
        ));
    }
    r.build()
}

fn bench_wire(c: &mut Criterion) {
    let frame = sample_frame();
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Bytes(frame.len() as u64));
    g.bench_function("parse_full_stack", |b| {
        b.iter(|| ParsedPacket::parse(black_box(&frame)).unwrap())
    });
    g.finish();

    let resp = sample_response();
    let mut g = c.benchmark_group("dns");
    g.bench_function("parse_response", |b| {
        b.iter(|| Message::parse_bytes(black_box(&resp)).unwrap())
    });
    let msg = Message::parse_bytes(&resp).unwrap();
    g.bench_function("build_response_compressed", |b| {
        b.iter(|| black_box(&msg).build())
    });
    g.finish();

    let mut g = c.benchmark_group("tls");
    let name = Name::new("unagi-na.amazon.com").unwrap();
    g.bench_function("client_hello_1k", |b| {
        b.iter(|| tls::client_hello(black_box(&name), 1024))
    });
    let hello = tls::client_hello(&name, 1024);
    g.bench_function("parse_sni", |b| {
        b.iter(|| tls::parse_sni(black_box(&hello)).unwrap())
    });
    g.finish();

    let payload = vec![0xa5u8; 1460];
    let mut g = c.benchmark_group("checksum");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("rfc1071_1460B", |b| {
        b.iter(|| checksum::checksum(black_box(&payload)))
    });
    g.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
