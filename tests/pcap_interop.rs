//! The pipeline is pure pcap analysis: serializing an experiment capture
//! to the tcpdump on-disk format and re-loading it must yield identical
//! measurements.

use v6brick::core::observe;
use v6brick::devices::registry;
use v6brick::devices::stack::IotDevice;
use v6brick::experiments::{scenario, NetworkConfig};
use v6brick::pcap::format;
use v6brick::pcap::stats::CaptureStats;
use v6brick::sim::{Internet, Router, SimTime, SimulationBuilder};

fn household() -> (v6brick::pcap::Capture, Vec<(v6brick::net::Mac, String)>) {
    // HomePod included for its stateless DHCPv6 support.
    let ids = [
        "echo_show_5",
        "nest_camera",
        "google_home_mini",
        "aqara_hub",
        "homepod_mini",
    ];
    let profiles: Vec<_> = ids.iter().map(|id| registry::by_id(id)).collect();
    let zones = scenario::build_zones(&profiles);
    let mut b = SimulationBuilder::new(
        Router::new(NetworkConfig::DualStack.router_config()),
        Internet::new(zones),
    );
    let macs: Vec<_> = profiles
        .iter()
        .map(|p| {
            b.add_host(Box::new(IotDevice::new(p.clone())));
            (p.mac, p.id.clone())
        })
        .collect();
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(120));
    (sim.take_capture(), macs)
}

#[test]
fn analysis_survives_pcap_roundtrip() {
    let (capture, macs) = household();
    assert!(capture.len() > 500, "capture too small: {}", capture.len());

    let bytes = format::to_bytes(&capture);
    let reloaded = format::from_bytes(&bytes).expect("valid pcap");
    assert_eq!(reloaded, capture);

    let a1 = observe::analyze(&capture, &macs, scenario::lan_prefix());
    let a2 = observe::analyze(&reloaded, &macs, scenario::lan_prefix());
    let s1 = serde_json::to_string(&a1.devices).unwrap();
    let s2 = serde_json::to_string(&a2.devices).unwrap();
    assert_eq!(s1, s2, "identical measurements from the on-disk format");
}

#[test]
fn capture_statistics_are_plausible() {
    let (capture, _) = household();
    let stats = CaptureStats::of(&capture);
    assert_eq!(stats.frames, capture.len() as u64);
    assert!(stats.ipv6_frames > 0, "dual-stack must carry v6 frames");
    assert!(stats.ipv4_frames > 0);
    assert!(stats.arp_frames > 0, "v4 needs ARP resolution");
    assert!(stats.dns_frames > 0);
    assert!(stats.dhcpv4_frames > 0);
    assert!(
        stats.dhcpv6_frames > 0,
        "stateless DHCPv6 runs in dual-stack"
    );
    assert!(stats.icmpv6_frames > 0, "NDP is ICMPv6");
    assert!(stats.tcp_frames > stats.udp_frames, "telemetry dominates");
    // Every frame decodes at least to L3 (no junk on our wire).
    assert_eq!(stats.undecoded_frames, 0);
}

#[test]
fn filters_select_expected_traffic() {
    use v6brick::net::ipv4::Protocol;
    use v6brick::pcap::filter::{Filter, IpVersion};
    let (capture, macs) = household();

    let dns6 = Filter::new()
        .ip_version(IpVersion::V6)
        .protocol(Protocol::Udp)
        .port(53);
    let dns6_count = capture.parsed().filter(|(_, p)| dns6.matches(p)).count();
    assert!(dns6_count > 0, "v6 DNS present in dual-stack");

    // Per-device attribution: the Echo's MAC appears as a source.
    let echo_mac = macs.iter().find(|(_, id)| id == "echo_show_5").unwrap().0;
    let from_echo = Filter::new().src_mac(echo_mac);
    assert!(capture.parsed().any(|(_, p)| from_echo.matches(&p)));

    // An Aqara hub never talks DNS over v6.
    let aqara_mac = macs.iter().find(|(_, id)| id == "aqara_hub").unwrap().0;
    let aqara_dns6 = Filter::new()
        .ip_version(IpVersion::V6)
        .port(53)
        .src_mac(aqara_mac);
    assert_eq!(
        capture
            .parsed()
            .filter(|(_, p)| aqara_dns6.matches(p))
            .count(),
        0
    );
}
