//! The pipeline is pure pcap analysis: serializing an experiment capture
//! to the tcpdump on-disk format and re-loading it must yield identical
//! measurements.

use v6brick::core::observe;
use v6brick::devices::registry;
use v6brick::devices::stack::IotDevice;
use v6brick::experiments::{scenario, NetworkConfig};
use v6brick::pcap::format;
use v6brick::pcap::stats::CaptureStats;
use v6brick::sim::{BorderRouter, Host, Internet, Router, SimTime, SimulationBuilder};

fn household() -> (v6brick::pcap::Capture, Vec<(v6brick::net::Mac, String)>) {
    // HomePod included for its stateless DHCPv6 support.
    let ids = [
        "echo_show_5",
        "nest_camera",
        "google_home_mini",
        "aqara_hub",
        "homepod_mini",
    ];
    let profiles: Vec<_> = ids.iter().map(|id| registry::by_id(id)).collect();
    let zones = scenario::build_zones(&profiles);
    let mut b = SimulationBuilder::new(
        Router::new(NetworkConfig::DualStack.router_config()),
        Internet::new(zones),
    );
    let macs: Vec<_> = profiles
        .iter()
        .map(|p| {
            b.add_host(Box::new(IotDevice::new(p.clone())));
            (p.mac, p.id.clone())
        })
        .collect();
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(120));
    (sim.take_capture(), macs)
}

#[test]
fn analysis_survives_pcap_roundtrip() {
    let (capture, macs) = household();
    assert!(capture.len() > 500, "capture too small: {}", capture.len());

    let bytes = format::to_bytes(&capture);
    let reloaded = format::from_bytes(&bytes).expect("valid pcap");
    assert_eq!(reloaded, capture);

    let a1 = observe::analyze(&capture, &macs, scenario::lan_prefix());
    let a2 = observe::analyze(&reloaded, &macs, scenario::lan_prefix());
    let s1 = serde_json::to_string(&a1.devices).unwrap();
    let s2 = serde_json::to_string(&a2.devices).unwrap();
    assert_eq!(s1, s2, "identical measurements from the on-disk format");
}

/// A small meshed household: two v6-chatty devices behind a 6LoWPAN
/// border router, returning the 802.15.4 *mesh-side* capture.
fn mesh_household() -> v6brick::pcap::Capture {
    let ids = ["google_home_mini", "echo_show_5"];
    let profiles: Vec<_> = ids.iter().map(|id| registry::by_id(id)).collect();
    let zones = scenario::build_zones(&profiles);
    let mut b = SimulationBuilder::new(
        Router::new(NetworkConfig::Ipv6Only.router_config()),
        Internet::new(zones),
    );
    let leaves: Vec<Box<dyn Host>> = profiles
        .iter()
        .map(|p| Box::new(IotDevice::new(p.clone())) as Box<dyn Host>)
        .collect();
    let br = b.add_host(Box::new(BorderRouter::new(0x6e53, leaves)));
    let mut sim = b.seed(0x6e53).build();
    sim.run_until(SimTime::from_secs(90));
    sim.host_mut(br)
        .as_any_mut()
        .downcast_mut::<BorderRouter>()
        .expect("host is the border router")
        .take_mesh_capture()
}

/// The mesh capture is 802.15.4 frames, not Ethernet — it must survive
/// the pcapng container under `LINKTYPE_IEEE802_15_4_NOFCS`, stream back
/// through the incremental decoder byte for byte, and still yield the
/// same leaf-address bindings the attribution phase depends on.
#[test]
fn mesh_capture_survives_pcapng_and_streaming() {
    use v6brick::core::bindings_from_mesh_capture;
    use v6brick::pcap::pcapng;
    use v6brick::pcap::stream::StreamDecoder;

    let capture = mesh_household();
    assert!(
        capture.len() > 50,
        "mesh capture too small: {}",
        capture.len()
    );

    let bytes = pcapng::to_bytes_with_linktype(&capture, pcapng::LINKTYPE_IEEE802_15_4_NOFCS);
    let reloaded = pcapng::from_bytes(&bytes).expect("valid pcapng");
    assert_eq!(reloaded, capture, "pcapng round-trip must be lossless");

    // Incremental decode at an awkward chunk size: same frames, same
    // order, same timestamps as the batch reader.
    let mut decoder = StreamDecoder::new();
    let mut streamed = v6brick::pcap::Capture::new();
    for chunk in bytes.chunks(71) {
        decoder
            .feed(chunk, &mut |ts, frame| streamed.push(ts, frame))
            .expect("stream decode");
    }
    assert_eq!(decoder.finish().expect("clean tail"), capture.len() as u64);
    assert_eq!(streamed, capture, "streamed frames must match the tap");

    // The decompression pipeline agrees on both copies: identical
    // leaf bindings and health counters from the on-disk bytes.
    let a = bindings_from_mesh_capture(&capture, &scenario::lan_prefix());
    let b = bindings_from_mesh_capture(&streamed, &scenario::lan_prefix());
    assert!(!a.by_addr.is_empty(), "leaves must bind from the mesh air");
    assert_eq!(a, b, "bindings must survive the on-disk format");
    assert_eq!(a.decode_errors, 0, "own mesh traffic decodes losslessly");
}

#[test]
fn capture_statistics_are_plausible() {
    let (capture, _) = household();
    let stats = CaptureStats::of(&capture);
    assert_eq!(stats.frames, capture.len() as u64);
    assert!(stats.ipv6_frames > 0, "dual-stack must carry v6 frames");
    assert!(stats.ipv4_frames > 0);
    assert!(stats.arp_frames > 0, "v4 needs ARP resolution");
    assert!(stats.dns_frames > 0);
    assert!(stats.dhcpv4_frames > 0);
    assert!(
        stats.dhcpv6_frames > 0,
        "stateless DHCPv6 runs in dual-stack"
    );
    assert!(stats.icmpv6_frames > 0, "NDP is ICMPv6");
    assert!(stats.tcp_frames > stats.udp_frames, "telemetry dominates");
    // Every frame decodes at least to L3 (no junk on our wire).
    assert_eq!(stats.undecoded_frames, 0);
}

#[test]
fn filters_select_expected_traffic() {
    use v6brick::net::ipv4::Protocol;
    use v6brick::pcap::filter::{Filter, IpVersion};
    let (capture, macs) = household();

    let dns6 = Filter::new()
        .ip_version(IpVersion::V6)
        .protocol(Protocol::Udp)
        .port(53);
    let dns6_count = capture.parsed().filter(|(_, p)| dns6.matches(p)).count();
    assert!(dns6_count > 0, "v6 DNS present in dual-stack");

    // Per-device attribution: the Echo's MAC appears as a source.
    let echo_mac = macs.iter().find(|(_, id)| id == "echo_show_5").unwrap().0;
    let from_echo = Filter::new().src_mac(echo_mac);
    assert!(capture.parsed().any(|(_, p)| from_echo.matches(&p)));

    // An Aqara hub never talks DNS over v6.
    let aqara_mac = macs.iter().find(|(_, id)| id == "aqara_hub").unwrap().0;
    let aqara_dns6 = Filter::new()
        .ip_version(IpVersion::V6)
        .port(53)
        .src_mac(aqara_mac);
    assert_eq!(
        capture
            .parsed()
            .filter(|(_, p)| aqara_dns6.matches(p))
            .count(),
        0
    );
}
