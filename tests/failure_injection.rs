//! Failure injection: the measurement conclusions must survive a hostile
//! wire — random frame loss, and junk frames injected into the LAN.

use v6brick::core::observe;
use v6brick::devices::phone::Phone;
use v6brick::devices::registry;
use v6brick::devices::stack::IotDevice;
use v6brick::experiments::{scenario, NetworkConfig};
use v6brick::net::Mac;
use v6brick::sim::{Internet, Router, SimTime, SimulationBuilder};

fn run_lossy(
    config: NetworkConfig,
    ids: &[&str],
    loss_per_mille: u32,
    junk: bool,
) -> (Vec<(String, bool)>, observe::ExperimentAnalysis, u64) {
    let profiles: Vec<_> = ids.iter().map(|id| registry::by_id(id)).collect();
    let zones = scenario::build_zones(&profiles);
    let mut b = SimulationBuilder::new(Router::new(config.router_config()), Internet::new(zones));
    let mut handles = Vec::new();
    for p in &profiles {
        let h = b.add_host(Box::new(IotDevice::new(p.clone())));
        handles.push((h, p.id.clone(), p.mac));
    }
    b.add_host(Box::new(Phone::pixel7()));
    let mut sim = b.loss_per_mille(loss_per_mille).seed(0xbad).build();

    if junk {
        // Inject garbage: truncated frames, wrong ethertypes, corrupted
        // IPv6 headers, zero-length frames. Nothing may panic, and the
        // devices must shrug it off.
        sim.run_until(SimTime::from_secs(5));
        sim.inject_frame(vec![]);
        sim.inject_frame(vec![0xff; 5]);
        sim.inject_frame(vec![0xff; 14]); // header only, bogus ethertype
        let mut bad_v6 = vec![0u8; 54];
        bad_v6[12] = 0x86;
        bad_v6[13] = 0xdd;
        bad_v6[14] = 0x90; // version 9
        sim.inject_frame(bad_v6);
        let mut short_v6 = vec![0u8; 20];
        short_v6[12] = 0x86;
        short_v6[13] = 0xdd;
        sim.inject_frame(short_v6);
    }

    sim.run_until(scenario::EXPERIMENT_DURATION);
    let functional: Vec<(String, bool)> = handles
        .iter()
        .map(|(h, id, _)| {
            let d = sim.host(*h).as_any().downcast_ref::<IotDevice>().unwrap();
            (id.clone(), d.is_functional())
        })
        .collect();
    let lost = sim.frames_lost;
    let capture = sim.take_capture();
    let macs: Vec<(Mac, String)> = handles.iter().map(|(_, id, m)| (*m, id.clone())).collect();
    let analysis = observe::analyze(&capture, &macs, scenario::lan_prefix());
    (functional, analysis, lost)
}

const HOUSEHOLD: &[&str] = &[
    "google_home_mini",
    "apple_tv",
    "echo_show_5",
    "hue_hub",
    "samsung_fridge",
];

#[test]
fn junk_frames_do_not_disturb_anything() {
    let (functional, analysis, _) = run_lossy(NetworkConfig::DualStack, HOUSEHOLD, 0, true);
    for (id, ok) in &functional {
        assert!(ok, "{id} functional despite junk on the wire");
    }
    // The junk is captured but attributed to nobody.
    assert!(analysis.unattributed_frames >= 2);
}

#[test]
fn moderate_loss_is_absorbed_by_retries() {
    // 3% frame loss: DHCP retries, DNS retries with backoff, and TCP SYN
    // retries keep every device functional.
    let (functional, analysis, lost) = run_lossy(NetworkConfig::DualStack, HOUSEHOLD, 30, false);
    assert!(lost > 0, "the injector must actually drop frames");
    for (id, ok) in &functional {
        assert!(ok, "{id} must survive 3% loss");
    }
    // And the headline observations still hold for the v6-capable ones.
    let ghm = analysis.device("google_home_mini").unwrap();
    assert!(ghm.ndp_traffic && ghm.dns_over_v6());
}

#[test]
fn functional_verdicts_stable_in_ipv6_only_under_loss() {
    let (functional, _, lost) = run_lossy(NetworkConfig::Ipv6Only, HOUSEHOLD, 30, false);
    assert!(lost > 0);
    let verdict: std::collections::BTreeMap<_, _> = functional.into_iter().collect();
    // Exactly the devices that are functional on a clean wire.
    assert!(verdict["google_home_mini"]);
    assert!(verdict["apple_tv"]);
    assert!(!verdict["echo_show_5"]);
    assert!(!verdict["hue_hub"]);
    assert!(!verdict["samsung_fridge"]);
}

#[test]
fn heavy_loss_degrades_but_never_panics() {
    // 25% loss: no guarantees about functionality, but no crashes and the
    // analysis pipeline still runs over whatever was captured.
    let (_, analysis, lost) = run_lossy(NetworkConfig::DualStack, HOUSEHOLD, 250, false);
    assert!(lost > 100);
    assert!(analysis.frames > 0);
}
