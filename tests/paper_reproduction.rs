//! The flagship integration test: run the full six-experiment suite over
//! all 93 devices and assert the paper's headline numbers, measured
//! purely from the captures.
//!
//! Exact-match targets (the paper's Table 3 / Table 5 totals, the Fig. 5
//! funnel); shape targets elsewhere (documented tolerances).

use v6brick::experiments::{figures, tables, ExperimentSuite, NetworkConfig};

/// One shared suite for all assertions (the run dominates test time).
fn suite() -> &'static ExperimentSuite {
    use std::sync::OnceLock;
    static SUITE: OnceLock<ExperimentSuite> = OnceLock::new();
    SUITE.get_or_init(ExperimentSuite::run_all)
}

#[test]
fn phones_verify_every_configuration() {
    for run in suite().runs() {
        assert!(
            run.phones_ok,
            "{:?}: the verification phones must confirm the network works",
            run.config
        );
    }
}

#[test]
fn table3_exact_totals() {
    let m = tables::headline_numbers(suite());
    assert_eq!(m["t3_ndp"], 59, "59 devices generate NDP traffic");
    assert_eq!(m["t3_addr"], 51, "51 devices assign an IPv6 address");
    assert_eq!(m["t3_gua"], 27, "27 devices use a global unicast address");
    assert_eq!(m["t3_aaaa_v6"], 22, "22 devices send AAAA queries over v6");
    assert_eq!(m["t3_aaaa_pos"], 19, "19 devices get positive AAAA answers");
    assert_eq!(
        m["t3_data"], 19,
        "19 devices transmit Internet data over v6"
    );
    assert_eq!(m["t3_functional"], 8, "8 devices remain functional");
}

#[test]
fn table3_category_breakdown() {
    let s = suite();
    let o = |id: &str| s.v6only_observation(id);
    assert_eq!(
        tables::count_by_category(s, |id| o(id).ndp_traffic),
        vec![3, 5, 6, 11, 2, 16, 16]
    );
    assert_eq!(
        tables::count_by_category(s, |id| o(id).has_v6_addr()),
        vec![2, 5, 6, 11, 0, 11, 16]
    );
    assert_eq!(
        tables::count_by_category(s, |id| tables::active_gua(&o(id))),
        vec![1, 2, 6, 5, 0, 3, 10]
    );
    assert_eq!(
        tables::count_by_category(s, |id| !o(id).aaaa_q_v6.is_empty()),
        vec![1, 2, 6, 3, 0, 0, 10]
    );
    assert_eq!(
        tables::count_by_category(s, |id| !o(id).aaaa_pos_v6.is_empty()),
        vec![1, 2, 6, 0, 0, 0, 10]
    );
    assert_eq!(
        tables::count_by_category(s, |id| o(id).v6_internet_data()),
        vec![1, 2, 5, 2, 0, 0, 9]
    );
    assert_eq!(
        tables::count_by_category(s, |id| s.functional_v6only(id)),
        vec![0, 0, 3, 0, 0, 0, 5]
    );
}

#[test]
fn table5_exact_totals() {
    let m = tables::headline_numbers(suite());
    assert_eq!(m["t5_addr"], 54);
    assert_eq!(m["t5_stateful"], 12);
    assert_eq!(m["t5_gua"], 31);
    assert_eq!(m["t5_ula"], 23);
    assert_eq!(m["t5_lla"], 50, "the paper's LLA column sums to 50");
    assert_eq!(m["t5_eui64"], 31);
    assert_eq!(m["t5_dns6"], 22);
    assert_eq!(m["t5_a_only"], 19);
    assert_eq!(m["t5_aaaa_any"], 37);
    assert_eq!(m["t5_aaaa_v4only"], 33);
    assert_eq!(m["t5_aaaa_pos"], 31);
    assert_eq!(m["t5_stateless"], 16);
    assert_eq!(m["t5_trans"], 29);
    assert_eq!(m["t5_internet"], 23);
    assert_eq!(m["t5_local"], 21);
}

#[test]
fn table4_deltas() {
    let s = suite();
    let ids: Vec<&str> = s.device_ids().collect();
    let delta = |f: &dyn Fn(&v6brick::core::DeviceObservation) -> bool| {
        let dual = ids.iter().filter(|id| f(&s.dual_observation(id))).count() as i64;
        let v6 = ids.iter().filter(|id| f(&s.v6only_observation(id))).count() as i64;
        dual - v6
    };
    assert_eq!(
        delta(&|o| o.ndp_traffic),
        -1,
        "ThirdReality skips v6 in dual-stack"
    );
    assert_eq!(delta(&|o| o.has_v6_addr()), 2);
    assert_eq!(delta(&|o| tables::active_gua(o)), 3);
    assert_eq!(delta(&|o| !o.aaaa_q_any().is_empty()), 15);
    assert_eq!(delta(&|o| !o.aaaa_pos_any().is_empty()), 12);
    // The paper prints +3 but its own union arithmetic requires +4
    // (gateway Internet data goes 2 -> 3 while the union keeps all of
    // Fire TV, the two Echo Dots, and the Aeotec hub); see EXPERIMENTS.md.
    assert_eq!(delta(&|o| o.v6_internet_data()), 4);
}

#[test]
fn fig5_funnel_exact() {
    let f = figures::eui64_funnel(suite());
    assert_eq!(f.assign, 33, "33 devices assign EUI-64 GUAs");
    assert_eq!(f.use_any, 15, "15 use them");
    assert_eq!(f.use_dns, 8, "8 expose them through DNS");
    assert_eq!(f.use_internet_data, 5, "5 transmit Internet data from them");
    // Exposed-domain party mix: first-party dominates, trackers present.
    assert!(f.data_domains_by_party.first > f.data_domains_by_party.third);
    assert!(f.data_domains_by_party.total() > 0);
}

#[test]
fn table6_address_and_query_volumes_in_range() {
    // Shape targets: within 15% of the paper's totals
    // (684 addresses / 456 GUA / 169 ULA / 59 LLA; 1077 AAAA names,
    // 114 A-only, 334 v4-only, 531 positive).
    let s = suite();
    let within =
        |measured: i64, target: i64, pct: i64| (measured - target).abs() * 100 <= target * pct;
    let mut addrs = (0i64, 0i64, 0i64, 0i64);
    let mut dns = (0i64, 0i64, 0i64, 0i64);
    for id in s.device_ids() {
        use v6brick::net::ipv6::{AddressKind, Ipv6AddrExt};
        let o = s.v6_and_dual_observation(id);
        let a = o.all_addrs();
        addrs.0 += a.len() as i64;
        addrs.1 += a.iter().filter(|x| x.kind() == AddressKind::Global).count() as i64;
        addrs.2 += a
            .iter()
            .filter(|x| x.kind() == AddressKind::UniqueLocal)
            .count() as i64;
        addrs.3 += a
            .iter()
            .filter(|x| x.kind() == AddressKind::LinkLocal)
            .count() as i64;
        dns.0 += o.aaaa_q_any().len() as i64;
        dns.1 += o.a_only_v6_names().len() as i64;
        dns.2 += o.aaaa_q_v4.difference(&o.aaaa_q_v6).count() as i64;
        dns.3 += o.aaaa_pos_any().len() as i64;
    }
    assert!(within(addrs.0, 684, 15), "total addresses {}", addrs.0);
    assert!(within(addrs.1, 456, 15), "GUAs {}", addrs.1);
    assert!(within(addrs.2, 169, 15), "ULAs {}", addrs.2);
    assert!(within(addrs.3, 59, 15), "LLAs {}", addrs.3);
    assert!(within(dns.0, 1077, 15), "AAAA names {}", dns.0);
    assert!(within(dns.1, 114, 15), "A-only names {}", dns.1);
    assert!(within(dns.2, 334, 15), "v4-only AAAA names {}", dns.2);
    assert!(within(dns.3, 531, 15), "positive AAAA names {}", dns.3);
}

#[test]
fn fig4_volume_shape() {
    let s = suite();
    let fracs: Vec<(String, f64)> = s
        .device_ids()
        .map(|id| (id.to_string(), s.dual_observation(id).v6_volume_fraction()))
        .filter(|(_, f)| *f > 0.0)
        .collect();
    assert_eq!(fracs.len(), 23, "23 devices carry IPv6 Internet volume");
    let over80 = fracs.iter().filter(|(_, f)| *f > 0.80).count();
    assert_eq!(over80, 3, "three devices transmit >80% over IPv6");
    let under20 = fracs.iter().filter(|(_, f)| *f < 0.20).count();
    assert!(
        under20 * 2 > fracs.len(),
        "more than half stay below 20% ({under20}/{})",
        fracs.len()
    );
    // Paper-named cases: the Nest Camera exceeds 80% despite being
    // non-functional; the Nest Hubs stay under 20% despite being
    // functional.
    let get = |id: &str| {
        fracs
            .iter()
            .find(|(d, _)| d == id)
            .map(|(_, f)| *f)
            .unwrap()
    };
    assert!(get("nest_camera") > 0.80);
    assert!(!s.functional_v6only("nest_camera"));
    assert!(get("nest_hub") < 0.20);
    assert!(s.functional_v6only("nest_hub"));
}

#[test]
fn table6_category_volume_fractions() {
    // TV/Ent. and Speaker carry substantial IPv6 fractions; Gateway,
    // Health, and Home Automation stay negligible (Table 6 bottom row).
    let fr = figures::category_volume_fractions(suite());
    assert!(fr["TV/Ent."] > 0.25, "TV fraction {:.3}", fr["TV/Ent."]);
    assert!(
        fr["Speaker"] > 0.10,
        "Speaker fraction {:.3}",
        fr["Speaker"]
    );
    assert!(fr["Home Auto"] < 0.05);
    assert!(fr["Health"] < 0.05);
    assert!(fr["TV/Ent."] > fr["Speaker"]);
    assert!(fr["Speaker"] > fr["Camera"] || fr["Camera"] < 0.2);
}

#[test]
fn dad_noncompliance_counts() {
    let (skip_some, never) = tables::dad_counts(suite());
    assert_eq!(
        never, 4,
        "2 Aqara hubs + 2 home-automation devices never DAD"
    );
    // The paper counts 18 devices skipping DAD for >=1 address; our
    // temporaries put the measurement at 16 (±2 of the paper).
    assert!(
        (16..=20).contains(&skip_some),
        "devices skipping DAD: {skip_some}"
    );
}

#[test]
fn rdnss_only_experiment_isolates_vizio() {
    // §5.2.1: only the Vizio TV loses IPv6 DNS when stateless DHCPv6 is
    // removed and RDNSS is the only DNS channel.
    let s = suite();
    let baseline = s.run(NetworkConfig::Ipv6Only);
    let rdnss_only = s.run(NetworkConfig::Ipv6OnlyRdnssOnly);
    let lost: Vec<&str> = s
        .device_ids()
        .filter(|id| {
            let b = baseline
                .analysis
                .device(id)
                .map(|o| o.dns_over_v6())
                .unwrap_or(false);
            let r = rdnss_only
                .analysis
                .device(id)
                .map(|o| o.dns_over_v6())
                .unwrap_or(false);
            b && !r
        })
        .collect();
    assert_eq!(lost, vec!["vizio_tv"]);
}

#[test]
fn stateful_dhcpv6_usage() {
    // Table 5 / §5.2.1: 12 devices solicit stateful DHCPv6; only 4 ever
    // source traffic from the assigned address.
    let s = suite();
    let solicited = s
        .device_ids()
        .filter(|id| s.v6_and_dual_observation(id).dhcpv6_stateful)
        .count();
    assert_eq!(solicited, 12);
    let mut using: Vec<&str> = s
        .device_ids()
        .filter(|id| {
            let o = s.v6_and_dual_observation(id);
            o.dhcpv6_addrs.iter().any(|a| o.active_v6.contains(a))
        })
        .collect();
    using.sort();
    assert_eq!(
        using,
        vec![
            "aeotec_hub",
            "homepod_mini",
            "samsung_fridge",
            "smartthings_hub"
        ]
    );
}

#[test]
fn functional_set_is_the_papers() {
    let s = suite();
    let mut functional: Vec<&str> = s
        .device_ids()
        .filter(|id| s.functional_v6only(id))
        .collect();
    functional.sort();
    assert_eq!(
        functional,
        vec![
            "apple_tv",
            "google_home_mini",
            "google_nest_mini",
            "google_tv",
            "meta_portal_mini",
            "nest_hub",
            "nest_hub_max",
            "tivo_stream",
        ]
    );
}

#[test]
fn every_device_functional_on_ipv4() {
    // §4.1: all devices pass the functionality test over IPv4.
    let s = suite();
    let run = s.run(NetworkConfig::Ipv4Only);
    for (id, ok) in &run.functional {
        assert!(ok, "{id} must be functional in the IPv4-only network");
    }
}

#[test]
fn tracking_domains_disappear_in_v6only() {
    // §5.4.3: the functional devices lose third-party/tracking SLDs when
    // IPv4 goes away.
    let r = v6brick::experiments::tracking::tracking_report(suite());
    assert!(
        !r.third_party_slds.is_empty(),
        "some trackers must be v4-only"
    );
    assert!(r.v4_only_domains.len() >= 50);
    // The paper-named trackers are among them.
    let slds: Vec<String> = r.third_party_slds.iter().map(|s| s.to_string()).collect();
    assert!(slds.iter().any(|s| s == "app-measurement.com"), "{slds:?}");
}

#[test]
fn determinism_same_suite_twice() {
    // Two independently-run IPv6-only experiments produce identical
    // captures (the reproducibility guarantee).
    let a = v6brick::experiments::scenario::run(NetworkConfig::Ipv6Only);
    let b = v6brick::experiments::scenario::run(NetworkConfig::Ipv6Only);
    assert_eq!(a.frames, b.frames);
    assert_eq!(a.functional, b.functional);
    let sa = serde_json::to_string(&a.analysis.devices).unwrap();
    let sb = serde_json::to_string(&b.analysis.devices).unwrap();
    assert_eq!(sa, sb);
}

#[test]
fn verdicts_are_seed_invariant() {
    // Different RNG seeds change boot jitter and temporary addresses but
    // never the measured feature set or the functionality verdicts.
    use v6brick::experiments::scenario::run_with_profiles_seeded;
    let profiles = v6brick::devices::registry::build();
    let a = run_with_profiles_seeded(NetworkConfig::Ipv6Only, &profiles, 0x1111_0000);
    let b = run_with_profiles_seeded(NetworkConfig::Ipv6Only, &profiles, 0x2222_0000);
    assert_eq!(
        a.functional, b.functional,
        "functionality is a device property"
    );
    for (id, oa) in &a.analysis.devices {
        let ob = &b.analysis.devices[id];
        assert_eq!(oa.ndp_traffic, ob.ndp_traffic, "{id}");
        assert_eq!(oa.has_v6_addr(), ob.has_v6_addr(), "{id}");
        assert_eq!(oa.dns_over_v6(), ob.dns_over_v6(), "{id}");
        assert_eq!(oa.v6_internet_data(), ob.v6_internet_data(), "{id}");
        assert_eq!(oa.aaaa_q_v6, ob.aaaa_q_v6, "{id}: same names queried");
    }
}
